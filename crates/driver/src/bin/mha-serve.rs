//! `mha-serve` — the long-running compilation service (ARCHITECTURE.md §7).
//!
//! ```text
//! mha-serve [--addr HOST:PORT] [--workers N]
//!           [--no-cache] [--cache-dir DIR] [--fresh-journal]
//!           [--deadline-ms N] [--fuel N] [--seed N] [--max-body BYTES]
//!           [--read-timeout-ms N] [--header-deadline-ms N]
//!           [--write-timeout-ms N] [--no-keep-alive]
//!           [--keepalive-idle-ms N] [--keepalive-max-requests N]
//!           [--queue-depth N] [--quantum N] [--shed-p99-ms N]
//!           [--breaker-window N] [--breaker-min-samples N]
//!           [--breaker-trip-ratio F] [--breaker-cooldown-ms N]
//!           [--chaos SEED,RATE]
//!           [--isolate] [--warden-pool N] [--max-requests-per-worker N]
//!           [--max-worker-rss-mb N] [--warden-chaos SEED,RATE]
//!           [--max-cached-responses N]
//! ```
//!
//! Binds the address (default `127.0.0.1:8787`; port 0 picks a free port),
//! prints the bound address to stderr as `mha-serve: listening on ADDR`,
//! and serves until `POST /v1/shutdown` drains the pool. Endpoints,
//! request/response schemas, and the status-code ↔ fault-taxonomy mapping
//! are documented in ARCHITECTURE.md §7; the operator runbook (journal
//! layout, warm restarts, resilience tuning, troubleshooting) is in
//! OPERATIONS.md.
//!
//! The artifact cache is shared with `mha-batch` (default
//! `target/mha-cache`); completed responses are journaled to
//! `serve.jsonl` next to it and replayed on restart, so a restarted
//! server answers previously-compiled requests warm. `--fresh-journal`
//! truncates instead; `--no-cache` disables cache and journal both.
//!
//! `--deadline-ms`/`--fuel` set the *default* per-request budget; each
//! request may override them in its body. Budget trips surface as HTTP
//! 408 (deadline) / 429 (fuel), deterministic compile failures as 422,
//! transient faults as 503, panics and harness failures as 500.
//! Admission-queue shedding answers 429 and a breaker-open rejection 503,
//! both always carrying `Retry-After`.
//!
//! `--chaos SEED,RATE` arms the seeded fault injector over the serve
//! sites (socket reset, slow read, worker stall, transient compile
//! faults) and, for suite kernels, the batch engine's own cache/retry
//! sites — the same flag grammar as `mha-batch`.
//!
//! `--isolate` runs every compilation in a pre-spawned **worker process**
//! (`driver::warden`): a segfault, stack overflow, abort, or OOM in a
//! worker becomes a typed `crash` 500 while the server keeps serving.
//! `--max-worker-rss-mb` arms the RSS watchdog, `--warden-chaos` injects
//! crash faults inside workers (worker kill, RSS bomb, reply truncation)
//! for soak testing. The hidden `--warden-child` argv\[1\] mode is how the
//! re-exec'd workers enter their serve loop — never pass it by hand.
//!
//! Exit codes: **0** clean drain, **2** usage or startup error (bind
//! failure, unusable cache dir, malformed flag).

use std::path::PathBuf;

use driver::{ChaosConfig, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: mha-serve [--addr HOST:PORT] [--workers N]\n\
         \x20                [--no-cache] [--cache-dir DIR] [--fresh-journal]\n\
         \x20                [--deadline-ms N] [--fuel N] [--seed N]\n\
         \x20                [--max-body BYTES]\n\
         \x20                [--read-timeout-ms N] [--header-deadline-ms N]\n\
         \x20                [--write-timeout-ms N] [--no-keep-alive]\n\
         \x20                [--keepalive-idle-ms N] [--keepalive-max-requests N]\n\
         \x20                [--queue-depth N] [--quantum N] [--shed-p99-ms N]\n\
         \x20                [--breaker-window N] [--breaker-min-samples N]\n\
         \x20                [--breaker-trip-ratio F] [--breaker-cooldown-ms N]\n\
         \x20                [--chaos SEED,RATE]\n\
         \x20                [--isolate] [--warden-pool N]\n\
         \x20                [--max-requests-per-worker N]\n\
         \x20                [--max-worker-rss-mb N] [--warden-chaos SEED,RATE]\n\
         \x20                [--max-cached-responses N]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn parse_f64(s: &str, flag: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a number, got '{s}'");
        usage();
    })
}

fn main() {
    // Worker mode: the warden re-execs this binary with `--warden-child`
    // as the only argument; dispatch before any flag parsing.
    if std::env::args().nth(1).as_deref() == Some("--warden-child") {
        driver::warden::child_main();
    }
    let mut config = ServeConfig {
        addr: "127.0.0.1:8787".into(),
        ..ServeConfig::default()
    };

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value(&mut args, "--addr"),
            "--workers" => {
                config.workers =
                    parse_u64(&flag_value(&mut args, "--workers"), "--workers") as usize
            }
            "--no-cache" => config.cache_dir = None,
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(flag_value(&mut args, "--cache-dir")))
            }
            "--fresh-journal" => config.resume = false,
            "--deadline-ms" => {
                config.deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--fuel" => config.fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel")),
            "--seed" => config.seed = parse_u64(&flag_value(&mut args, "--seed"), "--seed"),
            "--max-body" => {
                config.max_body =
                    parse_u64(&flag_value(&mut args, "--max-body"), "--max-body") as usize
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = parse_u64(
                    &flag_value(&mut args, "--read-timeout-ms"),
                    "--read-timeout-ms",
                )
            }
            "--header-deadline-ms" => {
                config.header_deadline_ms = parse_u64(
                    &flag_value(&mut args, "--header-deadline-ms"),
                    "--header-deadline-ms",
                )
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = parse_u64(
                    &flag_value(&mut args, "--write-timeout-ms"),
                    "--write-timeout-ms",
                )
            }
            "--no-keep-alive" => config.keepalive = false,
            "--keepalive-idle-ms" => {
                config.keepalive_idle_ms = parse_u64(
                    &flag_value(&mut args, "--keepalive-idle-ms"),
                    "--keepalive-idle-ms",
                )
            }
            "--keepalive-max-requests" => {
                config.keepalive_max_requests = parse_u64(
                    &flag_value(&mut args, "--keepalive-max-requests"),
                    "--keepalive-max-requests",
                ) as u32
            }
            "--queue-depth" => {
                config.queue.max_depth =
                    parse_u64(&flag_value(&mut args, "--queue-depth"), "--queue-depth") as usize
            }
            "--quantum" => {
                config.queue.quantum =
                    parse_u64(&flag_value(&mut args, "--quantum"), "--quantum").max(1) as u32
            }
            "--shed-p99-ms" => {
                config.queue.shed_wait_p99_ms =
                    parse_u64(&flag_value(&mut args, "--shed-p99-ms"), "--shed-p99-ms")
            }
            "--breaker-window" => {
                config.breaker.window = parse_u64(
                    &flag_value(&mut args, "--breaker-window"),
                    "--breaker-window",
                ) as usize
            }
            "--breaker-min-samples" => {
                config.breaker.min_samples = parse_u64(
                    &flag_value(&mut args, "--breaker-min-samples"),
                    "--breaker-min-samples",
                ) as usize
            }
            "--breaker-trip-ratio" => {
                config.breaker.trip_ratio = parse_f64(
                    &flag_value(&mut args, "--breaker-trip-ratio"),
                    "--breaker-trip-ratio",
                )
            }
            "--breaker-cooldown-ms" => {
                config.breaker.cooldown_ms = parse_u64(
                    &flag_value(&mut args, "--breaker-cooldown-ms"),
                    "--breaker-cooldown-ms",
                )
            }
            "--chaos" => {
                config.chaos = Some(
                    ChaosConfig::parse(&flag_value(&mut args, "--chaos")).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage();
                    }),
                )
            }
            "--isolate" => config.isolate = true,
            "--warden-pool" => {
                config.warden_pool =
                    parse_u64(&flag_value(&mut args, "--warden-pool"), "--warden-pool") as usize
            }
            "--max-requests-per-worker" => {
                config.max_requests_per_worker = parse_u64(
                    &flag_value(&mut args, "--max-requests-per-worker"),
                    "--max-requests-per-worker",
                )
                .max(1) as u32
            }
            "--max-worker-rss-mb" => {
                config.max_worker_rss_mb = Some(parse_u64(
                    &flag_value(&mut args, "--max-worker-rss-mb"),
                    "--max-worker-rss-mb",
                ))
            }
            "--warden-chaos" => {
                config.warden_chaos = Some(
                    ChaosConfig::parse(&flag_value(&mut args, "--warden-chaos")).unwrap_or_else(
                        |e| {
                            eprintln!("{e}");
                            usage();
                        },
                    ),
                )
            }
            "--max-cached-responses" => {
                config.max_cached_responses = parse_u64(
                    &flag_value(&mut args, "--max-cached-responses"),
                    "--max-cached-responses",
                ) as usize
            }
            _ => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mha-serve: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("mha-serve: listening on {}", server.addr());
    // The pool runs until POST /v1/shutdown flips the drain flag; join
    // blocks until every admitted request has completed and been journaled.
    server.join();
    eprintln!("mha-serve: drained");
}
