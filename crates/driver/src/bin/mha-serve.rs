//! `mha-serve` — the long-running compilation service (ARCHITECTURE.md §7).
//!
//! ```text
//! mha-serve [--addr HOST:PORT] [--workers N]
//!           [--no-cache] [--cache-dir DIR] [--fresh-journal]
//!           [--deadline-ms N] [--fuel N] [--seed N] [--max-body BYTES]
//! ```
//!
//! Binds the address (default `127.0.0.1:8787`; port 0 picks a free port),
//! prints the bound address to stderr as `mha-serve: listening on ADDR`,
//! and serves until `POST /v1/shutdown` drains the pool. Endpoints,
//! request/response schemas, and the status-code ↔ fault-taxonomy mapping
//! are documented in ARCHITECTURE.md §7; the operator runbook (journal
//! layout, warm restarts, troubleshooting) is in OPERATIONS.md.
//!
//! The artifact cache is shared with `mha-batch` (default
//! `target/mha-cache`); completed responses are journaled to
//! `serve.jsonl` next to it and replayed on restart, so a restarted
//! server answers previously-compiled requests warm. `--fresh-journal`
//! truncates instead; `--no-cache` disables cache and journal both.
//!
//! `--deadline-ms`/`--fuel` set the *default* per-request budget; each
//! request may override them in its body. Budget trips surface as HTTP
//! 408 (deadline) / 429 (fuel), deterministic compile failures as 422,
//! transient faults as 503, panics and harness failures as 500.
//!
//! Exit codes: **0** clean drain, **2** usage or startup error (bind
//! failure, unusable cache dir).

use std::path::PathBuf;

use driver::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: mha-serve [--addr HOST:PORT] [--workers N]\n\
         \x20                [--no-cache] [--cache-dir DIR] [--fresh-journal]\n\
         \x20                [--deadline-ms N] [--fuel N] [--seed N]\n\
         \x20                [--max-body BYTES]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8787".into(),
        ..ServeConfig::default()
    };

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value(&mut args, "--addr"),
            "--workers" => {
                config.workers =
                    parse_u64(&flag_value(&mut args, "--workers"), "--workers") as usize
            }
            "--no-cache" => config.cache_dir = None,
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(flag_value(&mut args, "--cache-dir")))
            }
            "--fresh-journal" => config.resume = false,
            "--deadline-ms" => {
                config.deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--fuel" => config.fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel")),
            "--seed" => config.seed = parse_u64(&flag_value(&mut args, "--seed"), "--seed"),
            "--max-body" => {
                config.max_body =
                    parse_u64(&flag_value(&mut args, "--max-body"), "--max-body") as usize
            }
            _ => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mha-serve: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("mha-serve: listening on {}", server.addr());
    // Workers run until POST /v1/shutdown flips the drain flag; join blocks
    // until every in-flight request has completed and been journaled.
    server.join();
    eprintln!("mha-serve: drained");
}
