//! `mha-load` — seeded load generator for `mha-serve` (EXPERIMENTS.md §S1).
//!
//! ```text
//! mha-load --addr HOST:PORT [--requests N] [--concurrency N] [--rate R]
//!          [--repeat N] [--seed N] [--mix suite|fuzz|both]
//!          [--deadline-ms N] [--fuel N] [--min-warm-ratio F]
//!          [--clients N] [--keep-alive] [--retries N] [--allow-503]
//!          [--max-polite-p99-us N]
//!          [--adversary slow-loris|disconnect|hot|crash] [--adversary-threads N]
//!          [--format text|json]
//! ```
//!
//! Builds a deterministic request mix — suite kernels by name plus raw
//! MLIR kernels from the `fuzzing` generator (`--mix both`, the default) —
//! and drives `POST /v1/compile` with it from `--concurrency` threads.
//! `--rate R` paces the whole run open-loop at R requests/second (each
//! request has a scheduled start time; threads sleep until it); `--rate 0`
//! (default) runs closed-loop, as fast as the server answers.
//!
//! The same request set is replayed `--repeat` times (default 2): phase 0
//! is the **cold** phase (the server compiles), later phases are **warm**
//! (responses come back `X-Mha-Served: cache|coalesced|warm`). Per phase
//! the report records requests/s, p50/p99 latency, status-code counts, and
//! how responses were served. Same `--seed` ⇒ byte-identical request set.
//!
//! **Tenancy and fairness.** `--clients N` tags request `i` with
//! `X-Mha-Client: c{i mod N}`, exercising the server's per-client
//! deficit-round-robin admission, and the report gains a per-client
//! p50/p99/status breakdown (text and JSON) so fairness is visible
//! per tenant, not only in aggregate. `--max-polite-p99-us` turns the
//! polite-tenant p99 (over all phases, adversary traffic excluded) into
//! a hard gate.
//!
//! **Adversaries.** `--adversary` spawns `--adversary-threads` hostile
//! clients that run alongside every phase and are excluded from all
//! gates: `slow-loris` dribbles header bytes one at a time, `disconnect`
//! sends full requests then drops the socket before reading the
//! response, `hot` floods unique raw-MLIR compiles as the `hot`
//! tenant as fast as the server answers, and `crash` posts depth/size
//! bombs (deeply nested raw MLIR) designed to blow recursive stages —
//! pair it with `mha-serve --isolate` to verify a bomb costs one worker
//! process, not the server.
//!
//! **Resilience accounting.** Every `429`/`503` response is required to
//! carry `Retry-After`; one that doesn't fails the run. `--allow-503`
//! keeps shed/breaker `503`s out of the 5xx gate (chaos soaks). With
//! `--keep-alive` each worker thread holds one persistent connection
//! (stale reuse gets a free reconnect); `--retries N` additionally
//! resends a request up to N times after transport errors, for soaks
//! where chaos resets sockets mid-response.
//!
//! Exit codes: **0** run clean, **1** assertions failed (a gated 5xx
//! response, missing `Retry-After`, warm-hit ratio below
//! `--min-warm-ratio`, or polite p99 above `--max-polite-p99-us`), **2**
//! usage or connection errors. `--format json` stdout is one parseable
//! document; progress goes to stderr.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pass_core::report::json_str;

fn usage() -> ! {
    eprintln!(
        "usage: mha-load --addr HOST:PORT [--requests N] [--concurrency N]\n\
         \x20               [--rate R] [--repeat N] [--seed N]\n\
         \x20               [--mix suite|fuzz|both] [--deadline-ms N] [--fuel N]\n\
         \x20               [--min-warm-ratio F] [--clients N] [--keep-alive]\n\
         \x20               [--retries N] [--allow-503] [--max-polite-p99-us N]\n\
         \x20               [--adversary slow-loris|disconnect|hot|crash]\n\
         \x20               [--adversary-threads N] [--format text|json]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn parse_f64(s: &str, flag: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a number, got '{s}'");
        usage();
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Suite,
    Fuzz,
    Both,
}

#[derive(Clone, Copy, PartialEq)]
enum Adversary {
    SlowLoris,
    Disconnect,
    Hot,
    Crash,
}

impl Adversary {
    fn label(self) -> &'static str {
        match self {
            Adversary::SlowLoris => "slow-loris",
            Adversary::Disconnect => "disconnect",
            Adversary::Hot => "hot",
            Adversary::Crash => "crash",
        }
    }
}

/// One response as seen by a polite client.
struct Sample {
    phase: usize,
    client: String,
    code: u16,
    served: String,
    latency_us: u64,
}

/// A parsed HTTP response.
struct Resp {
    code: u16,
    served: String,
    retry_after: bool,
    close: bool,
    #[allow(dead_code)]
    body: String,
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Resp, String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    if status_line.is_empty() {
        return Err("connection closed before status line".into());
    }
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad status line '{}'", status_line.trim()))?;
    let mut served = String::new();
    let mut content_length = 0usize;
    let mut retry_after = false;
    let mut close = false;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("x-mha-served") {
                served = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = true;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader
        .read_exact(&mut buf)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Resp {
        code,
        served,
        retry_after,
        close,
        body: String::from_utf8_lossy(&buf).into_owned(),
    })
}

/// HTTP/1.1 client; with `keep_alive` it holds one persistent connection
/// and reconnects transparently when a reused connection turns out dead.
struct HttpClient {
    addr: String,
    keep_alive: bool,
    retries: u64,
    conn: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    fn new(addr: &str, keep_alive: bool, retries: u64) -> HttpClient {
        HttpClient {
            addr: addr.to_string(),
            keep_alive,
            retries,
            conn: None,
        }
    }

    fn try_post(&mut self, path: &str, body: &str, client: &str) -> Result<Resp, String> {
        if self.conn.is_none() {
            let s = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
            s.set_read_timeout(Some(Duration::from_secs(60))).ok();
            self.conn = Some(BufReader::new(s));
        }
        let reader = self.conn.as_mut().unwrap();
        let client_hdr = if client.is_empty() {
            String::new()
        } else {
            format!("X-Mha-Client: {client}\r\n")
        };
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{client_hdr}Connection: {}\r\n\r\n{body}",
            self.addr,
            body.len(),
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        );
        reader
            .get_mut()
            .write_all(req.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let resp = read_response(reader)?;
        if !self.keep_alive || resp.close {
            self.conn = None;
        }
        Ok(resp)
    }

    /// Post with the reconnect/retry policy: a dead *reused* connection
    /// gets one free reconnect (normal keep-alive race), then up to
    /// `retries` real resends for transport errors.
    fn post(&mut self, path: &str, body: &str, client: &str) -> Result<Resp, String> {
        let mut budget = self.retries;
        let mut free_reuse_retry = true;
        loop {
            let reused = self.conn.is_some();
            match self.try_post(path, body, client) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    self.conn = None;
                    if reused && free_reuse_retry {
                        free_reuse_retry = false;
                        continue;
                    }
                    if budget > 0 {
                        budget -= 1;
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// The deterministic request set: suite kernel names and/or fuzzer MLIR,
/// interleaved, as `POST /v1/compile` bodies.
fn build_requests(
    n: usize,
    seed: u64,
    mix: Mix,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
) -> Vec<String> {
    let suite = kernels::all_kernels();
    let budget = |out: &mut String| {
        if let Some(ms) = deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(f) = fuel {
            out.push_str(&format!(",\"fuel\":{f}"));
        }
    };
    (0..n)
        .map(|i| {
            let fuzzy = match mix {
                Mix::Suite => false,
                Mix::Fuzz => true,
                Mix::Both => i % 2 == 1,
            };
            let mut body = if fuzzy {
                let g =
                    fuzzing::generate(seed.wrapping_add(i as u64), &fuzzing::GenConfig::default());
                format!(
                    "{{\"mlir\":{},\"name\":\"load-{}\"",
                    json_str(&g.text),
                    g.seed
                )
            } else {
                let k = &suite[(seed as usize + i) % suite.len()];
                format!("{{\"kernel\":{}", json_str(k.name))
            };
            budget(&mut body);
            body.push('}');
            body
        })
        .collect()
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What the hostile clients did, reported but excluded from every gate.
#[derive(Default)]
struct AdvStats {
    attempts: u64,
    responses: u64,
    codes: HashMap<u16, u64>,
    transport_errors: u64,
}

fn adversary_loop(
    mode: Adversary,
    addr: &str,
    seed: u64,
    thread_id: usize,
    stop: &AtomicBool,
    stats: &Mutex<AdvStats>,
) {
    let mut counter = 0u64;
    while !stop.load(Ordering::SeqCst) {
        counter += 1;
        stats.lock().unwrap().attempts += 1;
        match mode {
            Adversary::SlowLoris => {
                // Dribble one header byte at a time; a resilient server
                // answers 408 at its header deadline and hangs up.
                let head =
                    format!("POST /v1/compile HTTP/1.1\r\nHost: {addr}\r\nX-Mha-Client: loris\r\n");
                match TcpStream::connect(addr) {
                    Ok(mut s) => {
                        s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                        for b in head.as_bytes() {
                            if stop.load(Ordering::SeqCst) || s.write_all(&[*b]).is_err() {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        // Server should have hung up (or will); drain
                        // whatever it said.
                        let mut reader = BufReader::new(s);
                        if let Ok(r) = read_response(&mut reader) {
                            let mut st = stats.lock().unwrap();
                            st.responses += 1;
                            *st.codes.entry(r.code).or_insert(0) += 1;
                        }
                    }
                    Err(_) => stats.lock().unwrap().transport_errors += 1,
                }
            }
            Adversary::Disconnect => {
                // Full request, then vanish before the response: the
                // journal must still make the outcome recoverable.
                let body = "{\"kernel\":\"gemm\"}";
                match TcpStream::connect(addr) {
                    Ok(mut s) => {
                        let req = format!(
                            "POST /v1/compile HTTP/1.1\r\nHost: {addr}\r\n\
                             Content-Type: application/json\r\nContent-Length: {}\r\n\
                             X-Mha-Client: rude\r\nConnection: close\r\n\r\n{body}",
                            body.len()
                        );
                        let _ = s.write_all(req.as_bytes());
                        drop(s);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => stats.lock().unwrap().transport_errors += 1,
                }
            }
            Adversary::Hot => {
                // One aggressive tenant flooding unique raw-MLIR compiles
                // closed-loop — the DRR scheduler should keep it to its
                // fair share, and raw-class shedding hits it first.
                let g = fuzzing::generate(
                    seed ^ 0xAD5E_0000 ^ (thread_id as u64) << 32 ^ counter,
                    &fuzzing::GenConfig::default(),
                );
                let body = format!(
                    "{{\"mlir\":{},\"name\":\"hot-{}-{counter}\"}}",
                    json_str(&g.text),
                    thread_id
                );
                let mut client = HttpClient::new(addr, true, 0);
                match client.post("/v1/compile", &body, "hot") {
                    Ok(r) => {
                        let mut st = stats.lock().unwrap();
                        st.responses += 1;
                        *st.codes.entry(r.code).or_insert(0) += 1;
                    }
                    Err(_) => stats.lock().unwrap().transport_errors += 1,
                }
            }
            Adversary::Crash => {
                // Depth/size bombs hunting process-killing failure modes
                // (stack overflow in recursive parsers, allocator blowups).
                // Every request is unique so nothing is answered from the
                // cache; under `mha-serve --isolate` each bomb costs at
                // most one worker process, never the server. Expected
                // answers are 4xx/5xx — the gate is that the server stays
                // up and polite tenants stay fast.
                let depth = 1_500 + (counter % 512) as usize;
                let mut src = String::with_capacity(depth * 16 + 64);
                src.push_str("func @bomb() {\n");
                for i in 0..depth {
                    src.push_str(&format!("scf.if %c{i} {{\n"));
                }
                for _ in 0..=depth {
                    src.push_str("}\n");
                }
                let body = format!(
                    "{{\"mlir\":{},\"name\":\"bomb-{}-{counter}\",\"deadline_ms\":2000}}",
                    json_str(&src),
                    thread_id
                );
                let mut client = HttpClient::new(addr, true, 0);
                match client.post("/v1/compile", &body, "bomb") {
                    Ok(r) => {
                        let mut st = stats.lock().unwrap();
                        st.responses += 1;
                        *st.codes.entry(r.code).or_insert(0) += 1;
                    }
                    Err(_) => stats.lock().unwrap().transport_errors += 1,
                }
            }
        }
    }
}

fn main() {
    let mut addr = String::new();
    let mut requests = 50usize;
    let mut concurrency = 4usize;
    let mut rate = 0f64;
    let mut repeat = 2usize;
    let mut seed = 0u64;
    let mut mix = Mix::Both;
    let mut deadline_ms = None;
    let mut fuel = None;
    let mut min_warm_ratio: Option<f64> = None;
    let mut format_json = false;
    let mut clients = 0usize;
    let mut keep_alive = false;
    let mut retries = 0u64;
    let mut allow_503 = false;
    let mut max_polite_p99_us: Option<u64> = None;
    let mut adversary: Option<Adversary> = None;
    let mut adversary_threads = 1usize;

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = flag_value(&mut args, "--addr"),
            "--requests" => {
                requests = parse_u64(&flag_value(&mut args, "--requests"), "--requests") as usize
            }
            "--concurrency" => {
                concurrency =
                    parse_u64(&flag_value(&mut args, "--concurrency"), "--concurrency") as usize
            }
            "--rate" => rate = parse_f64(&flag_value(&mut args, "--rate"), "--rate"),
            "--repeat" => {
                repeat = parse_u64(&flag_value(&mut args, "--repeat"), "--repeat") as usize
            }
            "--seed" => seed = parse_u64(&flag_value(&mut args, "--seed"), "--seed"),
            "--mix" => match flag_value(&mut args, "--mix").as_str() {
                "suite" => mix = Mix::Suite,
                "fuzz" => mix = Mix::Fuzz,
                "both" => mix = Mix::Both,
                other => {
                    eprintln!("--mix needs suite|fuzz|both, got '{other}'");
                    usage();
                }
            },
            "--deadline-ms" => {
                deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--fuel" => fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel")),
            "--min-warm-ratio" => {
                min_warm_ratio = Some(parse_f64(
                    &flag_value(&mut args, "--min-warm-ratio"),
                    "--min-warm-ratio",
                ))
            }
            "--clients" => {
                clients = parse_u64(&flag_value(&mut args, "--clients"), "--clients") as usize
            }
            "--keep-alive" => keep_alive = true,
            "--retries" => retries = parse_u64(&flag_value(&mut args, "--retries"), "--retries"),
            "--allow-503" => allow_503 = true,
            "--max-polite-p99-us" => {
                max_polite_p99_us = Some(parse_u64(
                    &flag_value(&mut args, "--max-polite-p99-us"),
                    "--max-polite-p99-us",
                ))
            }
            "--adversary" => match flag_value(&mut args, "--adversary").as_str() {
                "slow-loris" => adversary = Some(Adversary::SlowLoris),
                "disconnect" => adversary = Some(Adversary::Disconnect),
                "hot" => adversary = Some(Adversary::Hot),
                "crash" => adversary = Some(Adversary::Crash),
                other => {
                    eprintln!("--adversary needs slow-loris|disconnect|hot|crash, got '{other}'");
                    usage();
                }
            },
            "--adversary-threads" => {
                adversary_threads = parse_u64(
                    &flag_value(&mut args, "--adversary-threads"),
                    "--adversary-threads",
                ) as usize
            }
            "--format" => match flag_value(&mut args, "--format").as_str() {
                "text" => format_json = false,
                "json" => format_json = true,
                other => {
                    eprintln!("--format needs 'text' or 'json', got '{other}'");
                    usage();
                }
            },
            _ => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
        }
    }
    if addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    if requests == 0 || repeat == 0 || concurrency == 0 {
        eprintln!("--requests, --repeat, and --concurrency must be positive");
        usage();
    }

    // Probe before loading so a dead server is exit 2, not 100 errors.
    if let Err(e) = HttpClient::new(&addr, false, 0).post("/v1/healthz", "", "") {
        eprintln!("mha-load: server unreachable: {e}");
        std::process::exit(2);
    }

    let bodies = build_requests(requests, seed, mix, deadline_ms, fuel);
    let client_of = |i: usize| -> String {
        if clients > 0 {
            format!("c{}", i % clients)
        } else {
            String::new()
        }
    };
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(requests * repeat));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let phase_wall_us: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(repeat));
    let stop_adversaries = AtomicBool::new(false);
    let adv_stats: Mutex<AdvStats> = Mutex::new(AdvStats::default());
    let retry_after_missing = AtomicU64::new(0);

    std::thread::scope(|outer| {
        if let Some(mode) = adversary {
            for t in 0..adversary_threads {
                let addr = &addr;
                let stop = &stop_adversaries;
                let stats = &adv_stats;
                outer.spawn(move || adversary_loop(mode, addr, seed, t, stop, stats));
            }
        }
        for phase in 0..repeat {
            let next = AtomicUsize::new(0);
            let phase_start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..concurrency.min(requests) {
                    scope.spawn(|| {
                        let mut http = HttpClient::new(&addr, keep_alive, retries);
                        loop {
                            let i = next.fetch_add(1, Ordering::SeqCst);
                            if i >= requests {
                                return;
                            }
                            if rate > 0.0 {
                                let due = Duration::from_secs_f64(i as f64 / rate);
                                let elapsed = phase_start.elapsed();
                                if due > elapsed {
                                    std::thread::sleep(due - elapsed);
                                }
                            }
                            let client = client_of(i);
                            let start = Instant::now();
                            match http.post("/v1/compile", &bodies[i], &client) {
                                Ok(r) => {
                                    if (r.code == 429 || r.code == 503) && !r.retry_after {
                                        retry_after_missing.fetch_add(1, Ordering::SeqCst);
                                    }
                                    samples.lock().unwrap().push(Sample {
                                        phase,
                                        client,
                                        code: r.code,
                                        served: r.served,
                                        latency_us: start.elapsed().as_micros() as u64,
                                    })
                                }
                                Err(e) => errors.lock().unwrap().push(e),
                            }
                        }
                    });
                }
            });
            let wall = phase_start.elapsed().as_micros() as u64;
            phase_wall_us.lock().unwrap().push(wall);
            eprintln!(
                "mha-load: phase {phase} ({}) done in {:.1} ms",
                if phase == 0 { "cold" } else { "warm" },
                wall as f64 / 1000.0
            );
        }
        stop_adversaries.store(true, Ordering::SeqCst);
    });

    let samples = samples.into_inner().unwrap();
    let errors = errors.into_inner().unwrap();
    let phase_wall_us = phase_wall_us.into_inner().unwrap();
    let adv_stats = adv_stats.into_inner().unwrap();
    let retry_after_missing = retry_after_missing.load(Ordering::SeqCst);
    for e in &errors {
        eprintln!("mha-load: request failed: {e}");
    }
    if !errors.is_empty() {
        std::process::exit(2);
    }

    // Per-phase aggregation.
    let mut phase_rows = Vec::new();
    let mut gated_5xx = 0u64;
    let mut warm_phase_total = 0u64;
    let mut warm_phase_hits = 0u64;
    for (phase, &phase_wall) in phase_wall_us.iter().enumerate().take(repeat) {
        let mut lat: Vec<u64> = Vec::new();
        let mut codes: HashMap<u16, u64> = HashMap::new();
        let mut served: HashMap<String, u64> = HashMap::new();
        for s in samples.iter().filter(|s| s.phase == phase) {
            lat.push(s.latency_us);
            *codes.entry(s.code).or_insert(0) += 1;
            *served.entry(s.served.clone()).or_insert(0) += 1;
            if s.code >= 500 && !(allow_503 && s.code == 503) {
                gated_5xx += 1;
            }
            if phase > 0 {
                warm_phase_total += 1;
                if s.served != "compiled" {
                    warm_phase_hits += 1;
                }
            }
        }
        lat.sort_unstable();
        let wall_us = phase_wall.max(1);
        let rps = lat.len() as f64 * 1_000_000.0 / wall_us as f64;
        let mut code_rows: Vec<(u16, u64)> = codes.into_iter().collect();
        code_rows.sort_unstable();
        let mut served_rows: Vec<(String, u64)> = served.into_iter().collect();
        served_rows.sort();
        phase_rows.push((phase, lat, wall_us, rps, code_rows, served_rows));
    }
    let warm_ratio = if warm_phase_total > 0 {
        warm_phase_hits as f64 / warm_phase_total as f64
    } else {
        0.0
    };

    // Per-client aggregation across all phases (satellite: per-tenant
    // visibility for the fairness gate).
    let mut by_client: HashMap<String, (Vec<u64>, HashMap<u16, u64>)> = HashMap::new();
    for s in &samples {
        let name = if s.client.is_empty() {
            "-".to_string()
        } else {
            s.client.clone()
        };
        let entry = by_client.entry(name).or_default();
        entry.0.push(s.latency_us);
        *entry.1.entry(s.code).or_insert(0) += 1;
    }
    type ClientRow = (String, Vec<u64>, Vec<(u16, u64)>);
    let mut client_rows: Vec<ClientRow> = by_client
        .into_iter()
        .map(|(name, (mut lat, codes))| {
            lat.sort_unstable();
            let mut code_rows: Vec<(u16, u64)> = codes.into_iter().collect();
            code_rows.sort_unstable();
            (name, lat, code_rows)
        })
        .collect();
    client_rows.sort_by(|a, b| a.0.cmp(&b.0));

    // Polite p99 over every sample from the main request set (adversary
    // traffic never lands in `samples`).
    let polite_p99 = {
        let mut all: Vec<u64> = samples.iter().map(|s| s.latency_us).collect();
        all.sort_unstable();
        quantile(&all, 0.99)
    };

    if format_json {
        let phases_json = phase_rows
            .iter()
            .map(|(phase, lat, wall_us, rps, codes, served)| {
                let codes_json = codes
                    .iter()
                    .map(|(c, n)| format!("\"{c}\":{n}"))
                    .collect::<Vec<_>>()
                    .join(",");
                let served_json = served
                    .iter()
                    .map(|(s, n)| format!("{}:{n}", json_str(s)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"phase\":{phase},\"label\":{},\"requests\":{},\"wall_us\":{wall_us},\
                     \"rps\":{rps:.1},\"p50_us\":{},\"p99_us\":{},\"codes\":{{{codes_json}}},\
                     \"served\":{{{served_json}}}}}",
                    json_str(if *phase == 0 { "cold" } else { "warm" }),
                    lat.len(),
                    quantile(lat, 0.50),
                    quantile(lat, 0.99),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let clients_json = client_rows
            .iter()
            .map(|(name, lat, codes)| {
                let codes_json = codes
                    .iter()
                    .map(|(c, n)| format!("\"{c}\":{n}"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"client\":{},\"requests\":{},\"p50_us\":{},\"p99_us\":{},\
                     \"codes\":{{{codes_json}}}}}",
                    json_str(name),
                    lat.len(),
                    quantile(lat, 0.50),
                    quantile(lat, 0.99),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let adversary_json = match adversary {
            Some(mode) => {
                let codes_json = {
                    let mut rows: Vec<(u16, u64)> =
                        adv_stats.codes.iter().map(|(k, v)| (*k, *v)).collect();
                    rows.sort_unstable();
                    rows.iter()
                        .map(|(c, n)| format!("\"{c}\":{n}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{{\"mode\":{},\"threads\":{adversary_threads},\"attempts\":{},\
                     \"responses\":{},\"codes\":{{{codes_json}}},\"transport_errors\":{}}}",
                    json_str(mode.label()),
                    adv_stats.attempts,
                    adv_stats.responses,
                    adv_stats.transport_errors,
                )
            }
            None => "null".into(),
        };
        println!(
            "{{\"addr\":{},\"seed\":{seed},\"requests\":{requests},\"repeat\":{repeat},\
             \"concurrency\":{concurrency},\"rate\":{rate},\"keep_alive\":{keep_alive},\
             \"phases\":[{phases_json}],\"clients\":[{clients_json}],\
             \"polite_p99_us\":{polite_p99},\"retry_after_missing\":{retry_after_missing},\
             \"adversary\":{adversary_json},\
             \"warm_ratio\":{warm_ratio:.3},\"gated_5xx\":{gated_5xx}}}",
            json_str(&addr)
        );
    } else {
        println!(
            "mha-load against {addr} (seed {seed}, {requests} requests x {repeat} phases, \
             {concurrency} threads{})",
            if keep_alive { ", keep-alive" } else { "" }
        );
        for (phase, lat, _wall, rps, codes, served) in &phase_rows {
            let codes_s = codes
                .iter()
                .map(|(c, n)| format!("{c}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            let served_s = served
                .iter()
                .map(|(s, n)| format!("{s}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "  phase {phase} ({}): {:8.1} req/s  p50 {:>8} us  p99 {:>8} us  [{codes_s}]  [{served_s}]",
                if *phase == 0 { "cold" } else { "warm" },
                rps,
                quantile(lat, 0.50),
                quantile(lat, 0.99),
            );
        }
        if clients > 0 {
            for (name, lat, codes) in &client_rows {
                let codes_s = codes
                    .iter()
                    .map(|(c, n)| format!("{c}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                println!(
                    "  client {name}: {} requests  p50 {:>8} us  p99 {:>8} us  [{codes_s}]",
                    lat.len(),
                    quantile(lat, 0.50),
                    quantile(lat, 0.99),
                );
            }
        }
        if let Some(mode) = adversary {
            let codes_s = {
                let mut rows: Vec<(u16, u64)> =
                    adv_stats.codes.iter().map(|(k, v)| (*k, *v)).collect();
                rows.sort_unstable();
                rows.iter()
                    .map(|(c, n)| format!("{c}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!(
                "  adversary {} x{adversary_threads}: {} attempts, {} responses [{codes_s}], {} transport errors",
                mode.label(),
                adv_stats.attempts,
                adv_stats.responses,
                adv_stats.transport_errors,
            );
        }
        println!(
            "  warm-hit ratio {warm_ratio:.3}, gated 5xx {gated_5xx}, polite p99 {polite_p99} us, \
             429/503 without Retry-After: {retry_after_missing}"
        );
    }

    let mut failed = false;
    if gated_5xx > 0 {
        eprintln!(
            "mha-load: FAIL: {gated_5xx} gated 5xx response(s){}",
            if allow_503 { " (503 excluded)" } else { "" }
        );
        failed = true;
    }
    if retry_after_missing > 0 {
        eprintln!("mha-load: FAIL: {retry_after_missing} 429/503 response(s) without Retry-After");
        failed = true;
    }
    if let Some(min) = min_warm_ratio {
        if warm_ratio < min {
            eprintln!("mha-load: FAIL: warm-hit ratio {warm_ratio:.3} below required {min:.3}");
            failed = true;
        }
    }
    if let Some(bound) = max_polite_p99_us {
        if polite_p99 > bound {
            eprintln!("mha-load: FAIL: polite p99 {polite_p99} us above bound {bound} us");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
