//! `mha-load` — seeded load generator for `mha-serve` (EXPERIMENTS.md §S1).
//!
//! ```text
//! mha-load --addr HOST:PORT [--requests N] [--concurrency N] [--rate R]
//!          [--repeat N] [--seed N] [--mix suite|fuzz|both]
//!          [--deadline-ms N] [--fuel N] [--min-warm-ratio F]
//!          [--format text|json]
//! ```
//!
//! Builds a deterministic request mix — suite kernels by name plus raw
//! MLIR kernels from the `fuzzing` generator (`--mix both`, the default) —
//! and drives `POST /v1/compile` with it from `--concurrency` threads.
//! `--rate R` paces the whole run open-loop at R requests/second (each
//! request has a scheduled start time; threads sleep until it); `--rate 0`
//! (default) runs closed-loop, as fast as the server answers.
//!
//! The same request set is replayed `--repeat` times (default 2): phase 0
//! is the **cold** phase (the server compiles), later phases are **warm**
//! (responses come back `X-Mha-Served: cache|coalesced|warm`). Per phase
//! the report records requests/s, p50/p99 latency, status-code counts, and
//! how responses were served. Same `--seed` ⇒ byte-identical request set.
//!
//! Exit codes: **0** run clean, **1** assertions failed (any 5xx response,
//! or the warm-phase hit ratio fell below `--min-warm-ratio`), **2**
//! usage or connection errors. `--format json` stdout is one parseable
//! document; progress goes to stderr.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pass_core::report::json_str;

fn usage() -> ! {
    eprintln!(
        "usage: mha-load --addr HOST:PORT [--requests N] [--concurrency N]\n\
         \x20               [--rate R] [--repeat N] [--seed N]\n\
         \x20               [--mix suite|fuzz|both] [--deadline-ms N] [--fuel N]\n\
         \x20               [--min-warm-ratio F] [--format text|json]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn parse_f64(s: &str, flag: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a number, got '{s}'");
        usage();
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Suite,
    Fuzz,
    Both,
}

/// One response as seen by the client.
struct Sample {
    phase: usize,
    code: u16,
    served: String,
    latency_us: u64,
}

/// Minimal HTTP/1.1 POST over a fresh connection (the server closes after
/// each response, mirroring its `Connection: close`).
fn post(addr: &str, path: &str, body: &str) -> Result<(u16, String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad status line '{}'", status_line.trim()))?;
    let mut served = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("x-mha-served") {
                served = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader
        .read_exact(&mut buf)
        .map_err(|e| format!("body: {e}"))?;
    Ok((code, served, String::from_utf8_lossy(&buf).into_owned()))
}

/// The deterministic request set: suite kernel names and/or fuzzer MLIR,
/// interleaved, as `POST /v1/compile` bodies.
fn build_requests(
    n: usize,
    seed: u64,
    mix: Mix,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
) -> Vec<String> {
    let suite = kernels::all_kernels();
    let budget = |out: &mut String| {
        if let Some(ms) = deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(f) = fuel {
            out.push_str(&format!(",\"fuel\":{f}"));
        }
    };
    (0..n)
        .map(|i| {
            let fuzzy = match mix {
                Mix::Suite => false,
                Mix::Fuzz => true,
                Mix::Both => i % 2 == 1,
            };
            let mut body = if fuzzy {
                let g =
                    fuzzing::generate(seed.wrapping_add(i as u64), &fuzzing::GenConfig::default());
                format!(
                    "{{\"mlir\":{},\"name\":\"load-{}\"",
                    json_str(&g.text),
                    g.seed
                )
            } else {
                let k = &suite[(seed as usize + i) % suite.len()];
                format!("{{\"kernel\":{}", json_str(k.name))
            };
            budget(&mut body);
            body.push('}');
            body
        })
        .collect()
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let mut addr = String::new();
    let mut requests = 50usize;
    let mut concurrency = 4usize;
    let mut rate = 0f64;
    let mut repeat = 2usize;
    let mut seed = 0u64;
    let mut mix = Mix::Both;
    let mut deadline_ms = None;
    let mut fuel = None;
    let mut min_warm_ratio: Option<f64> = None;
    let mut format_json = false;

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = flag_value(&mut args, "--addr"),
            "--requests" => {
                requests = parse_u64(&flag_value(&mut args, "--requests"), "--requests") as usize
            }
            "--concurrency" => {
                concurrency =
                    parse_u64(&flag_value(&mut args, "--concurrency"), "--concurrency") as usize
            }
            "--rate" => rate = parse_f64(&flag_value(&mut args, "--rate"), "--rate"),
            "--repeat" => {
                repeat = parse_u64(&flag_value(&mut args, "--repeat"), "--repeat") as usize
            }
            "--seed" => seed = parse_u64(&flag_value(&mut args, "--seed"), "--seed"),
            "--mix" => match flag_value(&mut args, "--mix").as_str() {
                "suite" => mix = Mix::Suite,
                "fuzz" => mix = Mix::Fuzz,
                "both" => mix = Mix::Both,
                other => {
                    eprintln!("--mix needs suite|fuzz|both, got '{other}'");
                    usage();
                }
            },
            "--deadline-ms" => {
                deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--fuel" => fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel")),
            "--min-warm-ratio" => {
                min_warm_ratio = Some(parse_f64(
                    &flag_value(&mut args, "--min-warm-ratio"),
                    "--min-warm-ratio",
                ))
            }
            "--format" => match flag_value(&mut args, "--format").as_str() {
                "text" => format_json = false,
                "json" => format_json = true,
                other => {
                    eprintln!("--format needs 'text' or 'json', got '{other}'");
                    usage();
                }
            },
            _ => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
        }
    }
    if addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    if requests == 0 || repeat == 0 || concurrency == 0 {
        eprintln!("--requests, --repeat, and --concurrency must be positive");
        usage();
    }

    // Probe before loading so a dead server is exit 2, not 100 errors.
    if let Err(e) = post(&addr, "/v1/healthz", "") {
        eprintln!("mha-load: server unreachable: {e}");
        std::process::exit(2);
    }

    let bodies = build_requests(requests, seed, mix, deadline_ms, fuel);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(requests * repeat));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let mut phase_wall_us: Vec<u64> = Vec::with_capacity(repeat);

    for phase in 0..repeat {
        let next = AtomicUsize::new(0);
        let phase_start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..concurrency.min(requests) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= requests {
                        return;
                    }
                    if rate > 0.0 {
                        let due = Duration::from_secs_f64(i as f64 / rate);
                        let elapsed = phase_start.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                    }
                    let start = Instant::now();
                    match post(&addr, "/v1/compile", &bodies[i]) {
                        Ok((code, served, _body)) => samples.lock().unwrap().push(Sample {
                            phase,
                            code,
                            served,
                            latency_us: start.elapsed().as_micros() as u64,
                        }),
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
        });
        phase_wall_us.push(phase_start.elapsed().as_micros() as u64);
        eprintln!(
            "mha-load: phase {phase} ({}) done in {:.1} ms",
            if phase == 0 { "cold" } else { "warm" },
            phase_wall_us[phase] as f64 / 1000.0
        );
    }

    let samples = samples.into_inner().unwrap();
    let errors = errors.into_inner().unwrap();
    for e in &errors {
        eprintln!("mha-load: request failed: {e}");
    }
    if !errors.is_empty() {
        std::process::exit(2);
    }

    // Per-phase aggregation.
    let mut phase_rows = Vec::new();
    let mut five_xx = 0u64;
    let mut warm_phase_total = 0u64;
    let mut warm_phase_hits = 0u64;
    for (phase, &phase_wall) in phase_wall_us.iter().enumerate().take(repeat) {
        let mut lat: Vec<u64> = Vec::new();
        let mut codes: HashMap<u16, u64> = HashMap::new();
        let mut served: HashMap<String, u64> = HashMap::new();
        for s in samples.iter().filter(|s| s.phase == phase) {
            lat.push(s.latency_us);
            *codes.entry(s.code).or_insert(0) += 1;
            *served.entry(s.served.clone()).or_insert(0) += 1;
            if s.code >= 500 {
                five_xx += 1;
            }
            if phase > 0 {
                warm_phase_total += 1;
                if s.served != "compiled" {
                    warm_phase_hits += 1;
                }
            }
        }
        lat.sort_unstable();
        let wall_us = phase_wall.max(1);
        let rps = lat.len() as f64 * 1_000_000.0 / wall_us as f64;
        let mut code_rows: Vec<(u16, u64)> = codes.into_iter().collect();
        code_rows.sort_unstable();
        let mut served_rows: Vec<(String, u64)> = served.into_iter().collect();
        served_rows.sort();
        phase_rows.push((phase, lat, wall_us, rps, code_rows, served_rows));
    }
    let warm_ratio = if warm_phase_total > 0 {
        warm_phase_hits as f64 / warm_phase_total as f64
    } else {
        0.0
    };

    if format_json {
        let phases_json = phase_rows
            .iter()
            .map(|(phase, lat, wall_us, rps, codes, served)| {
                let codes_json = codes
                    .iter()
                    .map(|(c, n)| format!("\"{c}\":{n}"))
                    .collect::<Vec<_>>()
                    .join(",");
                let served_json = served
                    .iter()
                    .map(|(s, n)| format!("{}:{n}", json_str(s)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"phase\":{phase},\"label\":{},\"requests\":{},\"wall_us\":{wall_us},\
                     \"rps\":{rps:.1},\"p50_us\":{},\"p99_us\":{},\"codes\":{{{codes_json}}},\
                     \"served\":{{{served_json}}}}}",
                    json_str(if *phase == 0 { "cold" } else { "warm" }),
                    lat.len(),
                    quantile(lat, 0.50),
                    quantile(lat, 0.99),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"addr\":{},\"seed\":{seed},\"requests\":{requests},\"repeat\":{repeat},\
             \"concurrency\":{concurrency},\"rate\":{rate},\"phases\":[{phases_json}],\
             \"warm_ratio\":{warm_ratio:.3},\"five_xx\":{five_xx}}}",
            json_str(&addr)
        );
    } else {
        println!("mha-load against {addr} (seed {seed}, {requests} requests x {repeat} phases, {concurrency} threads)");
        for (phase, lat, _wall, rps, codes, served) in &phase_rows {
            let codes_s = codes
                .iter()
                .map(|(c, n)| format!("{c}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            let served_s = served
                .iter()
                .map(|(s, n)| format!("{s}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "  phase {phase} ({}): {:8.1} req/s  p50 {:>8} us  p99 {:>8} us  [{codes_s}]  [{served_s}]",
                if *phase == 0 { "cold" } else { "warm" },
                rps,
                quantile(lat, 0.50),
                quantile(lat, 0.99),
            );
        }
        println!("  warm-hit ratio {warm_ratio:.3}, 5xx responses {five_xx}");
    }

    let mut failed = false;
    if five_xx > 0 {
        eprintln!("mha-load: FAIL: {five_xx} 5xx response(s)");
        failed = true;
    }
    if let Some(min) = min_warm_ratio {
        if warm_ratio < min {
            eprintln!("mha-load: FAIL: warm-hit ratio {warm_ratio:.3} below required {min:.3}");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
