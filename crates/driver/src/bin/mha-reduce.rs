//! `mha-reduce` — minimize a failing kernel while preserving its failure
//! signature.
//!
//! ```text
//! mha-reduce <kernel.mlir | entry.finding> [--seed N] [--out PATH]
//!            [--max-attempts N] [--format text|json]
//!            [--step-limit N] [--fuel N] [--deadline-ms N]
//! ```
//!
//! The input is either a raw MLIR kernel or a corpus entry written by
//! `mha-fuzz` (recognized by the `.finding` extension; the stored kernel
//! text and seed are used). The kernel is first run through the oracle
//! stack to capture its failure signature, then delta-debugged: drop
//! loops/statements/buffers, shrink bounds, constant-fold subexpressions —
//! keeping only edits under which the kernel *still fails with the same
//! signature*.
//!
//! The minimized kernel goes to stdout (or `--out`); statistics go to
//! stderr. With `--format json`, stdout is instead one JSON document
//! carrying the text and the statistics.
//!
//! Exit codes: 0 reduction ran (even if nothing shrank), 1 the input does
//! not fail any oracle (nothing to reduce), 2 infrastructure/usage error.

use std::path::PathBuf;

use driver::corpus::Corpus;
use fuzzing::reduce::{reduce, ReduceOpts};
use fuzzing::{run_oracles, OracleOpts};
use pass_core::report::json_str;

fn usage() -> ! {
    eprintln!(
        "usage: mha-reduce <kernel.mlir | entry.finding> [--seed N] [--out PATH]\n\
         \x20                 [--max-attempts N] [--format text|json]\n\
         \x20                 [--step-limit N] [--fuel N] [--deadline-ms N]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn main() {
    let mut input: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut format_json = false;
    let mut ropts = ReduceOpts::default();
    let mut oracle = OracleOpts::default();

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = Some(parse_u64(&flag_value(&mut args, "--seed"), "--seed")),
            "--out" => out_path = Some(PathBuf::from(flag_value(&mut args, "--out"))),
            "--max-attempts" => {
                ropts.max_attempts =
                    parse_u64(&flag_value(&mut args, "--max-attempts"), "--max-attempts") as usize
            }
            "--format" => match flag_value(&mut args, "--format").as_str() {
                "text" => format_json = false,
                "json" => format_json = true,
                other => {
                    eprintln!("--format needs 'text' or 'json', got '{other}'");
                    usage();
                }
            },
            "--step-limit" => {
                oracle.step_limit =
                    parse_u64(&flag_value(&mut args, "--step-limit"), "--step-limit")
            }
            "--fuel" => oracle.fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel")),
            "--deadline-ms" => {
                oracle.deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => {
                eprintln!("only one input file is accepted");
                usage();
            }
        }
    }

    let Some(input) = input else { usage() };

    // A corpus entry brings its own kernel text and seed; a raw file is
    // read verbatim with the seed from --seed (default 0).
    let (text, entry_seed) = if input.extension().map(|x| x == "finding").unwrap_or(false) {
        match Corpus::load(&input) {
            Ok(e) => (e.kernel, e.seed),
            Err(e) => {
                eprintln!("mha-reduce: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match std::fs::read_to_string(&input) {
            Ok(t) => (t, 0),
            Err(e) => {
                eprintln!("mha-reduce: cannot read {}: {e}", input.display());
                std::process::exit(2);
            }
        }
    };
    let seed = seed.unwrap_or(entry_seed);

    let target = match run_oracles(&text, seed, &oracle) {
        Err(f) => f.signature(),
        Ok(()) => {
            eprintln!(
                "mha-reduce: {} passes every oracle at seed {seed}; nothing to reduce",
                input.display()
            );
            std::process::exit(1);
        }
    };
    eprintln!("mha-reduce: target signature: {target}");

    let result = reduce(
        &text,
        &ropts,
        &mut |cand| matches!(run_oracles(cand, seed, &oracle), Err(f) if f.signature() == target),
    );
    eprintln!(
        "mha-reduce: {} -> {} lines ({} attempts, {} accepted)",
        text.lines().count(),
        result.text.lines().count(),
        result.attempts,
        result.accepted
    );

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &result.text) {
            eprintln!("mha-reduce: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if format_json {
        println!(
            "{{\"signature\":{},\"seed\":{seed},\"original_lines\":{},\"reduced_lines\":{},\"attempts\":{},\"accepted\":{},\"text\":{}}}",
            json_str(target.as_str()),
            text.lines().count(),
            result.text.lines().count(),
            result.attempts,
            result.accepted,
            json_str(&result.text)
        );
    } else if out_path.is_none() {
        print!("{}", result.text);
    }
    std::process::exit(0);
}
