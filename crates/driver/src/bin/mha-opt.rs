//! `mha-opt` — an `opt`-style driver: read IR, run a named pass pipeline,
//! print the result. This is the paper's tool as a standalone utility:
//! `mha-opt --passes hls-adaptor in.ll`.
//!
//! ```text
//! mha-opt [--passes p1,p2,...] [--lint] [--report-json <path>] [<file>|-]
//! ```
//!
//! The input level is auto-detected: text containing a `func.func` op is
//! parsed as MLIR-lite and run through the MLIR pass registry
//! (`canonicalize`, `interchange-innermost`, ...); anything else is LLVM
//! IR and uses the unified LLVM registry (cleanup passes plus the
//! adaptor's passes, `verify-compat`, and the assembled `hls-adaptor`
//! pipeline). An unknown name exits with the full list of valid names.
//! An explicitly empty `--passes` spec is a clean no-op (the input is
//! verified and reprinted) with a warning. After the pipeline runs, a
//! per-pass timing/size report is printed to stderr, and `--report-json`
//! additionally writes it as JSON (schema in EXPERIMENTS.md). `--lint`
//! runs the mha-lint suite over the *result* and prints findings to
//! stderr; error-severity findings make the exit code 1.
//!
//! A pass that refuses to run — e.g. `interchange-innermost` on a nest
//! whose dependence witness shows the swap would reverse a carried
//! dependence — fails the pipeline: the witness diagnostic goes to stderr
//! and the exit code is 1, with the input left unprinted.

use std::io::Read;

/// MLIR-lite mode: parse, verify, run the MLIR pass registry, reprint.
/// Never returns — exits 0 on success, 1 on parse/verify/pass failure
/// (including a legality refusal, whose witness diagnostic is the error),
/// 2 on usage/IO errors.
fn run_mlir(src: &str, spec: &str, lint: bool, report_json: Option<String>) -> ! {
    if lint {
        eprintln!("warning: --lint analyzes LLVM IR; ignored for MLIR input");
    }
    let mut module = match mlir_lite::parser::parse_module("mha-opt", src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = mlir_lite::verifier::verify_module(&module) {
        eprintln!("input does not verify: {e}");
        std::process::exit(1);
    }
    let pm = match mlir_lite::passes::registry().build_pipeline(spec) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match pm.run(&mut module) {
        Ok(report) => {
            if !report.passes.is_empty() {
                eprint!("{}", report.render());
            }
            if let Some(path) = report_json {
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    print!("{}", mlir_lite::printer::print_module(&module));
    std::process::exit(0);
}

fn main() {
    let mut passes_arg: Option<String> = None;
    let mut lint = false;
    let mut report_json: Option<String> = None;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--passes" => {
                passes_arg = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--passes needs a comma-separated pass list");
                    std::process::exit(2);
                }))
            }
            "--lint" => lint = true,
            "--report-json" => {
                report_json = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--report-json needs a path");
                    std::process::exit(2);
                }))
            }
            "-" => input = Some(a),
            _ if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'");
                std::process::exit(2);
            }
            _ => input = Some(a),
        }
    }

    let src = match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("cannot read stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
    };

    // An explicit-but-empty spec (`--passes ""` or commas/whitespace only)
    // is a deliberate no-op, but almost always a scripting mistake — say so.
    let empty_spec = passes_arg
        .as_deref()
        .is_some_and(|spec| spec.split(',').all(|s| s.trim().is_empty()));
    if empty_spec {
        eprintln!(
            "warning: --passes spec '{}' names no passes; \
             verifying and reprinting the input unchanged",
            passes_arg.as_deref().unwrap_or("")
        );
    }

    // MLIR-lite input is recognized structurally: every module at that
    // level carries a `func.func` op, which never appears in LLVM IR text.
    if src.contains("func.func") {
        run_mlir(&src, passes_arg.as_deref().unwrap_or(""), lint, report_json);
    }

    let mut module = match llvm_lite::parser::parse_module("mha-opt", &src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = llvm_lite::verifier::verify_module(&module) {
        eprintln!("input does not verify: {e}");
        std::process::exit(1);
    }

    // One namespace over every pass the workspace defines.
    let mut registry = llvm_lite::transforms::registry();
    registry.merge(adaptor::registry());
    let pm = match registry.build_pipeline(passes_arg.as_deref().unwrap_or("")) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match pm.run(&mut module) {
        Ok(report) => {
            if !report.passes.is_empty() {
                eprint!("{}", report.render());
            }
            if let Some(path) = report_json {
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    print!("{}", llvm_lite::printer::print_module(&module));

    if lint {
        let report = driver::lint::LintReport::for_module(&module, true);
        eprint!("{}", report.render());
        if report.exit_code() >= 2 {
            std::process::exit(1);
        }
    }
}
