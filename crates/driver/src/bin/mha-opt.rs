//! `mha-opt` — an `opt`-style driver over `.ll` files: read IR, run a
//! named pass pipeline, print the result. This is the paper's tool as a
//! standalone utility: `mha-opt --passes hls-adaptor in.ll`.
//!
//! ```text
//! mha-opt [--passes p1,p2,...] [<file.ll>|-]
//!
//! passes: mem2reg, dce, simplify-cfg, fold-constants, licm,
//!         legalize-intrinsics, demote-malloc, recover-arrays,
//!         normalize-loop-metadata, synthesize-interface, legalize-names,
//!         scrub-attributes, verify-compat,
//!         hls-adaptor (the full adaptor pipeline)
//! ```

use std::io::Read;

use llvm_lite::transforms::ModulePass;

fn pass_by_name(name: &str) -> Option<Box<dyn ModulePass>> {
    Some(match name {
        "mem2reg" => Box::new(llvm_lite::transforms::Mem2Reg),
        "dce" => Box::new(llvm_lite::transforms::Dce),
        "simplify-cfg" => Box::new(llvm_lite::transforms::SimplifyCfg),
        "fold-constants" => Box::new(llvm_lite::transforms::FoldConstants),
        "licm" => Box::new(llvm_lite::transforms::Licm),
        "legalize-intrinsics" => Box::new(adaptor::passes::LegalizeIntrinsics),
        "demote-malloc" => Box::new(adaptor::passes::DemoteMalloc),
        "recover-arrays" => Box::new(adaptor::passes::RecoverArrays),
        "normalize-loop-metadata" => Box::new(adaptor::passes::NormalizeLoopMetadata),
        "synthesize-interface" => Box::new(adaptor::passes::SynthesizeInterface),
        "legalize-names" => Box::new(adaptor::passes::LegalizeNames),
        "scrub-attributes" => Box::new(adaptor::passes::ScrubAttributes),
        "verify-compat" => Box::new(adaptor::compat::VerifyCompat),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let passes_arg = args
        .iter()
        .position(|a| a == "--passes")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_default();
    let input = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--passes")
        })
        .map(|(_, a)| a.clone())
        .next_back();

    let src = match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
    };

    let mut module = match llvm_lite::parser::parse_module("mha-opt", &src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = llvm_lite::verifier::verify_module(&module) {
        eprintln!("input does not verify: {e}");
        std::process::exit(1);
    }

    for name in passes_arg.split(',').filter(|s| !s.is_empty()) {
        if name == "hls-adaptor" {
            match adaptor::run_adaptor(&mut module, &adaptor::AdaptorConfig::default()) {
                Ok(report) => eprintln!(
                    "; hls-adaptor: {} -> {} compatibility issues",
                    report.issues_before, report.issues_after
                ),
                Err(e) => {
                    eprintln!("hls-adaptor failed: {e}");
                    std::process::exit(1);
                }
            }
            continue;
        }
        let Some(pass) = pass_by_name(name) else {
            eprintln!("unknown pass '{name}'");
            std::process::exit(2);
        };
        // Run directly with the pass manager's post-verification behavior.
        match pass.run(&mut module) {
            Ok(changed) => {
                if let Err(e) = llvm_lite::verifier::verify_module(&module) {
                    eprintln!("module broken after '{name}': {e}");
                    std::process::exit(1);
                }
                eprintln!("; {name}: {}", if changed { "changed" } else { "no change" });
            }
            Err(e) => {
                eprintln!("pass '{name}' failed: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", llvm_lite::printer::print_module(&module));
}
