//! `mha-csynth` — synthesize a kernel through one or both flows and print
//! the Vitis-style reports side by side.
//!
//! ```text
//! mha-csynth <kernel|all> [--ii <n>] [--unroll <n>] [--flow adaptor|cpp|both]
//!            [--deadline-ms <n>] [--fuel <n>]
//! ```
//!
//! `--deadline-ms` and `--fuel` run every flow + synthesis attempt under a
//! [`pass_core::Budget`]; an exhausted budget surfaces as a structured
//! `budget exceeded` failure instead of a hang.

use std::time::Duration;

use driver::{cosim, run_flow_budgeted, Directives, Flow};
use pass_core::Budget;
use vitis_sim::{csynth_budgeted, Target};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!(
            "usage: mha-csynth <kernel|all> [--ii <n>] [--unroll <n>] [--partition <n>] \
             [--flatten] [--flow adaptor|cpp|both] [--deadline-ms <n>] [--fuel <n>]"
        );
        std::process::exit(2);
    };
    let directives = Directives {
        pipeline_ii: parse_flag(&args, "--ii").map(|v| v as u32).or(Some(1)),
        unroll_factor: parse_flag(&args, "--unroll").map(|v| v as u32),
        partition_factor: parse_flag(&args, "--partition").map(|v| v as u32),
        flatten: args.iter().any(|a| a == "--flatten"),
    };
    let deadline_ms = parse_flag(&args, "--deadline-ms");
    let fuel = parse_flag(&args, "--fuel");
    let budget_for_attempt = || {
        let mut b = Budget::unlimited();
        if let Some(ms) = deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(units) = fuel {
            b = b.with_fuel(units);
        }
        b
    };
    let flow_sel = args
        .iter()
        .position(|a| a == "--flow")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both");
    let flows: Vec<Flow> = match flow_sel {
        "adaptor" => vec![Flow::Adaptor],
        "cpp" => vec![Flow::Cpp],
        _ => vec![Flow::Adaptor, Flow::Cpp],
    };
    let list: Vec<&kernels::Kernel> = if name == "all" {
        kernels::all_kernels().iter().collect()
    } else {
        match kernels::kernel(name) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown kernel '{name}'");
                std::process::exit(2);
            }
        }
    };
    let target = Target::default();
    let mut failures = 0u32;
    for k in list {
        println!("### {} — {}", k.name, k.description);
        for &flow in &flows {
            // One budget per (kernel, flow) attempt: the flow stages and
            // synthesis draw from the same deadline and fuel pool.
            let budget = budget_for_attempt();
            let art = match run_flow_budgeted(k, &directives, flow, &budget) {
                Ok(a) => a,
                Err(e) => {
                    println!("  [{}] flow failed: {e}", flow.label());
                    failures += 1;
                    continue;
                }
            };
            match csynth_budgeted(&art.module, &target, &budget) {
                Ok(report) => match cosim(&art.module, k, 2026) {
                    Ok(sim) => {
                        println!(
                            "--- flow: {} (cosim max err {})",
                            flow.label(),
                            sim.max_abs_err
                        );
                        print!("{}", report.render());
                    }
                    Err(e) => {
                        println!("  [{}] cosim failed: {e}", flow.label());
                        failures += 1;
                    }
                },
                Err(e) => {
                    println!("  [{}] csynth failed: {e}", flow.label());
                    failures += 1;
                }
            }
        }
        println!();
    }
    // Same convention as mha-batch: partial failures exit 1.
    if failures > 0 {
        std::process::exit(1);
    }
}
