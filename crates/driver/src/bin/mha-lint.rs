//! `mha-lint` — catch HLS-breaking IR before synthesis.
//!
//! ```text
//! mha-lint [--format text|json] [--no-explain] [<kernel>... | all | <file.ll>...]
//! ```
//!
//! Targets are benchmark kernel names (run through the adaptor flow to
//! HLS-ready IR first), the literal `all` for the whole suite, or paths to
//! `.ll` files (linted as-is). With no target, the whole suite is linted.
//!
//! Exit code is the worst finding across all targets: 0 clean, 1 warnings,
//! 2 errors (or a usage/read failure). II-blocker notes never affect it.

use driver::lint::LintReport;

struct Job {
    name: String,
    report: Result<LintReport, String>,
}

fn main() {
    let mut format_json = false;
    let mut explain = true;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format_json = false,
                Some("json") => format_json = true,
                other => {
                    eprintln!(
                        "--format needs 'text' or 'json', got {}",
                        other.unwrap_or("nothing")
                    );
                    std::process::exit(2);
                }
            },
            "--no-explain" => explain = false,
            _ if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'");
                eprintln!(
                    "usage: mha-lint [--format text|json] [--no-explain] \
                     [<kernel>... | all | <file.ll>...]"
                );
                std::process::exit(2);
            }
            _ => targets.push(a),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = kernels::all_kernels()
            .iter()
            .map(|k| k.name.to_string())
            .collect();
    }

    let jobs: Vec<Job> = targets
        .iter()
        .map(|t| Job {
            name: t.clone(),
            report: lint_target(t, explain),
        })
        .collect();

    let mut exit = 0;
    if format_json {
        let mut out = String::from("[");
        for (i, j) in jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &j.report {
                Ok(r) => {
                    out.push_str(&format!(
                        "{{\"target\":{},\"errors\":{},\"warnings\":{},\"notes\":{},\"findings\":{}}}",
                        pass_core::report::json_str(&j.name),
                        r.count(pass_core::Severity::Error),
                        r.count(pass_core::Severity::Warning),
                        r.count(pass_core::Severity::Note),
                        r.to_json(),
                    ));
                    exit = exit.max(r.exit_code());
                }
                Err(e) => {
                    out.push_str(&format!(
                        "{{\"target\":{},\"failure\":{}}}",
                        pass_core::report::json_str(&j.name),
                        pass_core::report::json_str(e),
                    ));
                    exit = 2;
                }
            }
        }
        out.push(']');
        println!("{out}");
    } else {
        for j in &jobs {
            match &j.report {
                Ok(r) => {
                    if jobs.len() > 1 {
                        println!(
                            "== {} — {} error(s), {} warning(s), {} note(s)",
                            j.name,
                            r.count(pass_core::Severity::Error),
                            r.count(pass_core::Severity::Warning),
                            r.count(pass_core::Severity::Note),
                        );
                    }
                    print!("{}", r.render());
                    exit = exit.max(r.exit_code());
                }
                Err(e) => {
                    eprintln!("mha-lint: {}: {e}", j.name);
                    exit = 2;
                }
            }
        }
    }
    std::process::exit(exit);
}

fn lint_target(t: &str, explain: bool) -> Result<LintReport, String> {
    if std::path::Path::new(t)
        .extension()
        .is_some_and(|e| e == "ll")
    {
        let src = std::fs::read_to_string(t).map_err(|e| format!("cannot read: {e}"))?;
        let m = llvm_lite::parser::parse_module(t, &src).map_err(|e| e.to_string())?;
        Ok(LintReport::for_module(&m, explain))
    } else {
        driver::lint_kernel(t, explain).map_err(|e| e.to_string())
    }
}
