//! The two competing flows from one kernel definition.

use adaptor::{AdaptorConfig, AdaptorReport};
use kernels::Kernel;
use mlir_lite::dialects::hls;
use mlir_lite::MlirModule;
use pass_core::PipelineReport;

use crate::{DriverError, Result};

/// Which path from MLIR to HLS-ready LLVM IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Direct IR translation + the paper's adaptor.
    Adaptor,
    /// Emit HLS C++, re-compile with the Vitis-stand-in frontend.
    Cpp,
}

impl Flow {
    /// Display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Flow::Adaptor => "adaptor",
            Flow::Cpp => "hls-c++",
        }
    }
}

/// Everything a flow run produces.
pub struct FlowArtifacts {
    /// The HLS-ready module.
    pub module: llvm_lite::Module,
    /// Adaptor pass report (adaptor flow only).
    pub adaptor_report: Option<AdaptorReport>,
    /// Generated C++ (C++ flow only).
    pub cpp_source: Option<String>,
    /// Per-stage timing of the MLIR→HLS-ready-IR conversion.
    pub report: PipelineReport,
    /// MLIR-level structure statistics of the input (for Table 3).
    pub mlir_stats: mlir_lite::stats::ModuleStats,
}

impl FlowArtifacts {
    /// Total conversion wall-clock time, microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.report.total_us()
    }
}

/// Parse a kernel into MLIR and apply directives.
pub fn prepare_mlir(
    kernel: &Kernel,
    directives: &crate::experiment::Directives,
) -> Result<MlirModule> {
    prepare_mlir_text(kernel.name, kernel.mlir, directives)
}

/// [`prepare_mlir`] over raw MLIR text — the entry point for sources that
/// are not suite [`Kernel`]s (fuzzer output, `mha-serve` request bodies).
pub fn prepare_mlir_text(
    name: &str,
    mlir: &str,
    directives: &crate::experiment::Directives,
) -> Result<MlirModule> {
    let mut m = mlir_lite::parser::parse_module(name, mlir)?;
    mlir_lite::verifier::verify_module(&m)?;
    if let Some(ii) = directives.pipeline_ii {
        use mlir_lite::passes::MlirPass;
        mlir_lite::passes::PipelineInnermost { ii }.run(&mut m)?;
    }
    if let Some(factor) = directives.unroll_factor {
        for f in &mut m.ops {
            f.walk_mut(&mut |op| {
                if op.name == "affine.for" && hls::pipeline_ii(op).is_some() {
                    hls::set_unroll(op, factor);
                }
            });
        }
    }
    if directives.flatten {
        for f in &mut m.ops {
            f.walk_mut(&mut |op| {
                if op.name == "affine.for" && hls::pipeline_ii(op).is_some() {
                    op.attrs
                        .insert(hls::FLATTEN.to_string(), mlir_lite::Attr::Bool(true));
                }
            });
        }
    }
    if let Some(factor) = directives.partition_factor {
        for f in &mut m.ops {
            f.attrs.insert(
                hls::ARRAY_PARTITION.to_string(),
                mlir_lite::Attr::Str(format!("cyclic:{factor}")),
            );
        }
    }
    Ok(m)
}

/// Run one flow over a kernel.
pub fn run_flow(
    kernel: &Kernel,
    directives: &crate::experiment::Directives,
    flow: Flow,
) -> Result<FlowArtifacts> {
    run_flow_budgeted(kernel, directives, flow, &pass_core::Budget::unlimited())
}

/// [`run_flow`] under a [`pass_core::Budget`]: every stage boundary
/// (lower, adaptor, emit-cpp, frontend) charges one fuel unit and checks
/// the deadline, and the pass pipelines inside (adaptor legalization, C++
/// cleanup fixpoint) run budgeted too. A trip surfaces through
/// [`DriverError`]'s string channel but keeps the stable budget grammar, so
/// `pass_core::BudgetError::from_rendered` recovers it structurally.
pub fn run_flow_budgeted(
    kernel: &Kernel,
    directives: &crate::experiment::Directives,
    flow: Flow,
    budget: &pass_core::Budget,
) -> Result<FlowArtifacts> {
    run_flow_on_text(kernel.name, kernel.mlir, directives, flow, budget)
}

/// [`run_flow_budgeted`] over raw MLIR text: the same staged, budgeted
/// pipeline, but sourced from a `(name, mlir)` pair instead of a suite
/// [`Kernel`]. This is what `mha-serve` compiles request bodies through,
/// and what the fuzzing oracles effectively re-implement.
pub fn run_flow_on_text(
    name: &str,
    mlir: &str,
    directives: &crate::experiment::Directives,
    flow: Flow,
    budget: &pass_core::Budget,
) -> Result<FlowArtifacts> {
    let charge = |stage: &str| -> Result<()> {
        budget
            .charge(1, stage)
            .map_err(|e| DriverError::from(e.to_diagnostic()))
    };
    let m = prepare_mlir_text(name, mlir, directives)?;
    let mlir_stats = mlir_lite::stats::module_stats(&m);
    let mut report = PipelineReport::new(flow.label());
    match flow {
        Flow::Adaptor => {
            charge("flow/lower")?;
            let mut module =
                report.time_stage("lower", || lowering::lower(m).map_err(DriverError::from))?;
            let adaptor_report = report.time_stage("adaptor", || {
                adaptor::run_adaptor_budgeted(&mut module, &AdaptorConfig::default(), budget)
                    .map_err(DriverError::from)
            })?;
            Ok(FlowArtifacts {
                module,
                adaptor_report: Some(adaptor_report),
                cpp_source: None,
                report,
                mlir_stats,
            })
        }
        Flow::Cpp => {
            charge("flow/emit-cpp")?;
            let cpp = report.time_stage("emit-cpp", || {
                hls_cpp::emit_cpp(&m).map_err(DriverError::from)
            })?;
            charge("flow/frontend")?;
            let mut module = report.time_stage("frontend", || {
                hls_cpp::compile_cpp(name, &cpp).map_err(DriverError::from)
            })?;
            let cleanup = llvm_lite::transforms::standard_cleanup()
                .run_to_fixpoint_budgeted(&mut module, 4, budget)
                .map_err(DriverError::from)?;
            report.extend_prefixed("cleanup", &cleanup);
            Ok(FlowArtifacts {
                module,
                adaptor_report: None,
                cpp_source: Some(cpp),
                report,
                mlir_stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Directives;

    #[test]
    fn both_flows_produce_synthesis_ready_modules() {
        let k = kernels::kernel("gemm").unwrap();
        let d = Directives::pipelined(1);
        for flow in [Flow::Adaptor, Flow::Cpp] {
            let art = run_flow(k, &d, flow).unwrap();
            let r = vitis_sim::csynth(&art.module, &vitis_sim::Target::default());
            assert!(r.is_ok(), "{flow:?}: {r:?}");
        }
    }

    #[test]
    fn adaptor_flow_reports_resolved_issues() {
        let k = kernels::kernel("two_mm").unwrap();
        let art = run_flow(k, &Directives::default(), Flow::Adaptor).unwrap();
        let rep = art.adaptor_report.unwrap();
        assert!(rep.issues_before > 0);
        assert_eq!(rep.issues_after, 0);
        // two_mm's heap temporary must have been demoted.
        assert!(rep.changed_passes.iter().any(|p| p == "demote-malloc"));
    }

    #[test]
    fn flow_report_breaks_down_stages() {
        let k = kernels::kernel("gemm").unwrap();
        let adaptor = run_flow(k, &Directives::default(), Flow::Adaptor).unwrap();
        let stages: Vec<&str> = adaptor
            .report
            .passes
            .iter()
            .map(|p| p.pass.as_str())
            .collect();
        assert_eq!(stages, vec!["lower", "adaptor"]);
        assert_eq!(adaptor.elapsed_us(), adaptor.report.total_us());
        let cpp = run_flow(k, &Directives::default(), Flow::Cpp).unwrap();
        let stages: Vec<&str> = cpp.report.passes.iter().map(|p| p.pass.as_str()).collect();
        assert!(stages.starts_with(&["emit-cpp", "frontend"]));
        assert!(stages.iter().any(|s| s.starts_with("cleanup/")));
    }

    #[test]
    fn cpp_flow_exposes_source() {
        let k = kernels::kernel("fir").unwrap();
        let art = run_flow(k, &Directives::pipelined(1), Flow::Cpp).unwrap();
        let src = art.cpp_source.unwrap();
        assert!(src.contains("#pragma HLS PIPELINE II=1"));
        assert!(src.contains("void fir("));
    }

    #[test]
    fn directives_survive_both_flows() {
        let k = kernels::kernel("gemm").unwrap();
        let d = Directives {
            pipeline_ii: Some(2),
            unroll_factor: Some(2),
            partition_factor: None,
            flatten: false,
        };
        for flow in [Flow::Adaptor, Flow::Cpp] {
            let art = run_flow(k, &d, flow).unwrap();
            assert!(
                art.module
                    .loop_mds
                    .iter()
                    .any(|md| md.pipeline_ii == Some(2) && md.unroll_factor == Some(2)),
                "{flow:?} lost directives: {:?}",
                art.module.loop_mds
            );
        }
    }
}
