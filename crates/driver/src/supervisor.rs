//! The supervised execution layer behind `mha-batch`.
//!
//! This module supplies the robustness vocabulary the batch engine runs
//! under (see ARCHITECTURE.md's supervisor section):
//!
//! * a typed **fault taxonomy** ([`FaultClass`]: transient / deterministic
//!   / infra) and a structured per-kernel failure type ([`StageError`])
//!   that keeps budget trips ([`StageError::BudgetExceeded`]) distinct
//!   from ordinary faults;
//! * a **retry policy** ([`RetryPolicy`]) with exponential backoff that
//!   retries *only* transient faults — a deterministic failure is never
//!   re-run, it would fail identically;
//! * a seeded **fault-injection harness** ([`ChaosEngine`], the
//!   generalization of PR 3's `--inject-panic`) that deterministically
//!   injects panics, delays, I/O errors, fuel exhaustion, and adaptor
//!   rejections at stage boundaries as a pure function of
//!   `(seed, kernel, site, attempt)`;
//! * a write-ahead **run journal** ([`Journal`], `journal.jsonl` next to
//!   the artifact cache) that records every kernel start and outcome so a
//!   killed batch run resumes with `--resume`, skipping completed kernels.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use kernels::digest::{fnv1a64, Hasher64};
use pass_core::json::{self, JsonValue};
use pass_core::report::json_str;
use pass_core::{BudgetError, BudgetKind};

/// How a non-budget failure should be treated by the supervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Environmental and expected to clear on retry (cache I/O, injected
    /// I/O faults). The only class the [`RetryPolicy`] retries.
    Transient,
    /// A property of the input: the same stage fails the same way every
    /// time (legalization rejection, frontend errors). Never retried.
    Deterministic,
    /// The harness itself misbehaved (journal writes, worker panics).
    /// Not retried; surfaced loudly.
    Infra,
}

impl FaultClass {
    /// Canonical lowercase label (summary JSON, journal records).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Deterministic => "deterministic",
            FaultClass::Infra => "infra",
        }
    }

    /// Inverse of [`FaultClass::as_str`].
    pub fn parse(s: &str) -> Option<FaultClass> {
        match s {
            "transient" => Some(FaultClass::Transient),
            "deterministic" => Some(FaultClass::Deterministic),
            "infra" => Some(FaultClass::Infra),
            _ => None,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured per-kernel stage failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageError {
    /// The stage ran out of budget (deadline or fuel) and unwound
    /// cooperatively.
    BudgetExceeded {
        /// Stage that observed the trip (e.g. `csynth/schedule`).
        stage: String,
        /// Which resource ran out.
        kind: BudgetKind,
        /// Human detail from the trip site.
        detail: String,
    },
    /// The stage failed with a classified fault.
    Fault {
        /// Stage that failed (e.g. `flow`, `cache/csynth`).
        stage: String,
        /// Taxonomy class driving retry/degrade decisions.
        class: FaultClass,
        /// The underlying error text.
        detail: String,
    },
    /// The worker *process* running the stage died — a segfault, abort,
    /// stack overflow, RSS-limit kill, or truncated reply pipe. These are
    /// the failure modes `catch_unwind` cannot catch; the `driver::warden`
    /// isolation layer turns them into this variant instead of letting
    /// them take the whole server down.
    Crash {
        /// Stage (or warden op) that was in flight when the worker died.
        stage: String,
        /// What killed it: `signal 9`, `exit code 134`, `rss limit
        /// (peak 312480 kB)`, `reply truncated`, …
        cause: String,
        /// The worker's peak RSS in kB, when observed (child self-report
        /// or supervisor watchdog sample).
        rss_peak_kb: Option<u64>,
    },
}

impl StageError {
    /// Classify a rendered error from `stage`: budget trips (recognized by
    /// their stable grammar anywhere in the text) become
    /// [`StageError::BudgetExceeded`]; everything else becomes a fault of
    /// the given `class`.
    pub fn classify(stage: &str, rendered: &str, class: FaultClass) -> StageError {
        match BudgetError::from_rendered(rendered) {
            Some(trip) => StageError::BudgetExceeded {
                stage: trip.stage,
                kind: trip.kind,
                detail: trip.detail,
            },
            None => StageError::Fault {
                stage: stage.to_string(),
                class,
                detail: rendered.to_string(),
            },
        }
    }

    /// The stage that failed.
    pub fn stage(&self) -> &str {
        match self {
            StageError::BudgetExceeded { stage, .. }
            | StageError::Fault { stage, .. }
            | StageError::Crash { stage, .. } => stage,
        }
    }

    /// Class label for summaries: `budget-deadline` / `budget-fuel` for
    /// budget trips, `crash` for worker deaths, the [`FaultClass`] label
    /// otherwise.
    pub fn class_label(&self) -> String {
        match self {
            StageError::BudgetExceeded { kind, .. } => format!("budget-{kind}"),
            StageError::Fault { class, .. } => class.as_str().to_string(),
            StageError::Crash { .. } => "crash".to_string(),
        }
    }

    /// The failure detail text.
    pub fn detail(&self) -> &str {
        match self {
            StageError::BudgetExceeded { detail, .. } | StageError::Fault { detail, .. } => detail,
            StageError::Crash { cause, .. } => cause,
        }
    }

    /// True for budget trips.
    pub fn is_budget(&self) -> bool {
        matches!(self, StageError::BudgetExceeded { .. })
    }

    /// True for worker-process deaths.
    pub fn is_crash(&self) -> bool {
        matches!(self, StageError::Crash { .. })
    }

    /// Serialize as a JSON object fragment (journal + summary schema).
    /// `error` carries the raw detail; stage/class/kind live in their own
    /// fields, so the rendered form is reconstructible. Crashes add an
    /// optional `rss_peak_kb` field.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"stage\":{},\"class\":{},\"error\":{}",
            json_str(self.stage()),
            json_str(&self.class_label()),
            json_str(self.detail())
        );
        if let StageError::Crash {
            rss_peak_kb: Some(kb),
            ..
        } = self
        {
            out.push_str(&format!(",\"rss_peak_kb\":{kb}"));
        }
        out.push('}');
        out
    }

    /// Parse back out of the [`StageError::to_json`] object.
    pub fn from_json(v: &JsonValue) -> Result<StageError, String> {
        let stage = v
            .get("stage")
            .and_then(|x| x.as_str())
            .ok_or("stage error JSON: missing 'stage'")?;
        let class = v
            .get("class")
            .and_then(|x| x.as_str())
            .ok_or("stage error JSON: missing 'class'")?;
        let error = v
            .get("error")
            .and_then(|x| x.as_str())
            .ok_or("stage error JSON: missing 'error'")?;
        if let Some(kind) = class.strip_prefix("budget-").and_then(BudgetKind::parse) {
            Ok(StageError::BudgetExceeded {
                stage: stage.to_string(),
                kind,
                detail: error.to_string(),
            })
        } else if class == "crash" {
            Ok(StageError::Crash {
                stage: stage.to_string(),
                cause: error.to_string(),
                rss_peak_kb: v.get("rss_peak_kb").and_then(|x| x.as_u64()),
            })
        } else {
            Ok(StageError::Fault {
                stage: stage.to_string(),
                class: FaultClass::parse(class)
                    .ok_or_else(|| format!("stage error JSON: unknown class '{class}'"))?,
                detail: error.to_string(),
            })
        }
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the stable budget grammar so the rendered form still
            // parses back via `BudgetError::from_rendered`.
            StageError::BudgetExceeded {
                stage,
                kind,
                detail,
            } => write!(f, "{kind} budget exceeded in {stage}: {detail}"),
            StageError::Fault {
                stage,
                class,
                detail,
            } => write!(f, "{class} fault in {stage}: {detail}"),
            StageError::Crash {
                stage,
                cause,
                rss_peak_kb,
            } => match rss_peak_kb {
                Some(kb) => write!(f, "worker crash in {stage}: {cause} (peak rss {kb} kB)"),
                None => write!(f, "worker crash in {stage}: {cause}"),
            },
        }
    }
}

impl std::error::Error for StageError {}

/// Exponential-backoff retry for transient faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (0-based first try has none).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }

    /// Run `op` (which receives the 0-based attempt number) until it
    /// succeeds, fails non-transiently, or attempts run out. Only
    /// [`FaultClass::Transient`] failures are retried — with exponential
    /// backoff between attempts. On exhaustion the last transient fault is
    /// returned, its detail annotated with the attempt count.
    pub fn run<T>(
        &self,
        stage: &str,
        mut op: impl FnMut(u32) -> Result<T, (FaultClass, String)>,
    ) -> Result<T, StageError> {
        let attempts = self.max_attempts.max(1);
        let mut last: Option<String> = None;
        for attempt in 0..attempts {
            std::thread::sleep(self.delay_for(attempt));
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err((FaultClass::Transient, detail)) => last = Some(detail),
                Err((class, detail)) => {
                    return Err(StageError::Fault {
                        stage: stage.to_string(),
                        class,
                        detail,
                    })
                }
            }
        }
        Err(StageError::Fault {
            stage: stage.to_string(),
            class: FaultClass::Transient,
            detail: format!(
                "still failing after {attempts} attempt(s): {}",
                last.unwrap_or_default()
            ),
        })
    }
}

/// Parsed `--chaos seed,rate` configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed feeding the per-site hash.
    pub seed: u64,
    /// Injection probability per eligible site, in `[0, 1]`.
    pub rate: f64,
}

impl ChaosConfig {
    /// Parse the CLI form `seed,rate` (e.g. `--chaos 7,0.2`).
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        let (seed, rate) = s
            .split_once(',')
            .ok_or_else(|| format!("--chaos expects 'seed,rate', got '{s}'"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("--chaos: bad seed '{seed}'"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("--chaos: bad rate '{rate}'"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--chaos: rate {rate} outside [0, 1]"));
        }
        Ok(ChaosConfig { seed, rate })
    }

    /// Canonical `seed,rate` form (journal config identity).
    pub fn repr(&self) -> String {
        format!("{},{}", self.seed, self.rate)
    }
}

/// What the chaos engine can inject at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFault {
    /// Panic the worker (exercises catch_unwind isolation).
    Panic,
    /// Sleep briefly (exercises deadline budgets).
    Delay,
    /// A transient I/O error (exercises the retry policy).
    IoError,
    /// Drain the kernel's fuel pool (exercises budget unwinding).
    FuelExhaustion,
    /// A deterministic adaptor legalization failure (exercises the
    /// degraded C++-flow fallback).
    AdaptorReject,
    /// Serve-layer: drop the client connection instead of writing the
    /// response (the journal must still make the response recoverable).
    SocketReset,
    /// Serve-layer: stall the connection read path (exercises header
    /// deadlines and keep-alive idle handling).
    SlowRead,
    /// Serve-layer: stall a compile worker before it starts (exercises
    /// queue-wait shedding and fairness under pressure).
    WorkerStall,
    /// Warden-layer: abort the worker *process* mid-compile (exercises
    /// crash containment — the supervisor must map the death to a typed
    /// [`StageError::Crash`] instead of dying with it).
    WorkerKill,
    /// Warden-layer: balloon the worker's RSS until the watchdog's
    /// `--max-worker-rss-mb` limit kills it.
    RssBomb,
    /// Warden-layer: write a truncated reply frame and exit cleanly
    /// (exercises reply-pipe truncation detection).
    ReplyTruncate,
}

/// Deterministic seeded fault injector. Whether (and what) to inject is a
/// pure function of `(seed, kernel, site, attempt)`, so a given seed
/// reproduces the same faults in any execution order — which is what makes
/// resume-under-chaos equivalence testable — while including the attempt
/// number lets transient faults clear on retry.
#[derive(Clone, Copy, Debug)]
pub struct ChaosEngine {
    cfg: ChaosConfig,
}

impl ChaosEngine {
    /// Build from a parsed config.
    pub fn new(cfg: ChaosConfig) -> ChaosEngine {
        ChaosEngine { cfg }
    }

    /// The configuration this engine injects under.
    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// Roll the dice for one site. Returns the fault to inject (chosen
    /// uniformly from `menu`) with probability `rate`, else `None`.
    pub fn roll(
        &self,
        kernel: &str,
        site: &str,
        attempt: u32,
        menu: &[ChaosFault],
    ) -> Option<ChaosFault> {
        if menu.is_empty() || self.cfg.rate <= 0.0 {
            return None;
        }
        let mut h = Hasher64::new();
        h.field(&self.cfg.seed.to_le_bytes())
            .field_str(kernel)
            .field_str(site)
            .field(&attempt.to_le_bytes());
        let x = h.finish();
        // Top 53 bits give a uniform unit float; low bits pick the fault.
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.cfg.rate {
            Some(menu[(x % menu.len() as u64) as usize])
        } else {
            None
        }
    }
}

/// Record of one completed kernel as replayed from the journal.
pub type JournalOutcomes = HashMap<String, JsonValue>;

/// The write-ahead run journal (`journal.jsonl`).
///
/// Line 1 is a header binding the journal to a batch configuration; each
/// kernel then contributes a `start` record before it runs and a `done`
/// record carrying its full serialized outcome. Every line carries a
/// trailing ` fnv1a:<16 hex>` integrity checksum of the record text, so
/// resume can tell a torn write from silent disk corruption; lines
/// written by older versions (no suffix) still parse. Records are flushed
/// per write, so a killed run loses at most the in-flight kernels — whose
/// `start` has no matching `done` and which therefore re-run on
/// `--resume`. A truncated trailing line (the kill race) is tolerated;
/// corrupt *mid-file* records are skipped with a warning (the affected
/// kernel simply re-runs) rather than poisoning the whole resume.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

/// Why a journal could not be opened for resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The journal's recorded config differs from the requested one —
    /// resuming would mix artifacts of different configurations.
    ConfigMismatch {
        /// Config recorded in the journal header.
        recorded: String,
        /// Config of the current invocation.
        requested: String,
    },
    /// I/O or format problem (rendered).
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::ConfigMismatch {
                recorded,
                requested,
            } => write!(
                f,
                "journal was written by a different configuration (recorded '{recorded}', \
                 requested '{requested}'); re-run without --resume to start over"
            ),
            JournalError::Io(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl Journal {
    /// File name, placed next to the cache entries.
    pub const FILE_NAME: &'static str = "journal.jsonl";

    /// Start a fresh journal at `path` (truncating any previous run) bound
    /// to `config`.
    pub fn create(path: &Path, config: &str) -> Result<Journal, JournalError> {
        Journal::create_kind(path, "mha-batch", config)
    }

    /// Like [`Journal::create`] but with an explicit `kind` magic in the
    /// header, so other long-running tools (`mha-serve`) can keep their own
    /// journals without being mistaken for batch runs on `--resume`.
    pub fn create_kind(path: &Path, kind: &str, config: &str) -> Result<Journal, JournalError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| JournalError::Io(format!("cannot create {}: {e}", path.display())))?;
        }
        let mut file = fs::File::create(path)
            .map_err(|e| JournalError::Io(format!("cannot create {}: {e}", path.display())))?;
        let header = format!(
            "{{\"journal\":{},\"version\":1,\"config\":{}}}",
            json_str(kind),
            json_str(config)
        );
        file.write_all(checksummed(&header).as_bytes())
            .and_then(|_| file.flush())
            .map_err(|e| JournalError::Io(format!("cannot append to {}: {e}", path.display())))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Open `path` for `--resume`: validate the header against `config`,
    /// replay completed outcomes, and reopen in append mode. A missing
    /// journal degrades to [`Journal::create`] with no replayed outcomes.
    pub fn resume(path: &Path, config: &str) -> Result<(Journal, JournalOutcomes), JournalError> {
        Journal::resume_kind(path, "mha-batch", config)
    }

    /// Like [`Journal::resume`] but validating an explicit `kind` magic.
    pub fn resume_kind(
        path: &Path,
        kind: &str,
        config: &str,
    ) -> Result<(Journal, JournalOutcomes), JournalError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((
                    Journal::create_kind(path, kind, config)?,
                    JournalOutcomes::new(),
                ))
            }
            Err(e) => {
                return Err(JournalError::Io(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let outcomes = parse_journal(&text, kind, config)?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(format!("cannot reopen {}: {e}", path.display())))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            outcomes,
        ))
    }

    /// The journal's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, record: String) -> Result<(), JournalError> {
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(checksummed(&record).as_bytes())
            .and_then(|_| file.flush())
            .map_err(|e| JournalError::Io(format!("cannot append to {}: {e}", self.path.display())))
    }

    /// Record that `kernel` is about to run (the write-ahead part). A
    /// failed append (disk full, journal directory gone) surfaces as a
    /// typed [`JournalError::Io`] naming the failing path.
    pub fn begin(&self, kernel: &str) -> Result<(), JournalError> {
        self.write_line(format!(
            "{{\"event\":\"start\",\"kernel\":{}}}",
            json_str(kernel)
        ))
    }

    /// Record `kernel`'s completed outcome (`outcome_json` must be a
    /// single JSON object, the batch layer's serialized `RunOutcome`).
    pub fn finish(&self, kernel: &str, outcome_json: &str) -> Result<(), JournalError> {
        self.write_line(format!(
            "{{\"event\":\"done\",\"kernel\":{},\"outcome\":{}}}",
            json_str(kernel),
            outcome_json
        ))
    }
}

/// Append the per-line integrity suffix: ` fnv1a:<16 hex>` over the record
/// text, plus the record terminator.
fn checksummed(record: &str) -> String {
    format!("{record} fnv1a:{:016x}\n", fnv1a64(record.as_bytes()))
}

/// Split a journal line back into its record text, verifying the integrity
/// suffix when one is present. Lines written before checksumming carry no
/// suffix and are accepted as-is (backward-compatible read path).
fn verify_record(line: &str) -> Result<&str, String> {
    const TAG: &str = " fnv1a:";
    if let Some(idx) = line.rfind(TAG) {
        let (record, suffix) = line.split_at(idx);
        let hex = &suffix[TAG.len()..];
        if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            let computed = fnv1a64(record.as_bytes());
            return if u64::from_str_radix(hex, 16) == Ok(computed) {
                Ok(record)
            } else {
                Err(format!(
                    "checksum mismatch (recorded {hex}, computed {computed:016x})"
                ))
            };
        }
    }
    Ok(line)
}

/// Parse journal text: header validation + completed-outcome replay.
/// The *last* unparsable line is tolerated silently (kill-mid-write);
/// corrupt *mid-file* lines — failed checksum or unparsable JSON — are
/// skipped with a warning so one flipped bit costs a kernel re-run, not
/// the whole resume. A corrupt header is still a hard error: the config
/// binding cannot be trusted.
fn parse_journal(text: &str, kind: &str, config: &str) -> Result<JournalOutcomes, JournalError> {
    let mut lines = text.lines().enumerate().peekable();
    let (_, header) = lines
        .next()
        .ok_or_else(|| JournalError::Io("empty journal".to_string()))?;
    let header =
        verify_record(header).map_err(|e| JournalError::Io(format!("bad journal header: {e}")))?;
    let header =
        json::parse(header).map_err(|e| JournalError::Io(format!("bad journal header: {e}")))?;
    if header.get("journal").and_then(|v| v.as_str()) != Some(kind) {
        return Err(JournalError::Io(format!("not an {kind} journal")));
    }
    let recorded = header
        .get("config")
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string();
    if recorded != config {
        return Err(JournalError::ConfigMismatch {
            recorded,
            requested: config.to_string(),
        });
    }
    let mut outcomes = JournalOutcomes::new();
    while let Some((lineno, line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match verify_record(line) {
            Ok(r) => r,
            // Truncated tail from a kill mid-write: the kernel re-runs.
            Err(_) if lines.peek().is_none() => break,
            Err(e) => {
                eprintln!(
                    "warning: journal: skipping corrupt record at line {}: {e}",
                    lineno + 1
                );
                continue;
            }
        };
        let rec = match json::parse(record) {
            Ok(r) => r,
            Err(_) if lines.peek().is_none() => break,
            Err(e) => {
                eprintln!(
                    "warning: journal: skipping corrupt record at line {}: {e}",
                    lineno + 1
                );
                continue;
            }
        };
        let event = rec.get("event").and_then(|v| v.as_str()).unwrap_or("");
        let kernel = rec.get("kernel").and_then(|v| v.as_str()).unwrap_or("");
        if event == "done" && !kernel.is_empty() {
            if let Some(outcome) = rec.get("outcome") {
                outcomes.insert(kernel.to_string(), outcome.clone());
            }
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_retries_only_transient_faults() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        // Transient fault clears on the final attempt.
        let mut tries = 0;
        let out = policy.run("cache/flow", |attempt| {
            tries += 1;
            if attempt < 2 {
                Err((FaultClass::Transient, "flaky".to_string()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(tries, 3);

        // Deterministic faults are never retried.
        let mut tries = 0;
        let err = policy
            .run::<()>("flow", |_| {
                tries += 1;
                Err((FaultClass::Deterministic, "bad input".to_string()))
            })
            .unwrap_err();
        assert_eq!(tries, 1);
        assert_eq!(
            err,
            StageError::Fault {
                stage: "flow".to_string(),
                class: FaultClass::Deterministic,
                detail: "bad input".to_string(),
            }
        );

        // Exhaustion surfaces the attempt count.
        let err = policy
            .run::<()>("cache/flow", |_| {
                Err((FaultClass::Transient, "still flaky".to_string()))
            })
            .unwrap_err();
        match err {
            StageError::Fault { class, detail, .. } => {
                assert_eq!(class, FaultClass::Transient);
                assert!(detail.contains("3 attempt(s)"), "{detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        assert_eq!(p.delay_for(0), Duration::ZERO);
        assert_eq!(p.delay_for(1), Duration::from_millis(2));
        assert_eq!(p.delay_for(2), Duration::from_millis(4));
        assert_eq!(p.delay_for(3), Duration::from_millis(8));
        assert_eq!(p.delay_for(4), Duration::from_millis(10));
        assert_eq!(p.delay_for(9), Duration::from_millis(10));
    }

    #[test]
    fn chaos_is_deterministic_and_rate_bounded() {
        let cfg = ChaosConfig::parse("7,0.25").unwrap();
        assert_eq!(
            cfg,
            ChaosConfig {
                seed: 7,
                rate: 0.25
            }
        );
        assert_eq!(cfg.repr(), "7,0.25");
        let engine = ChaosEngine::new(cfg);
        let menu = [ChaosFault::Panic, ChaosFault::Delay, ChaosFault::IoError];
        // Determinism: identical inputs, identical outputs.
        for site in ["flow", "csynth", "cosim"] {
            for attempt in 0..4 {
                assert_eq!(
                    engine.roll("gemm", site, attempt, &menu),
                    engine.roll("gemm", site, attempt, &menu)
                );
            }
        }
        // Rate ~ 0.25: across many sites roughly a quarter fire.
        let fired = (0..1000)
            .filter(|i| engine.roll("k", &format!("site{i}"), 0, &menu).is_some())
            .count();
        assert!(
            (150..350).contains(&fired),
            "expected ~250 of 1000 injections, got {fired}"
        );
        // Zero rate never fires; empty menus never fire.
        let off = ChaosEngine::new(ChaosConfig { seed: 7, rate: 0.0 });
        assert_eq!(off.roll("gemm", "flow", 0, &menu), None);
        assert_eq!(engine.roll("gemm", "flow", 0, &[]), None);
        // Bad CLI forms are rejected.
        assert!(ChaosConfig::parse("7").is_err());
        assert!(ChaosConfig::parse("x,0.5").is_err());
        assert!(ChaosConfig::parse("7,1.5").is_err());
    }

    #[test]
    fn stage_error_classification_and_json_round_trip() {
        // A budget trip hidden in rendered text is recovered structurally.
        let trip = BudgetError::new(BudgetKind::Fuel, "csynth/schedule", "pool empty");
        let e = StageError::classify(
            "csynth",
            &format!("csynth failed: {trip}"),
            FaultClass::Deterministic,
        );
        assert_eq!(
            e,
            StageError::BudgetExceeded {
                stage: "csynth/schedule".to_string(),
                kind: BudgetKind::Fuel,
                detail: "pool empty".to_string(),
            }
        );
        assert!(e.is_budget());
        assert_eq!(e.class_label(), "budget-fuel");
        // Ordinary errors keep their class.
        let f = StageError::classify("flow", "no such kernel", FaultClass::Deterministic);
        assert_eq!(f.class_label(), "deterministic");
        assert!(!f.is_budget());
        // Worker crashes carry their own label and optional peak RSS.
        let c = StageError::Crash {
            stage: "warden".to_string(),
            cause: "signal 9".to_string(),
            rss_peak_kb: Some(312_480),
        };
        assert_eq!(c.class_label(), "crash");
        assert!(c.is_crash() && !c.is_budget());
        assert!(c.to_string().contains("peak rss 312480 kB"), "{c}");
        let c2 = StageError::Crash {
            stage: "warden".to_string(),
            cause: "reply truncated".to_string(),
            rss_peak_kb: None,
        };
        // JSON round-trips every shape.
        for err in [e, f, c, c2] {
            let v = json::parse(&err.to_json()).unwrap();
            assert_eq!(StageError::from_json(&v).unwrap(), err);
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mha-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn journal_replays_only_completed_kernels() {
        let path = temp_journal("replay");
        let j = Journal::create(&path, "cfg-a").unwrap();
        j.begin("gemm").unwrap();
        j.finish("gemm", "{\"status\":\"ok\",\"n\":1}").unwrap();
        j.begin("fir").unwrap(); // killed mid-run: no done record
        drop(j);

        let (_j, outcomes) = Journal::resume(&path, "cfg-a").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes["gemm"].get("status").unwrap().as_str(), Some("ok"));
        assert!(!outcomes.contains_key("fir"), "unfinished kernel re-runs");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_tolerates_truncated_tail_and_skips_interior_garbage() {
        let path = temp_journal("truncated");
        let j = Journal::create(&path, "cfg").unwrap();
        j.finish("gemm", "{\"status\":\"ok\"}").unwrap();
        drop(j);
        // Simulate a kill mid-write: a half record at EOF.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"event\":\"done\",\"kernel\":\"fir\",\"outco");
        fs::write(&path, &text).unwrap();
        let (_j, outcomes) = Journal::resume(&path, "cfg").unwrap();
        assert_eq!(outcomes.len(), 1);
        drop(_j);

        // Interior garbage costs only the affected record (skip-and-warn),
        // not the whole resume.
        let garbage = text.replace(
            "{\"event\":\"done\",\"kernel\":\"gemm\"",
            "{\"event\" GARBAGE \"kernel\":\"gemm\"",
        );
        fs::write(&path, &garbage).unwrap();
        let (_j, outcomes) = Journal::resume(&path, "cfg").unwrap();
        assert!(outcomes.is_empty(), "garbaged record must not replay");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_checksums_catch_tampered_but_parseable_records() {
        let path = temp_journal("checksum");
        let j = Journal::create(&path, "cfg").unwrap();
        j.finish("gemm", "{\"status\":\"ok\"}").unwrap();
        j.finish("fir", "{\"status\":\"ok\"}").unwrap();
        drop(j);
        // Bit-rot that keeps the JSON valid: flip gemm's recorded status.
        // Without checksums this silently replays a wrong outcome.
        let text = fs::read_to_string(&path).unwrap();
        let gemm_line = text
            .lines()
            .find(|l| l.contains("\"gemm\""))
            .unwrap()
            .to_string();
        let tampered = text.replace(
            &gemm_line,
            &gemm_line.replace("\"status\":\"ok\"", "\"status\":\"no\""),
        );
        assert_ne!(text, tampered);
        fs::write(&path, &tampered).unwrap();
        let (_j, outcomes) = Journal::resume(&path, "cfg").unwrap();
        assert!(
            !outcomes.contains_key("gemm"),
            "tampered record must be dropped, got {outcomes:?}"
        );
        assert!(outcomes.contains_key("fir"), "intact record still replays");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_reads_legacy_lines_without_checksums() {
        let path = temp_journal("legacy");
        // A journal written before the integrity suffix existed.
        fs::write(
            &path,
            "{\"journal\":\"mha-batch\",\"version\":1,\"config\":\"cfg\"}\n\
             {\"event\":\"start\",\"kernel\":\"gemm\"}\n\
             {\"event\":\"done\",\"kernel\":\"gemm\",\"outcome\":{\"status\":\"ok\"}}\n",
        )
        .unwrap();
        let (_j, outcomes) = Journal::resume(&path, "cfg").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes["gemm"].get("status").unwrap().as_str(), Some("ok"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_append_failure_is_typed_and_names_the_path() {
        let dir = std::env::temp_dir().join(format!("mha-journal-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let j = Journal::create(&path, "cfg").unwrap();
        j.begin("gemm").unwrap();
        // Yank the file out from under the open handle and replace it with
        // a directory so the next flush cannot be satisfied... a plain
        // unlinked file still accepts writes, so instead exercise the
        // typed error by resuming from an unreadable path.
        drop(j);
        let err = Journal::resume(&dir, "cfg").unwrap_err();
        match err {
            JournalError::Io(msg) => {
                assert!(msg.contains(&dir.display().to_string()), "{msg}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_refuses_config_mismatch_and_heals_when_missing() {
        let path = temp_journal("config");
        let j = Journal::create(&path, "cfg-a").unwrap();
        j.finish("gemm", "{}").unwrap();
        drop(j);
        match Journal::resume(&path, "cfg-b") {
            Err(JournalError::ConfigMismatch {
                recorded,
                requested,
            }) => {
                assert_eq!(recorded, "cfg-a");
                assert_eq!(requested, "cfg-b");
            }
            other => panic!("expected config mismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
        // Resume with no journal on disk starts a fresh one.
        let (_j, outcomes) = Journal::resume(&path, "cfg-b").unwrap();
        assert!(outcomes.is_empty());
        assert!(path.exists());
        let _ = fs::remove_file(&path);
    }
}
