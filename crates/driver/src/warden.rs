//! Process-isolated compilation workers: crash/OOM containment.
//!
//! `catch_unwind` (PR 3) contains panics, but not the failure modes that
//! kill a *process*: stack overflow past the parsers' depth guards,
//! allocator OOM, a segfault in a future unsafe dependency, or runaway
//! memory growth. This module gives `mha-serve`, `mha-batch --isolate`,
//! and `mha-fuzz --isolate` hard containment by running compilations in
//! child **worker processes**:
//!
//! ```text
//!   supervisor process                      worker process (re-exec'd self)
//!   ┌──────────────────────────┐            ┌─────────────────────────────┐
//!   │ Warden                   │  request   │ child_main()                │
//!   │  pool: [Worker, ...]     │ ──frame──► │   loop { read_frame;        │
//!   │  RSS watchdog thread     │            │          run op;            │
//!   │  per-request kill timer  │ ◄─frame──  │          write_frame }      │
//!   └──────────────────────────┘   reply    └─────────────────────────────┘
//! ```
//!
//! * **Transport** is pure std: `std::process::Command` with piped
//!   stdin/stdout and length-prefixed JSON frames (`mha-warden <len>\n` +
//!   exactly `len` payload bytes). A short payload is detectable reply
//!   truncation; EOF is a dead worker. No libc, no `unsafe`.
//! * **Worker death becomes data**: the supervisor classifies the exit
//!   status into a typed [`StageError::Crash`] (`signal 9`, `exit code
//!   134`, `reply truncated`, `rss limit`) that maps to HTTP 500 in
//!   serve, a `failed/crash` outcome in batch, and a `crash/...`
//!   signature in fuzzing — instead of taking the server down.
//! * **Warm pool**: workers are pre-spawned and health-checked (ping) at
//!   spawn, then reused across requests and recycled after
//!   [`WardenConfig::max_requests_per_worker`] requests.
//! * **Kill deadlines**: when a request carries a Budget deadline, a
//!   watcher thread SIGKILLs (via [`std::process::Child::kill`]) any
//!   worker that holds the reply past deadline + grace — the backstop
//!   for hangs the cooperative budget checks never reach.
//! * **RSS watchdog**: with `--max-worker-rss-mb`, a polling thread reads
//!   `/proc/<pid>/status` and kills any worker whose `VmRSS` exceeds the
//!   limit, giving the service a real memory budget to pair with fuel.
//! * **Chaos**: the `warden` site injects [`ChaosFault::WorkerKill`],
//!   [`ChaosFault::RssBomb`], and [`ChaosFault::ReplyTruncate`] *inside
//!   the child*, so crash containment is exercised end to end in tests
//!   and the CI crash-soak.

use std::collections::HashMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write as _};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fuzzing::{run_legality_oracle, run_oracles, CampaignOpts, Failure, OracleKind, OracleOpts};
use pass_core::json::{self, JsonValue};
use pass_core::report::json_str;
use pass_core::{Budget, BudgetKind};
use vitis_sim::Target;

use crate::batch::{outcome_from_json, outcome_to_json, run_supervised, BatchOptions, RunOutcome};
use crate::experiment::Directives;
use crate::flow::Flow;
use crate::supervisor::{ChaosConfig, ChaosEngine, ChaosFault, FaultClass, StageError};

/// Frame magic for the supervisor ⇄ worker pipe protocol.
const FRAME_MAGIC: &str = "mha-warden";
/// Upper bound on a single frame payload (64 MiB).
const MAX_FRAME: usize = 64 << 20;
/// Health-check (ping) reply deadline for a freshly spawned worker.
const SPAWN_PING_MS: u64 = 5_000;
/// Poll interval for the deadline and RSS watcher threads.
const WATCH_POLL_MS: u64 = 10;

/// The faults the `warden` chaos site can inject inside a worker process.
/// Public so tests and soak drivers can seed-search for keys that crash.
pub const CRASH_MENU: [ChaosFault; 3] = [
    ChaosFault::WorkerKill,
    ChaosFault::RssBomb,
    ChaosFault::ReplyTruncate,
];

/// Supervisor-side worker-pool configuration.
#[derive(Clone, Debug)]
pub struct WardenConfig {
    /// Warm workers to pre-spawn (`--warden-pool`).
    pub pool: usize,
    /// Requests one worker may serve before it is recycled
    /// (`--max-requests-per-worker`) — bounds slow leaks.
    pub max_requests_per_worker: u32,
    /// RSS ceiling per worker in MiB (`--max-worker-rss-mb`); `None`
    /// disables the watchdog.
    pub max_rss_mb: Option<u64>,
    /// Slack past a request's Budget deadline before the SIGKILL backstop
    /// fires (the cooperative budget trip should reply first).
    pub kill_grace_ms: u64,
    /// Chaos injected at the in-child `warden` site (`--warden-chaos`).
    pub chaos: Option<ChaosConfig>,
}

impl Default for WardenConfig {
    fn default() -> WardenConfig {
        WardenConfig {
            pool: 2,
            max_requests_per_worker: 256,
            max_rss_mb: None,
            kill_grace_ms: 500,
            chaos: None,
        }
    }
}

/// Worker-pool counters for `GET /v1/status` and batch summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WardenStats {
    /// Idle workers currently parked in the pool.
    pub pool_idle: usize,
    /// Workers spawned over the warden's lifetime.
    pub spawned: u64,
    /// Workers retired at their request cap.
    pub recycled: u64,
    /// Requests executed through workers.
    pub executed: u64,
    /// Worker deaths classified as [`StageError::Crash`].
    pub crashes: u64,
    /// Workers SIGKILLed at a request kill deadline.
    pub deadline_kills: u64,
    /// Workers killed by the RSS watchdog.
    pub rss_kills: u64,
}

/// Why a watcher thread killed a worker, keyed by pid until the executor
/// classifies the death.
#[derive(Clone, Copy, Debug)]
enum KillReason {
    Deadline,
    RssLimit { peak_kb: u64 },
}

/// One live worker process plus its pipe endpoints. stdin/stdout are taken
/// out of the `Child` at spawn so watcher threads can `kill()` through the
/// shared handle while the executor blocks reading the reply.
struct Worker {
    child: Arc<Mutex<Child>>,
    pid: u32,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    served: u32,
}

#[derive(Default)]
struct Counters {
    spawned: AtomicU64,
    recycled: AtomicU64,
    executed: AtomicU64,
    crashes: AtomicU64,
    deadline_kills: AtomicU64,
    rss_kills: AtomicU64,
}

/// The supervisor side of the isolation layer: a warm pool of worker
/// processes, watcher threads, and the request/reply/classify loop.
pub struct Warden {
    config: WardenConfig,
    exe: PathBuf,
    pool: Mutex<Vec<Worker>>,
    /// pid → kill reason, written by watcher threads, consumed on reply.
    kills: Arc<Mutex<HashMap<u32, KillReason>>>,
    /// pid → child handle for workers with a request in flight (what the
    /// RSS watchdog polls).
    watch: Arc<Mutex<HashMap<u32, Arc<Mutex<Child>>>>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
}

impl Warden {
    /// Build the pool: resolve the worker executable, start the RSS
    /// watchdog (when a limit is set), and pre-spawn
    /// [`WardenConfig::pool`] health-checked workers. Pre-spawn failures
    /// are tolerated (workers respawn on demand); an unresolvable worker
    /// executable is not.
    pub fn new(config: WardenConfig) -> Result<Warden, String> {
        let exe = worker_exe()?;
        let warden = Warden {
            config,
            exe,
            pool: Mutex::new(Vec::new()),
            kills: Arc::new(Mutex::new(HashMap::new())),
            watch: Arc::new(Mutex::new(HashMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(Counters::default()),
        };
        if let Some(limit_mb) = warden.config.max_rss_mb {
            warden.start_rss_watchdog(limit_mb);
        }
        for _ in 0..warden.config.pool {
            match warden.spawn_worker() {
                Ok(w) => warden.pool.lock().unwrap().push(w),
                Err(e) => {
                    eprintln!("warden: warm pre-spawn failed: {e}");
                    break;
                }
            }
        }
        Ok(warden)
    }

    /// Current pool counters.
    pub fn stats(&self) -> WardenStats {
        WardenStats {
            pool_idle: self.pool.lock().unwrap().len(),
            spawned: self.counters.spawned.load(Ordering::Relaxed),
            recycled: self.counters.recycled.load(Ordering::Relaxed),
            executed: self.counters.executed.load(Ordering::Relaxed),
            crashes: self.counters.crashes.load(Ordering::Relaxed),
            deadline_kills: self.counters.deadline_kills.load(Ordering::Relaxed),
            rss_kills: self.counters.rss_kills.load(Ordering::Relaxed),
        }
    }

    /// Run a suite kernel through `run_supervised` inside a worker. A
    /// worker death comes back as `RunOutcome::Failed(StageError::Crash)`
    /// (or a deadline budget trip for a kill-deadline SIGKILL), so callers
    /// reuse the existing outcome → status mapping unchanged.
    pub fn execute_suite(&self, name: &str, opts: &BatchOptions) -> (RunOutcome, Vec<String>) {
        let mut req = format!("{{\"op\":\"suite\",\"kernel\":{}", json_str(name));
        push_directives(&mut req, &opts.directives, opts.flow);
        push_target(&mut req, &opts.target);
        if let Some(dir) = &opts.cache_dir {
            req.push_str(&format!(
                ",\"cache_dir\":{}",
                json_str(&dir.display().to_string())
            ));
        }
        req.push_str(&format!(",\"seed\":{}", opts.seed));
        push_opt_u64(&mut req, "deadline_ms", opts.deadline_ms);
        push_opt_u64(&mut req, "fuel", opts.fuel);
        if let Some(c) = &opts.chaos {
            req.push_str(&format!(",\"chaos\":{}", json_str(&c.repr())));
        }
        self.push_wchaos(&mut req, name);
        req.push('}');
        self.run_compile(req, opts.deadline_ms)
    }

    /// Run a raw-MLIR compile (serve's flow → csynth pipeline) inside a
    /// worker.
    pub fn execute_raw(&self, rc: &RawCompile<'_>, target: &Target) -> (RunOutcome, Vec<String>) {
        let mut req = format!(
            "{{\"op\":\"raw\",\"name\":{},\"mlir\":{}",
            json_str(rc.name),
            json_str(rc.mlir)
        );
        push_directives(&mut req, rc.directives, rc.flow);
        push_target(&mut req, target);
        push_opt_u64(&mut req, "deadline_ms", rc.deadline_ms);
        push_opt_u64(&mut req, "fuel", rc.fuel);
        self.push_wchaos(&mut req, rc.name);
        req.push('}');
        self.run_compile(req, rc.deadline_ms)
    }

    /// Run the fuzzing oracle stack inside a worker: the
    /// `mha-fuzz --isolate` runner. A stack-overflow or OOM that would
    /// kill an in-process campaign becomes a `crash/warden` [`Failure`]
    /// the campaign dedups and reduces like any other finding; a
    /// kill-deadline SIGKILL maps to the budget oracle.
    pub fn execute_oracle(
        &self,
        src: &str,
        seed: u64,
        opts: &CampaignOpts,
    ) -> Result<bool, Failure> {
        let mut req = format!(
            "{{\"op\":\"oracle\",\"source\":{},\"seed\":{seed},\"step_limit\":{},\"legality\":{}",
            json_str(src),
            opts.oracle.step_limit,
            opts.legality
        );
        push_opt_u64(&mut req, "fuel", opts.oracle.fuel);
        push_opt_u64(&mut req, "deadline_ms", opts.oracle.deadline_ms);
        self.push_wchaos(&mut req, &format!("seed-{seed}"));
        req.push('}');
        let reply = match self.execute(req, "warden", opts.oracle.deadline_ms) {
            Ok(text) => text,
            Err(e) if e.is_budget() => {
                return Err(Failure::new(OracleKind::Budget, "warden", e.to_string()))
            }
            Err(e) => return Err(Failure::new(OracleKind::Crash, "warden", e.to_string())),
        };
        let v = json::parse(&reply)
            .map_err(|e| Failure::new(OracleKind::Crash, "warden", format!("bad reply: {e}")))?;
        match v.get("verdict").and_then(|x| x.as_str()) {
            Some("pass") => Ok(v
                .get("interchanged")
                .and_then(|x| x.as_bool())
                .unwrap_or(false)),
            Some("fail") => Err(Failure::new(
                v.get("oracle")
                    .and_then(|x| x.as_str())
                    .and_then(OracleKind::parse_name)
                    .unwrap_or(OracleKind::Stage),
                v.get("stage").and_then(|x| x.as_str()).unwrap_or("unknown"),
                v.get("message")
                    .and_then(|x| x.as_str())
                    .unwrap_or_default()
                    .to_string(),
            )),
            _ => Err(Failure::new(
                OracleKind::Crash,
                "warden",
                "malformed worker reply",
            )),
        }
    }

    /// Raw-op escape hatch for integration tests (e.g. `{"op":"sleep"}` to
    /// pin kill deadlines, `{"op":"hog"}` to pin the RSS watchdog).
    /// Returns the worker's reply text or the classified death.
    pub fn execute_probe(
        &self,
        request: &str,
        kill_after_ms: Option<u64>,
    ) -> Result<String, StageError> {
        self.execute(request.to_string(), "warden", kill_after_ms)
    }

    /// Stop the pool: kill and reap every idle worker. In-flight workers
    /// die when their pipes close or their watcher fires.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let workers: Vec<Worker> = std::mem::take(&mut *self.pool.lock().unwrap());
        for w in workers {
            let mut child = w.child.lock().unwrap_or_else(|p| p.into_inner());
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn push_wchaos(&self, req: &mut String, key: &str) {
        if let Some(c) = &self.config.chaos {
            req.push_str(&format!(
                ",\"wchaos\":{},\"wkey\":{}",
                json_str(&c.repr()),
                json_str(key)
            ));
        }
    }

    fn run_compile(&self, req: String, deadline_ms: Option<u64>) -> (RunOutcome, Vec<String>) {
        let reply = match self.execute(req, "warden", deadline_ms) {
            Ok(text) => text,
            Err(e) => return (RunOutcome::Failed(e), Vec::new()),
        };
        decode_outcome_reply(&reply)
    }

    /// The core request loop: checkout → watch → send → receive →
    /// classify → recycle. Returns the raw reply text, or the typed
    /// failure if the worker died instead of replying.
    fn execute(
        &self,
        request: String,
        stage: &str,
        kill_after_ms: Option<u64>,
    ) -> Result<String, StageError> {
        let mut worker = self.checkout().map_err(|detail| StageError::Fault {
            stage: stage.to_string(),
            class: FaultClass::Transient,
            detail,
        })?;
        self.watch
            .lock()
            .unwrap()
            .insert(worker.pid, worker.child.clone());
        let guard = kill_after_ms
            .map(|ms| self.arm_deadline(&worker, ms.saturating_add(self.config.kill_grace_ms)));
        let sent = write_frame(&mut worker.stdin, request.as_bytes());
        let reply = match sent {
            Ok(()) => read_frame(&mut worker.stdout),
            Err(_) => Ok(None), // stdin gone: the worker died; classify below
        };
        drop(guard);
        self.watch.lock().unwrap().remove(&worker.pid);
        self.counters.executed.fetch_add(1, Ordering::Relaxed);
        match reply {
            Ok(Some(payload)) => {
                let text = String::from_utf8_lossy(&payload).into_owned();
                // A watcher kill that raced a successful reply leaves the
                // worker compromised: return the reply but retire it.
                let late_kill = self.kills.lock().unwrap().remove(&worker.pid).is_some();
                worker.served += 1;
                if late_kill {
                    self.retire(worker, false);
                } else if worker.served >= self.config.max_requests_per_worker {
                    self.retire(worker, true);
                } else {
                    self.pool.lock().unwrap().push(worker);
                }
                Ok(text)
            }
            Ok(None) | Err(_) => Err(self.classify_death(worker, stage)),
        }
    }

    /// Turn a dead worker into a typed error: watcher-recorded kill
    /// reasons win; otherwise the exit status tells the story.
    fn classify_death(&self, worker: Worker, stage: &str) -> StageError {
        let reason = self.kills.lock().unwrap().remove(&worker.pid);
        let status = {
            let mut child = worker.child.lock().unwrap_or_else(|p| p.into_inner());
            let _ = child.kill();
            child.wait()
        };
        match reason {
            Some(KillReason::Deadline) => {
                self.counters.deadline_kills.fetch_add(1, Ordering::Relaxed);
                StageError::BudgetExceeded {
                    stage: stage.to_string(),
                    kind: BudgetKind::Deadline,
                    detail: "worker held the reply past the kill deadline and was SIGKILLed"
                        .to_string(),
                }
            }
            Some(KillReason::RssLimit { peak_kb }) => {
                self.counters.rss_kills.fetch_add(1, Ordering::Relaxed);
                StageError::Crash {
                    stage: stage.to_string(),
                    cause: "rss limit exceeded".to_string(),
                    rss_peak_kb: Some(peak_kb),
                }
            }
            None => {
                self.counters.crashes.fetch_add(1, Ordering::Relaxed);
                let cause = match status {
                    Ok(st) => describe_exit(st),
                    Err(e) => format!("wait failed: {e}"),
                };
                StageError::Crash {
                    stage: stage.to_string(),
                    cause,
                    rss_peak_kb: None,
                }
            }
        }
    }

    fn checkout(&self) -> Result<Worker, String> {
        if let Some(w) = self.pool.lock().unwrap().pop() {
            return Ok(w);
        }
        self.spawn_worker()
    }

    fn retire(&self, worker: Worker, recycled: bool) {
        if recycled {
            self.counters.recycled.fetch_add(1, Ordering::Relaxed);
        }
        self.kills.lock().unwrap().remove(&worker.pid);
        let mut child = worker.child.lock().unwrap_or_else(|p| p.into_inner());
        let _ = child.kill();
        let _ = child.wait();
    }

    fn spawn_worker(&self) -> Result<Worker, String> {
        let mut child = Command::new(&self.exe)
            .arg("--warden-child")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {}: {e}", self.exe.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let pid = child.id();
        self.counters.spawned.fetch_add(1, Ordering::Relaxed);
        let mut worker = Worker {
            child: Arc::new(Mutex::new(child)),
            pid,
            stdin,
            stdout,
            served: 0,
        };
        // Health check: the worker must answer a ping before it joins the
        // pool, bounded so a broken executable cannot hang the spawner.
        let guard = self.arm_deadline(&worker, SPAWN_PING_MS);
        let ping = write_frame(&mut worker.stdin, b"{\"op\":\"ping\"}")
            .and_then(|_| read_frame(&mut worker.stdout));
        drop(guard);
        self.kills.lock().unwrap().remove(&pid);
        match ping {
            Ok(Some(_)) => Ok(worker),
            other => {
                self.retire(worker, false);
                Err(format!("worker failed its spawn health check: {other:?}"))
            }
        }
    }

    /// Start a watcher that SIGKILLs the worker unless disarmed (guard
    /// dropped) within `ms`. First recorded reason per pid wins.
    fn arm_deadline(&self, worker: &Worker, ms: u64) -> DeadlineGuard {
        let done = Arc::new(AtomicBool::new(false));
        let child = worker.child.clone();
        let kills = self.kills.clone();
        let pid = worker.pid;
        let flag = done.clone();
        thread::spawn(move || {
            let until = Instant::now() + Duration::from_millis(ms);
            while !flag.load(Ordering::Relaxed) {
                if Instant::now() >= until {
                    kills
                        .lock()
                        .unwrap()
                        .entry(pid)
                        .or_insert(KillReason::Deadline);
                    let _ = child.lock().unwrap_or_else(|p| p.into_inner()).kill();
                    return;
                }
                thread::sleep(Duration::from_millis(WATCH_POLL_MS));
            }
        });
        DeadlineGuard { done }
    }

    fn start_rss_watchdog(&self, limit_mb: u64) {
        let watch = self.watch.clone();
        let kills = self.kills.clone();
        let shutdown = self.shutdown.clone();
        let limit_kb = limit_mb.saturating_mul(1024);
        let _ = thread::Builder::new()
            .name("warden-rss".to_string())
            .spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    let targets: Vec<(u32, Arc<Mutex<Child>>)> = watch
                        .lock()
                        .unwrap()
                        .iter()
                        .map(|(pid, child)| (*pid, child.clone()))
                        .collect();
                    for (pid, child) in targets {
                        let Some(kb) = proc_status_kb(pid, "VmRSS") else {
                            continue;
                        };
                        if kb <= limit_kb {
                            continue;
                        }
                        let mut k = kills.lock().unwrap();
                        if let std::collections::hash_map::Entry::Vacant(slot) = k.entry(pid) {
                            slot.insert(KillReason::RssLimit { peak_kb: kb });
                            let _ = child.lock().unwrap_or_else(|p| p.into_inner()).kill();
                        }
                    }
                    thread::sleep(Duration::from_millis(WATCH_POLL_MS));
                }
            });
    }
}

impl Drop for Warden {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Disarms the kill-deadline watcher on drop.
struct DeadlineGuard {
    done: Arc<AtomicBool>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// A raw-MLIR compile request shipped to a worker (mirrors serve's raw
/// pipeline inputs).
#[derive(Clone, Copy, Debug)]
pub struct RawCompile<'a> {
    /// Module name.
    pub name: &'a str,
    /// MLIR source text.
    pub mlir: &'a str,
    /// Resolved directive set.
    pub directives: &'a Directives,
    /// Which flow to run.
    pub flow: Flow,
    /// Wall-clock budget, also the supervisor's kill deadline.
    pub deadline_ms: Option<u64>,
    /// Fuel budget.
    pub fuel: Option<u64>,
}

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

/// Write one `mha-warden <len>\n<payload>` frame.
fn write_frame(w: &mut impl io::Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(format!("{FRAME_MAGIC} {}\n", payload.len()).as_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is clean EOF between frames (worker gone or
/// supervisor closed stdin); a short payload read errors with
/// `UnexpectedEof`, which the supervisor classifies as reply truncation.
fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim_end()
        .strip_prefix(FRAME_MAGIC)
        .and_then(|rest| rest.trim().parse().ok())
        .filter(|n| *n <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame header {header:?}"),
            )
        })?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ---------------------------------------------------------------------------
// Request/reply codec helpers (supervisor side)
// ---------------------------------------------------------------------------

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    if let Some(v) = v {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
}

fn push_directives(out: &mut String, d: &Directives, flow: Flow) {
    out.push_str(&format!(",\"flow\":{}", json_str(flow_name(flow))));
    push_opt_u64(out, "ii", d.pipeline_ii.map(u64::from));
    push_opt_u64(out, "unroll", d.unroll_factor.map(u64::from));
    push_opt_u64(out, "partition", d.partition_factor.map(u64::from));
    out.push_str(&format!(",\"flatten\":{}", d.flatten));
}

fn push_target(out: &mut String, t: &Target) {
    out.push_str(&format!(
        ",\"target\":{{\"clock_bits\":\"{:016x}\",\"bram_ports\":{},\"axi_ports\":{},\"axi_extra\":{}}}",
        t.clock_ns.to_bits(),
        t.bram_ports,
        t.axi_ports,
        t.axi_extra_latency
    ));
}

fn flow_name(flow: Flow) -> &'static str {
    match flow {
        Flow::Adaptor => "adaptor",
        Flow::Cpp => "cpp",
    }
}

fn decode_outcome_reply(text: &str) -> (RunOutcome, Vec<String>) {
    let infra = |detail: String| {
        (
            RunOutcome::Failed(StageError::Fault {
                stage: "warden".to_string(),
                class: FaultClass::Infra,
                detail,
            }),
            Vec::new(),
        )
    };
    let v = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return infra(format!("undecodable worker reply: {e}")),
    };
    if let Some(err) = v.get("error").and_then(|x| x.as_str()) {
        return infra(format!("worker error: {err}"));
    }
    let warnings = v
        .get("warnings")
        .and_then(|x| x.as_arr())
        .map(|a| {
            a.iter()
                .filter_map(|w| w.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    match v.get("outcome").map(outcome_from_json) {
        Some(Ok(outcome)) => (outcome, warnings),
        Some(Err(e)) => infra(format!("undecodable worker outcome: {e}")),
        None => infra("worker reply missing 'outcome'".to_string()),
    }
}

fn describe_exit(status: std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("signal {sig}");
        }
    }
    match status.code() {
        // A clean exit without a (complete) reply means the pipe lied:
        // the worker truncated its reply frame.
        Some(0) => "reply truncated".to_string(),
        Some(code) => format!("exit code {code}"),
        None => "killed".to_string(),
    }
}

/// Resolve the executable to spawn as a worker. Production binaries
/// (`mha-serve`, `mha-batch`, `mha-fuzz`) re-exec themselves — they
/// dispatch to [`child_main`] when argv\[1\] is `--warden-child` before any
/// flag parsing. Test harness binaries are not re-execable, so the search
/// falls back to the dedicated `mha-warden-worker` binary next to (or
/// above) the current executable; `MHA_WARDEN_EXE` overrides everything.
fn worker_exe() -> Result<PathBuf, String> {
    if let Some(p) = std::env::var_os("MHA_WARDEN_EXE") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot resolve the current executable: {e}"))?;
    let name = exe.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.starts_with("mha-") {
        return Ok(exe);
    }
    let worker_name = format!("mha-warden-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&worker_name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(format!(
        "cannot locate {worker_name} near {}; set MHA_WARDEN_EXE",
        exe.display()
    ))
}

/// Read a `kB`-denominated field (e.g. `VmRSS`, `VmHWM`) from
/// `/proc/<pid>/status`.
fn proc_status_kb(pid: u32, field: &str) -> Option<u64> {
    let text = fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    proc_field_kb(&text, field)
}

fn proc_field_kb(status_text: &str, field: &str) -> Option<u64> {
    for line in status_text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn self_peak_rss_kb() -> u64 {
    fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|t| proc_field_kb(&t, "VmHWM"))
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// The worker side (`--warden-child`)
// ---------------------------------------------------------------------------

enum Action {
    Reply(String),
    Truncate,
}

/// The worker-process main loop: read a request frame from stdin, run the
/// op, write the reply frame to stdout; exit 0 on EOF. Panics inside ops
/// are already contained (`run_supervised` / `catch_unwind`), so an
/// abnormal exit here *is* a crash worth reporting — which is exactly how
/// the supervisor treats it. Never returns.
pub fn child_main() -> ! {
    let stdin = io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Supervisor hung up (or sent garbage): a clean retirement.
            Ok(None) | Err(_) => std::process::exit(0),
        };
        let action = handle_frame(&payload);
        let stdout = io::stdout();
        let mut out = stdout.lock();
        match action {
            Action::Reply(body) => {
                if write_frame(&mut out, body.as_bytes()).is_err() {
                    std::process::exit(1);
                }
            }
            Action::Truncate => {
                // Chaos: claim a 64-byte payload, deliver a fraction of
                // it, and exit "cleanly" — the supervisor must detect the
                // short read and classify it as `reply truncated`.
                let _ = out.write_all(format!("{FRAME_MAGIC} 64\n").as_bytes());
                let _ = out.write_all(b"chaos truncation");
                let _ = out.flush();
                std::process::exit(0);
            }
        }
    }
}

fn handle_frame(payload: &[u8]) -> Action {
    let text = String::from_utf8_lossy(payload);
    let v = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return error_reply(&format!("bad request: {e}")),
    };
    // Chaos fires before the op so containment is exercised mid-protocol.
    if let Some(repr) = v.get("wchaos").and_then(|x| x.as_str()) {
        let key = v.get("wkey").and_then(|x| x.as_str()).unwrap_or_default();
        if let Ok(cfg) = ChaosConfig::parse(repr) {
            match ChaosEngine::new(cfg).roll(key, "warden", 0, &CRASH_MENU) {
                Some(ChaosFault::WorkerKill) => {
                    eprintln!("warden child: chaos worker-kill for '{key}'");
                    std::process::abort();
                }
                Some(ChaosFault::RssBomb) => {
                    eprintln!("warden child: chaos rss-bomb for '{key}'");
                    balloon_rss();
                }
                Some(ChaosFault::ReplyTruncate) => {
                    eprintln!("warden child: chaos reply-truncate for '{key}'");
                    return Action::Truncate;
                }
                _ => {}
            }
        }
    }
    let reply = match v.get("op").and_then(|x| x.as_str()).unwrap_or_default() {
        "ping" => "{\"ok\":true}".to_string(),
        "sleep" => {
            let ms = v.get("ms").and_then(|x| x.as_u64()).unwrap_or(0);
            thread::sleep(Duration::from_millis(ms));
            "{\"ok\":true}".to_string()
        }
        "hog" => child_hog(&v),
        "suite" => child_suite(&v),
        "raw" => child_raw(&v),
        "oracle" => child_oracle(&v),
        other => return error_reply(&format!("unknown op '{other}'")),
    };
    Action::Reply(reply)
}

fn error_reply(message: &str) -> Action {
    Action::Reply(format!("{{\"error\":{}}}", json_str(message)))
}

/// Grow RSS without bound (8 MiB touched pages per step) until the
/// supervisor's watchdog kills the process; abort as a contained fallback
/// if no limit is armed.
fn balloon_rss() -> ! {
    let mut hoard: Vec<Vec<u8>> = Vec::new();
    for _ in 0..64 {
        let mut chunk = vec![0u8; 8 << 20];
        let mut i = 0;
        while i < chunk.len() {
            chunk[i] = 1;
            i += 4096;
        }
        hoard.push(chunk);
        thread::sleep(Duration::from_millis(2));
    }
    drop(hoard);
    std::process::abort();
}

/// Test op: allocate (and touch) `mb` MiB, hold it for `ms` milliseconds,
/// then reply — long enough for the RSS watchdog to observe the balloon.
fn child_hog(v: &JsonValue) -> String {
    let mb = v.get("mb").and_then(|x| x.as_u64()).unwrap_or(0) as usize;
    let ms = v.get("ms").and_then(|x| x.as_u64()).unwrap_or(0);
    let mut chunk = vec![0u8; mb << 20];
    let mut i = 0;
    while i < chunk.len() {
        chunk[i] = 1;
        i += 4096;
    }
    thread::sleep(Duration::from_millis(ms));
    let held = chunk.len();
    drop(chunk);
    format!("{{\"ok\":true,\"held\":{held}}}")
}

fn decode_directives(v: &JsonValue) -> Directives {
    let u32_field = |k: &str| v.get(k).and_then(|x| x.as_u64()).map(|n| n as u32);
    Directives {
        pipeline_ii: u32_field("ii"),
        unroll_factor: u32_field("unroll"),
        partition_factor: u32_field("partition"),
        flatten: v.get("flatten").and_then(|x| x.as_bool()).unwrap_or(false),
    }
}

fn decode_flow(v: &JsonValue) -> Flow {
    match v.get("flow").and_then(|x| x.as_str()) {
        Some("cpp") => Flow::Cpp,
        _ => Flow::Adaptor,
    }
}

fn decode_target(v: &JsonValue) -> Target {
    let t = v.get("target");
    let u32_field = |k: &str| {
        t.and_then(|t| t.get(k))
            .and_then(|x| x.as_u64())
            .map(|n| n as u32)
    };
    let default = Target::default();
    Target {
        clock_ns: t
            .and_then(|t| t.get("clock_bits"))
            .and_then(|x| x.as_str())
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(f64::from_bits)
            .unwrap_or(default.clock_ns),
        bram_ports: u32_field("bram_ports").unwrap_or(default.bram_ports),
        axi_ports: u32_field("axi_ports").unwrap_or(default.axi_ports),
        axi_extra_latency: u32_field("axi_extra").unwrap_or(default.axi_extra_latency),
    }
}

fn reply_outcome(outcome: &RunOutcome, warnings: &[String]) -> String {
    let w = warnings
        .iter()
        .map(|s| json_str(s))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"outcome\":{},\"warnings\":[{w}],\"rss_peak_kb\":{}}}",
        outcome_to_json(outcome),
        self_peak_rss_kb()
    )
}

fn child_suite(v: &JsonValue) -> String {
    let name = v.get("kernel").and_then(|x| x.as_str()).unwrap_or_default();
    let Some(kernel) = kernels::kernel(name) else {
        return reply_outcome(
            &RunOutcome::Failed(StageError::Fault {
                stage: "request".to_string(),
                class: FaultClass::Deterministic,
                detail: format!("unknown suite kernel '{name}'"),
            }),
            &[],
        );
    };
    let u64_field = |k: &str| v.get(k).and_then(|x| x.as_u64());
    let opts = BatchOptions {
        jobs: 1,
        directives: decode_directives(v),
        flow: decode_flow(v),
        cache_dir: v
            .get("cache_dir")
            .and_then(|x| x.as_str())
            .map(PathBuf::from),
        target: decode_target(v),
        seed: u64_field("seed").unwrap_or(2026),
        deadline_ms: u64_field("deadline_ms"),
        fuel: u64_field("fuel"),
        chaos: v
            .get("chaos")
            .and_then(|x| x.as_str())
            .and_then(|s| ChaosConfig::parse(s).ok()),
        ..BatchOptions::default()
    };
    match run_supervised(kernel, &opts) {
        Ok((outcome, warnings)) => reply_outcome(&outcome, &warnings),
        Err(e) => reply_outcome(
            &RunOutcome::Failed(StageError::Fault {
                stage: "cache".to_string(),
                class: FaultClass::Infra,
                detail: e.to_string(),
            }),
            &[],
        ),
    }
}

fn child_raw(v: &JsonValue) -> String {
    let name = v
        .get("name")
        .and_then(|x| x.as_str())
        .unwrap_or("kernel")
        .to_string();
    let mlir = v.get("mlir").and_then(|x| x.as_str()).unwrap_or_default();
    let directives = decode_directives(v);
    let flow = decode_flow(v);
    let target = decode_target(v);
    let mut budget = Budget::unlimited();
    if let Some(ms) = v.get("deadline_ms").and_then(|x| x.as_u64()) {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(fuel) = v.get("fuel").and_then(|x| x.as_u64()) {
        budget = budget.with_fuel(fuel);
    }
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        crate::serve::raw_pipeline(
            &name,
            mlir,
            &directives,
            &target,
            &budget,
            flow,
            &mut |_| {},
        )
    }));
    let outcome = match run {
        Ok(Ok(artifacts)) => RunOutcome::Completed(Box::new(artifacts)),
        Ok(Err(e)) => RunOutcome::Failed(e),
        Err(payload) => RunOutcome::Panicked {
            message: payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        },
    };
    reply_outcome(&outcome, &[])
}

fn child_oracle(v: &JsonValue) -> String {
    let src = v.get("source").and_then(|x| x.as_str()).unwrap_or_default();
    let seed = v.get("seed").and_then(|x| x.as_u64()).unwrap_or(0);
    let legality = v.get("legality").and_then(|x| x.as_bool()).unwrap_or(false);
    let mut oopts = OracleOpts::default();
    if let Some(n) = v.get("step_limit").and_then(|x| x.as_u64()) {
        oopts.step_limit = n;
    }
    oopts.fuel = v.get("fuel").and_then(|x| x.as_u64());
    oopts.deadline_ms = v.get("deadline_ms").and_then(|x| x.as_u64());
    let verdict = run_oracles(src, seed, &oopts).and_then(|_| {
        if legality {
            run_legality_oracle(src, seed, &oopts)
        } else {
            Ok(false)
        }
    });
    let rss = self_peak_rss_kb();
    match verdict {
        Ok(interchanged) => {
            format!("{{\"verdict\":\"pass\",\"interchanged\":{interchanged},\"rss_peak_kb\":{rss}}}")
        }
        Err(f) => format!(
            "{{\"verdict\":\"fail\",\"oracle\":{},\"stage\":{},\"message\":{},\"rss_peak_kb\":{rss}}}",
            json_str(f.oracle.as_str()),
            json_str(&f.stage),
            json_str(&f.message)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_detect_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"op\":\"ping\"}"[..])
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // A frame that promises more bytes than it delivers errors out.
        let lying = format!("{FRAME_MAGIC} 64\nshort");
        let mut r = io::BufReader::new(lying.as_bytes());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Garbage headers are rejected, not misread.
        let mut r = io::BufReader::new(&b"HTTP/1.1 200 OK\r\n"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn proc_status_parsing_extracts_kb_fields() {
        let sample =
            "Name:\tmha-serve\nVmPeak:\t  123456 kB\nVmRSS:\t   98304 kB\nVmHWM:\t  111111 kB\n";
        assert_eq!(proc_field_kb(sample, "VmRSS"), Some(98304));
        assert_eq!(proc_field_kb(sample, "VmHWM"), Some(111111));
        assert_eq!(proc_field_kb(sample, "VmSwap"), None);
        // Self-inspection works on this platform (returns something > 0).
        assert!(self_peak_rss_kb() > 0);
    }

    #[test]
    fn exit_status_description_covers_the_taxonomy() {
        // Spawn trivially-exiting shells to get real ExitStatus values.
        let ok = Command::new("true").status().unwrap();
        assert_eq!(describe_exit(ok), "reply truncated");
        let fail = Command::new("false").status().unwrap();
        assert_eq!(describe_exit(fail), "exit code 1");
    }

    #[test]
    fn directive_and_target_codecs_round_trip() {
        let d = Directives {
            pipeline_ii: Some(2),
            unroll_factor: None,
            partition_factor: Some(4),
            flatten: true,
        };
        let t = Target {
            clock_ns: 3.33,
            bram_ports: 4,
            axi_ports: 2,
            axi_extra_latency: 9,
        };
        let mut req = String::from("{\"op\":\"raw\"");
        push_directives(&mut req, &d, Flow::Cpp);
        push_target(&mut req, &t);
        req.push('}');
        let v = json::parse(&req).unwrap();
        assert_eq!(decode_directives(&v), d);
        assert_eq!(decode_flow(&v), Flow::Cpp);
        let back = decode_target(&v);
        assert_eq!(back.clock_ns.to_bits(), t.clock_ns.to_bits());
        assert_eq!(back.bram_ports, 4);
        assert_eq!(back.axi_ports, 2);
        assert_eq!(back.axi_extra_latency, 9);
    }
}
