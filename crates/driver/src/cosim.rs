//! Co-simulation: execute an HLS-ready module against the kernel's
//! reference implementation (the analogue of Vitis C/RTL co-simulation).

use kernels::{gen_inputs, Kernel};
use llvm_lite::interp::{Interpreter, RtVal};

use crate::{DriverError, Result};

/// Outcome of one co-simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct CosimResult {
    /// Max |module − reference| over all output elements.
    pub max_abs_err: f32,
    /// Interpreter instruction count (a crude dynamic-cost proxy).
    pub steps: u64,
}

impl CosimResult {
    /// Pass/fail at the standard HLS co-simulation tolerance.
    pub fn passed(&self) -> bool {
        self.max_abs_err <= 1e-5
    }
}

/// Run the module's top function on generated inputs and compare every
/// output buffer against the reference implementation.
pub fn cosim(module: &llvm_lite::Module, kernel: &Kernel, seed: u64) -> Result<CosimResult> {
    let top = module
        .top_function()
        .ok_or_else(|| DriverError("module has no top function".into()))?
        .name
        .clone();
    let args = gen_inputs(kernel, seed);

    // Reference.
    let mut expect = args.clone();
    (kernel.reference)(&mut expect);

    // Module under test.
    let mut interp = Interpreter::new(module);
    let ptrs: Vec<u64> = args.iter().map(|buf| interp.mem.alloc_f32(buf)).collect();
    let call_args: Vec<RtVal> = ptrs.iter().map(|p| RtVal::P(*p)).collect();
    interp
        .call(&top, &call_args)
        .map_err(|e| DriverError(format!("{}: {e}", kernel.name)))?;

    let mut max_abs_err = 0.0f32;
    for (i, spec) in kernel.args.iter().enumerate() {
        if !spec.output {
            continue;
        }
        let got = interp
            .mem
            .read_f32(ptrs[i], spec.len)
            .map_err(|e| DriverError(e.to_string()))?;
        for (g, e) in got.iter().zip(&expect[i]) {
            max_abs_err = max_abs_err.max((g - e).abs());
        }
    }
    Ok(CosimResult {
        max_abs_err,
        steps: interp.stats.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Directives;
    use crate::flow::{run_flow, Flow};

    #[test]
    fn every_kernel_cosims_exactly_through_both_flows() {
        for k in kernels::all_kernels() {
            for flow in [Flow::Adaptor, Flow::Cpp] {
                let art = run_flow(k, &Directives::default(), flow).unwrap();
                let r = cosim(&art.module, k, 2026).unwrap();
                assert!(
                    r.passed(),
                    "{} via {:?}: max err {}",
                    k.name,
                    flow,
                    r.max_abs_err
                );
                // Same operation order on both paths: errors are exactly 0.
                assert_eq!(
                    r.max_abs_err, 0.0,
                    "{} via {:?} diverged from reference",
                    k.name, flow
                );
            }
        }
    }

    #[test]
    fn cosim_reports_dynamic_cost() {
        let k = kernels::kernel("gemm").unwrap();
        let art = run_flow(k, &Directives::default(), Flow::Adaptor).unwrap();
        let r = cosim(&art.module, k, 1).unwrap();
        // 16^3 inner iterations with ~10 executed ops each.
        assert!(r.steps > 16 * 16 * 16);
    }
}
