//! The parallel batch engine behind `mha-batch`.
//!
//! [`run_batch`] pushes every requested kernel through the full
//! MLIR → flow → csynth → co-simulation pipeline on a worker pool
//! (`--jobs` threads pulling from a shared queue), with each stage's output
//! served from the content-addressed [`crate::cache`] when its inputs are
//! unchanged. The stages communicate *only* through the printed `.ll`
//! module text, so a stage's cache key is exactly a hash of its input text
//! plus configuration — cold and warm runs execute the same pipeline on the
//! same bytes.
//!
//! Failure isolation: a kernel that returns an error or panics is caught in
//! its worker, recorded as a structured entry in the [`BatchSummary`], and
//! never disturbs the other kernels. Exit codes follow the `mha-lint`
//! convention: 0 all clean, 1 some kernels failed, 2 infrastructure error
//! (reported as [`BatchError`] before any kernel runs).

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kernels::Kernel;
use pass_core::report::json_str;
use pass_core::PipelineReport;
use vitis_sim::{csynth, CsynthReport, Target};

use crate::cache::{self, Cache, CacheError, CacheKey, KeyBuilder, Lookup};
use crate::cosim::cosim;
use crate::experiment::Directives;
use crate::flow::{run_flow, Flow};

/// Everything that configures one batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads; 0 means "use the machine's available parallelism".
    pub jobs: usize,
    /// Directives applied to every kernel.
    pub directives: Directives,
    /// Which flow to run.
    pub flow: Flow,
    /// Artifact cache directory; `None` disables caching entirely
    /// (`--no-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Synthesis target.
    pub target: Target,
    /// Co-simulation input seed.
    pub seed: u64,
    /// Test hook: panic inside the worker processing this kernel, to
    /// exercise failure isolation end to end (`--inject-panic`).
    pub inject_panic: Option<String>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            jobs: 0,
            directives: Directives::pipelined(1),
            flow: Flow::Adaptor,
            cache_dir: Some(Cache::default_dir()),
            target: Target::default(),
            seed: 2026,
            inject_panic: None,
        }
    }
}

impl BatchOptions {
    /// The resolved worker count: `jobs`, or the machine's available
    /// parallelism when `jobs == 0`, never more than the kernel count.
    pub fn effective_jobs(&self, n_kernels: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let jobs = if self.jobs == 0 { auto } else { self.jobs };
        jobs.clamp(1, n_kernels.max(1))
    }
}

/// An infrastructure failure that prevents the batch from running at all
/// (as opposed to a per-kernel failure, which is isolated and reported in
/// the summary). Maps to exit code 2.
#[derive(Debug, Clone)]
pub enum BatchError {
    /// The cache directory could not be opened or written.
    Cache(CacheError),
    /// The request itself is unusable (e.g. no kernels selected).
    Usage(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Cache(e) => write!(f, "batch infrastructure: {e}"),
            BatchError::Usage(m) => write!(f, "batch usage: {m}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Cache(e) => Some(e),
            BatchError::Usage(_) => None,
        }
    }
}

impl From<CacheError> for BatchError {
    fn from(e: CacheError) -> Self {
        BatchError::Cache(e)
    }
}

/// The artifacts a successfully processed kernel contributes to the
/// summary.
#[derive(Clone, Debug)]
pub struct KernelArtifacts {
    /// The HLS-ready module, printed (`.ll` text) — the canonical artifact
    /// all downstream stages key on.
    pub module_text: String,
    /// FNV-1a digest of `module_text` (hex), for cheap equality checks.
    pub module_digest: String,
    /// Synthesis report.
    pub csynth: CsynthReport,
    /// Co-simulation max |err| against the reference.
    pub cosim_max_err: f32,
    /// Co-simulation interpreter step count.
    pub cosim_steps: u64,
    /// Per-stage timing, with cached stages marked.
    pub report: PipelineReport,
    /// Stages served from the cache for this kernel (0–3).
    pub cache_hits: usize,
    /// Stages recomputed (and, when caching is on, stored) for this kernel.
    pub cache_misses: usize,
}

/// How one kernel's run ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// All stages completed.
    Completed(Box<KernelArtifacts>),
    /// A stage returned an error.
    Failed {
        /// Which stage failed (`flow`, `csynth`, `cosim`).
        stage: String,
        /// The rendered error.
        error: String,
    },
    /// The worker caught a panic from this kernel.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

/// One kernel's entry in the batch summary.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// What happened.
    pub outcome: RunOutcome,
}

impl KernelRun {
    /// True when the kernel completed all stages.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, RunOutcome::Completed(_))
    }
}

/// Aggregated result of one batch invocation.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Which flow ran.
    pub flow: String,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Whether the artifact cache was enabled.
    pub cache_enabled: bool,
    /// Total wall-clock for the whole batch, microseconds.
    pub wall_us: u64,
    /// Per-kernel results, in the order the kernels were given.
    pub runs: Vec<KernelRun>,
    /// Non-fatal cache warnings (corrupt entries that fell back to
    /// recompute).
    pub warnings: Vec<String>,
}

impl BatchSummary {
    /// Kernels that completed.
    pub fn ok_count(&self) -> usize {
        self.runs.iter().filter(|r| r.is_ok()).count()
    }

    /// Kernels that failed or panicked.
    pub fn failed_count(&self) -> usize {
        self.runs.len() - self.ok_count()
    }

    /// Total cache hits across kernels.
    pub fn cache_hits(&self) -> usize {
        self.artifacts().map(|a| a.cache_hits).sum()
    }

    /// Total cache misses across kernels.
    pub fn cache_misses(&self) -> usize {
        self.artifacts().map(|a| a.cache_misses).sum()
    }

    fn artifacts(&self) -> impl Iterator<Item = &KernelArtifacts> {
        self.runs.iter().filter_map(|r| match &r.outcome {
            RunOutcome::Completed(a) => Some(a.as_ref()),
            _ => None,
        })
    }

    /// Process exit code under the mha-lint convention: 0 all kernels
    /// clean, 1 some kernels failed (the rest still reported). Code 2 is
    /// reserved for [`BatchError`], which precludes a summary.
    pub fn exit_code(&self) -> i32 {
        if self.failed_count() > 0 {
            1
        } else {
            0
        }
    }

    /// Render the human-readable batch table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== mha-batch: {} kernel(s), flow {}, jobs {}, cache {} ({} hit / {} miss), {} ms\n",
            self.runs.len(),
            self.flow,
            self.jobs,
            if self.cache_enabled { "on" } else { "off" },
            self.cache_hits(),
            self.cache_misses(),
            self.wall_us / 1000
        );
        out.push_str(&format!(
            "{:<10}  {:<7}  {:>8}  {:>8}  {:>9}  {:>9}  {}\n",
            "kernel", "status", "latency", "interval", "cosim_err", "stage_us", "cache"
        ));
        for r in &self.runs {
            match &r.outcome {
                RunOutcome::Completed(a) => {
                    out.push_str(&format!(
                        "{:<10}  {:<7}  {:>8}  {:>8}  {:>9}  {:>9}  {}h/{}m\n",
                        r.kernel,
                        "ok",
                        a.csynth.latency,
                        a.csynth.interval,
                        a.cosim_max_err,
                        a.report.total_us(),
                        a.cache_hits,
                        a.cache_misses
                    ));
                }
                RunOutcome::Failed { stage, error } => {
                    out.push_str(&format!("{:<10}  FAILED   [{stage}] {error}\n", r.kernel));
                }
                RunOutcome::Panicked { message } => {
                    out.push_str(&format!("{:<10}  PANIC    {message}\n", r.kernel));
                }
            }
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        out.push_str(&format!(
            "== {} ok, {} failed\n",
            self.ok_count(),
            self.failed_count()
        ));
        out
    }

    /// Serialize the summary to JSON (hand-rolled, same style as
    /// `PipelineReport::to_json`; schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"flow\":{},", json_str(&self.flow)));
        out.push_str(&format!("\"jobs\":{},", self.jobs));
        out.push_str(&format!("\"cache_enabled\":{},", self.cache_enabled));
        out.push_str(&format!("\"wall_us\":{},", self.wall_us));
        out.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"misses\":{}}},",
            self.cache_hits(),
            self.cache_misses()
        ));
        out.push_str("\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(w));
        }
        out.push_str("],\"kernels\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &r.outcome {
                RunOutcome::Completed(a) => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"ok\",\"module_digest\":{},\"latency\":{},\"interval\":{},\"cosim_max_err\":{},\"cosim_steps\":{},\"cache_hits\":{},\"cache_misses\":{},\"report\":{}}}",
                    json_str(&r.kernel),
                    json_str(&a.module_digest),
                    a.csynth.latency,
                    a.csynth.interval,
                    a.cosim_max_err,
                    a.cosim_steps,
                    a.cache_hits,
                    a.cache_misses,
                    a.report.to_json()
                )),
                RunOutcome::Failed { stage, error } => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"failed\",\"stage\":{},\"error\":{}}}",
                    json_str(&r.kernel),
                    json_str(stage),
                    json_str(error)
                )),
                RunOutcome::Panicked { message } => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"panicked\",\"error\":{}}}",
                    json_str(&r.kernel),
                    json_str(message)
                )),
            }
        }
        out.push_str("]}");
        out
    }
}

/// A canonical, order-stable text form of the pass configuration; hashed
/// into every flow-stage cache key so a directive change invalidates
/// exactly the affected artifacts.
fn directives_repr(d: &Directives, flow: Flow) -> String {
    fn opt(v: Option<u32>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    format!(
        "flow={};ii={};unroll={};partition={};flatten={}",
        flow.label(),
        opt(d.pipeline_ii),
        opt(d.unroll_factor),
        opt(d.partition_factor),
        d.flatten
    )
}

fn target_repr(t: &Target) -> String {
    format!(
        "clock={:016x};bram_ports={};axi_ports={};axi_extra={}",
        t.clock_ns.to_bits(),
        t.bram_ports,
        t.axi_ports,
        t.axi_extra_latency
    )
}

/// Shared per-run context handed to every worker.
struct BatchCtx<'a> {
    opts: &'a BatchOptions,
    cache: Option<Cache>,
    warnings: Mutex<Vec<String>>,
}

impl BatchCtx<'_> {
    /// Probe the cache; corrupt entries degrade to a miss plus a warning.
    fn probe(&self, key: &CacheKey) -> Option<String> {
        match self.cache.as_ref()?.load(key) {
            Lookup::Hit(payload) => Some(payload),
            Lookup::Miss => None,
            Lookup::Corrupt(reason) => {
                self.warn(format!("corrupt cache entry ignored: {reason}"));
                None
            }
        }
    }

    /// Store a freshly computed artifact; store failures are warnings, not
    /// errors — the batch result is already in hand.
    fn keep(&self, key: &CacheKey, payload: &str) {
        if let Some(c) = &self.cache {
            if let Err(e) = c.store(key, payload) {
                self.warn(format!("cache store failed: {e}"));
            }
        }
    }

    fn warn(&self, w: String) {
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(w);
    }
}

/// Run one kernel through flow → csynth → cosim with stage-level caching.
fn run_one(k: &Kernel, ctx: &BatchCtx<'_>) -> Result<KernelArtifacts, (String, String)> {
    let opts = ctx.opts;
    if opts.inject_panic.as_deref() == Some(k.name) {
        panic!("injected panic for {} (test hook)", k.name);
    }
    let mut report = PipelineReport::new("batch");
    let mut hits = 0usize;
    let mut misses = 0usize;
    let config = directives_repr(&opts.directives, opts.flow);

    // Stage 1: MLIR → HLS-ready module, keyed by kernel content + config.
    let flow_key = KeyBuilder::new("flow")
        .num("kernel", k.content_digest())
        .text("config", &config)
        .finish();
    let start = std::time::Instant::now();
    let module_text = match ctx.probe(&flow_key) {
        Some(text) => {
            hits += 1;
            report.record_cached("flow", start.elapsed().as_micros() as u64);
            text
        }
        None => {
            misses += 1;
            let art = run_flow(k, &opts.directives, opts.flow)
                .map_err(|e| ("flow".to_string(), e.to_string()))?;
            report.extend_prefixed("flow", &art.report);
            let text = llvm_lite::printer::print_module(&art.module);
            ctx.keep(&flow_key, &text);
            text
        }
    };
    let module_digest = format!("{:016x}", kernels::fnv1a64(module_text.as_bytes()));

    // Stages 2 and 3 key on the module *text*: any IR change reflows them,
    // any directive change already changed the text. The module is only
    // re-parsed when at least one of them actually has to run.
    let csynth_key = KeyBuilder::new("csynth")
        .text("module", &module_text)
        .text("target", &target_repr(&opts.target))
        .finish();
    let cosim_key = KeyBuilder::new("cosim")
        .text("module", &module_text)
        .num("kernel", k.content_digest())
        .num("seed", opts.seed)
        .finish();

    let cached_csynth = {
        let start = std::time::Instant::now();
        ctx.probe(&csynth_key)
            .and_then(|p| match cache::decode_csynth(&p) {
                Ok(r) => {
                    hits += 1;
                    report.record_cached("csynth", start.elapsed().as_micros() as u64);
                    Some(r)
                }
                Err(e) => {
                    ctx.warn(format!("undecodable csynth entry for {}: {e}", k.name));
                    None
                }
            })
    };
    let cached_cosim = {
        let start = std::time::Instant::now();
        ctx.probe(&cosim_key)
            .and_then(|p| match cache::decode_cosim(&p) {
                Ok(r) => {
                    hits += 1;
                    report.record_cached("cosim", start.elapsed().as_micros() as u64);
                    Some(r)
                }
                Err(e) => {
                    ctx.warn(format!("undecodable cosim entry for {}: {e}", k.name));
                    None
                }
            })
    };

    let module = if cached_csynth.is_none() || cached_cosim.is_none() {
        Some(
            llvm_lite::parser::parse_module(k.name, &module_text)
                .map_err(|e| ("parse".to_string(), e.to_string()))?,
        )
    } else {
        None
    };

    let csynth_report = match cached_csynth {
        Some(r) => r,
        None => {
            misses += 1;
            let r = report
                .time_stage("csynth", || csynth(module.as_ref().unwrap(), &opts.target))
                .map_err(|e| ("csynth".to_string(), e.to_string()))?;
            ctx.keep(&csynth_key, &cache::encode_csynth(&r));
            r
        }
    };
    let cosim_result = match cached_cosim {
        Some(r) => r,
        None => {
            misses += 1;
            let r = report
                .time_stage("cosim", || cosim(module.as_ref().unwrap(), k, opts.seed))
                .map_err(|e| ("cosim".to_string(), e.to_string()))?;
            ctx.keep(&cosim_key, &cache::encode_cosim(&r));
            r
        }
    };

    Ok(KernelArtifacts {
        module_text,
        module_digest,
        csynth: csynth_report,
        cosim_max_err: cosim_result.max_abs_err,
        cosim_steps: cosim_result.steps,
        report,
        cache_hits: hits,
        cache_misses: misses,
    })
}

fn run_one_isolated(k: &Kernel, ctx: &BatchCtx<'_>) -> KernelRun {
    let outcome = match std::panic::catch_unwind(AssertUnwindSafe(|| run_one(k, ctx))) {
        Ok(Ok(artifacts)) => RunOutcome::Completed(Box::new(artifacts)),
        Ok(Err((stage, error))) => RunOutcome::Failed { stage, error },
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            RunOutcome::Panicked { message }
        }
    };
    KernelRun {
        kernel: k.name.to_string(),
        outcome,
    }
}

/// Run the batch: every kernel through the configured flow, on
/// `opts.effective_jobs` worker threads, with per-kernel failure isolation
/// and stage-level caching. Results come back in input order regardless of
/// completion order.
pub fn run_batch(kernels: &[Kernel], opts: &BatchOptions) -> Result<BatchSummary, BatchError> {
    if kernels.is_empty() {
        return Err(BatchError::Usage("no kernels selected".into()));
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(Cache::open(dir)?),
        None => None,
    };
    let ctx = BatchCtx {
        opts,
        cache,
        warnings: Mutex::new(Vec::new()),
    };
    let jobs = opts.effective_jobs(kernels.len());
    let start = std::time::Instant::now();

    // Worker pool: `jobs` threads pull indices from a shared counter, so a
    // slow kernel never blocks the queue behind it. (The workspace's rayon
    // stand-in is sequential — see stubs/rayon — so the pool is built
    // directly on scoped threads.)
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<KernelRun>>> = kernels.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(k) = kernels.get(i) else { break };
                let run = run_one_isolated(k, &ctx);
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(run);
            });
        }
    });

    let runs = slots
        .into_iter()
        .zip(kernels)
        .map(|(slot, k)| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or(KernelRun {
                    kernel: k.name.to_string(),
                    outcome: RunOutcome::Panicked {
                        message: "worker disappeared without reporting".into(),
                    },
                })
        })
        .collect();

    Ok(BatchSummary {
        flow: opts.flow.label().to_string(),
        jobs,
        cache_enabled: ctx.cache.is_some(),
        wall_us: start.elapsed().as_micros() as u64,
        runs,
        warnings: ctx.warnings.into_inner().unwrap_or_else(|p| p.into_inner()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_cache_opts() -> BatchOptions {
        BatchOptions {
            cache_dir: None,
            jobs: 4,
            ..BatchOptions::default()
        }
    }

    #[test]
    fn batch_over_two_kernels_completes() {
        let ks: Vec<Kernel> = ["gemm", "fir"]
            .iter()
            .map(|n| *kernels::kernel(n).unwrap())
            .collect();
        let s = run_batch(&ks, &no_cache_opts()).unwrap();
        assert_eq!(s.runs.len(), 2);
        assert_eq!(s.exit_code(), 0);
        assert_eq!(s.cache_hits(), 0);
        for r in &s.runs {
            match &r.outcome {
                RunOutcome::Completed(a) => {
                    assert_eq!(a.cosim_max_err, 0.0, "{}", r.kernel);
                    assert!(a.csynth.latency > 0);
                }
                other => panic!("{}: {other:?}", r.kernel),
            }
        }
    }

    #[test]
    fn empty_selection_is_a_usage_error() {
        let err = run_batch(&[], &no_cache_opts()).unwrap_err();
        assert!(matches!(err, BatchError::Usage(_)));
        assert!(err.to_string().contains("no kernels"));
    }

    #[test]
    fn summary_json_has_the_documented_shape() {
        let ks = [*kernels::kernel("fir").unwrap()];
        let s = run_batch(&ks, &no_cache_opts()).unwrap();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for needle in [
            "\"flow\":\"adaptor\"",
            "\"cache_enabled\":false",
            "\"kernels\":[",
            "\"kernel\":\"fir\"",
            "\"status\":\"ok\"",
            "\"module_digest\":",
            "\"report\":{",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn directive_repr_is_canonical() {
        let a = directives_repr(&Directives::pipelined(1), Flow::Adaptor);
        let b = directives_repr(&Directives::pipelined(2), Flow::Adaptor);
        let c = directives_repr(&Directives::pipelined(1), Flow::Cpp);
        assert_eq!(a, "flow=adaptor;ii=1;unroll=-;partition=-;flatten=false");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
