//! The parallel batch engine behind `mha-batch`, run under the
//! [`crate::supervisor`] layer.
//!
//! [`run_batch`] pushes every requested kernel through the full
//! MLIR → flow → csynth → co-simulation pipeline on a worker pool
//! (`--jobs` threads pulling from a shared queue), with each stage's output
//! served from the content-addressed [`crate::cache`] when its inputs are
//! unchanged. The stages communicate *only* through the printed `.ll`
//! module text, so a stage's cache key is exactly a hash of its input text
//! plus configuration — cold and warm runs execute the same pipeline on the
//! same bytes.
//!
//! Supervision (ISSUE 4) adds four guarantees on top of PR 3's engine:
//!
//! * **Budgets** — every pipeline attempt runs under a fresh
//!   [`pass_core::Budget`] built from `--deadline-ms` / `--fuel`, carried
//!   through the flow, the adaptor pass pipeline, and `vitis-sim`'s
//!   scheduling loops. A hang becomes a structured
//!   [`StageError::BudgetExceeded`] instead of a wedged worker.
//! * **Retries** — cache I/O (probe and store) runs under the
//!   [`RetryPolicy`]; only [`FaultClass::Transient`] failures retry, and a
//!   probe abandoned after backoff degrades to a recompute, never an error.
//! * **Degradation** — when the adaptor flow fails *deterministically* for
//!   a kernel (legalization rejection), the kernel re-runs through the
//!   baseline C++ flow and is reported as [`RunOutcome::Degraded`]; the
//!   batch exits 1 but the suite's numbers survive.
//! * **Journal** — with caching enabled, a write-ahead `journal.jsonl`
//!   (next to the cache entries) records every kernel start and outcome;
//!   `--resume` replays completed kernels instead of re-running them.
//!
//! Failure isolation is unchanged: a kernel that returns an error or panics
//! is caught in its worker, recorded as a structured entry in the
//! [`BatchSummary`], and never disturbs the other kernels. Exit codes
//! follow the `mha-lint` convention: 0 all clean, 1 some kernels failed or
//! degraded, 2 infrastructure error (reported as [`BatchError`] before any
//! kernel runs). Non-fatal warnings go to **stderr**, keeping
//! `--format json` stdout a single parseable document.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use kernels::Kernel;
use pass_core::json::JsonValue;
use pass_core::report::json_str;
use pass_core::{Budget, BudgetError, PipelineReport};
use vitis_sim::{csynth_budgeted, CsynthReport, Target};

use crate::cache::{self, Cache, CacheError, CacheKey, KeyBuilder, Lookup};
use crate::cosim::cosim;
use crate::experiment::Directives;
use crate::flow::{run_flow_budgeted, Flow};
use crate::supervisor::{
    ChaosConfig, ChaosEngine, ChaosFault, FaultClass, Journal, JournalError, JournalOutcomes,
    RetryPolicy, StageError,
};

/// Everything that configures one batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads; 0 means "use the machine's available parallelism".
    pub jobs: usize,
    /// Directives applied to every kernel.
    pub directives: Directives,
    /// Which flow to run.
    pub flow: Flow,
    /// Artifact cache directory; `None` disables caching entirely
    /// (`--no-cache`). The run journal lives next to the cache entries, so
    /// `--no-cache` also disables the journal (and `--resume`).
    pub cache_dir: Option<PathBuf>,
    /// Synthesis target.
    pub target: Target,
    /// Co-simulation input seed.
    pub seed: u64,
    /// Test hook: panic inside the worker processing this kernel, to
    /// exercise failure isolation end to end (`--inject-panic`). The seeded
    /// [`ChaosConfig`] harness generalizes this; the hook remains for
    /// targeting one specific kernel.
    pub inject_panic: Option<String>,
    /// Per-kernel wall-clock deadline (`--deadline-ms`); each pipeline
    /// attempt gets this long before tripping
    /// [`StageError::BudgetExceeded`].
    pub deadline_ms: Option<u64>,
    /// Per-kernel fuel allowance (`--fuel`): units of work (passes,
    /// scheduled instructions, II-search probes) one pipeline attempt may
    /// spend across all its stages.
    pub fuel: Option<u64>,
    /// Seeded fault injection (`--chaos seed,rate`), `None` when off.
    pub chaos: Option<ChaosConfig>,
    /// Replay completed kernels from the run journal (`--resume`).
    pub resume: bool,
    /// Retry policy for transient faults (cache I/O, injected I/O errors).
    pub retry: RetryPolicy,
    /// Run each kernel in an isolated worker *process* (`--isolate`, via
    /// `driver::warden`): a segfault/abort/OOM while compiling one kernel
    /// becomes a `failed/crash` summary entry instead of killing the run.
    /// `--inject-panic` is not forwarded into workers (panics are already
    /// contained in-process by the supervisor).
    pub isolate: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            jobs: 0,
            directives: Directives::pipelined(1),
            flow: Flow::Adaptor,
            cache_dir: Some(Cache::default_dir()),
            target: Target::default(),
            seed: 2026,
            inject_panic: None,
            deadline_ms: None,
            fuel: None,
            chaos: None,
            resume: false,
            retry: RetryPolicy::default(),
            isolate: false,
        }
    }
}

impl BatchOptions {
    /// The resolved worker count: `jobs`, or the machine's available
    /// parallelism when `jobs == 0`, never more than the kernel count.
    pub fn effective_jobs(&self, n_kernels: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let jobs = if self.jobs == 0 { auto } else { self.jobs };
        jobs.clamp(1, n_kernels.max(1))
    }

    /// One pipeline attempt's budget, built fresh from the options so a
    /// degraded fallback is not charged for the failed adaptor attempt.
    fn fresh_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(units) = self.fuel {
            b = b.with_fuel(units);
        }
        b
    }
}

/// An infrastructure failure that prevents the batch from running at all
/// (as opposed to a per-kernel failure, which is isolated and reported in
/// the summary). Maps to exit code 2.
#[derive(Debug, Clone)]
pub enum BatchError {
    /// The cache directory could not be opened or written.
    Cache(CacheError),
    /// The run journal could not be created or resumed (config mismatch,
    /// interior corruption, unwritable directory).
    Journal(JournalError),
    /// The request itself is unusable (e.g. no kernels selected).
    Usage(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Cache(e) => write!(f, "batch infrastructure: {e}"),
            BatchError::Journal(e) => write!(f, "batch infrastructure: {e}"),
            BatchError::Usage(m) => write!(f, "batch usage: {m}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Cache(e) => Some(e),
            BatchError::Journal(e) => Some(e),
            BatchError::Usage(_) => None,
        }
    }
}

impl From<CacheError> for BatchError {
    fn from(e: CacheError) -> Self {
        BatchError::Cache(e)
    }
}

impl From<JournalError> for BatchError {
    fn from(e: JournalError) -> Self {
        BatchError::Journal(e)
    }
}

/// The artifacts a successfully processed kernel contributes to the
/// summary.
#[derive(Clone, Debug)]
pub struct KernelArtifacts {
    /// The HLS-ready module, printed (`.ll` text) — the canonical artifact
    /// all downstream stages key on.
    pub module_text: String,
    /// FNV-1a digest of `module_text` (hex), for cheap equality checks.
    pub module_digest: String,
    /// Synthesis report.
    pub csynth: CsynthReport,
    /// Co-simulation max |err| against the reference.
    pub cosim_max_err: f32,
    /// Co-simulation interpreter step count.
    pub cosim_steps: u64,
    /// Per-stage timing, with cached stages marked (and `degraded` set when
    /// these artifacts came from the C++-flow fallback).
    pub report: PipelineReport,
    /// Stages served from the cache for this kernel (0–3).
    pub cache_hits: usize,
    /// Stages recomputed (and, when caching is on, stored) for this kernel.
    pub cache_misses: usize,
}

/// How one kernel's run ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// All stages completed under the requested flow.
    Completed(Box<KernelArtifacts>),
    /// The adaptor flow failed deterministically; the baseline C++ flow
    /// produced these artifacts instead. Counts toward exit code 1.
    Degraded {
        /// Artifacts from the C++-flow fallback (`report.degraded` set).
        artifacts: Box<KernelArtifacts>,
        /// Why the adaptor flow was abandoned.
        reason: String,
    },
    /// A stage failed with a classified [`StageError`] (fault or budget
    /// trip).
    Failed(StageError),
    /// The worker caught a panic from this kernel.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

/// One kernel's entry in the batch summary.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// What happened.
    pub outcome: RunOutcome,
}

impl KernelRun {
    /// True when the kernel completed all stages under the requested flow.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, RunOutcome::Completed(_))
    }

    /// True when the kernel only survived via the C++-flow fallback.
    pub fn is_degraded(&self) -> bool {
        matches!(self.outcome, RunOutcome::Degraded { .. })
    }
}

/// Aggregated result of one batch invocation.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Which flow ran.
    pub flow: String,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Whether the artifact cache was enabled.
    pub cache_enabled: bool,
    /// Total wall-clock for the whole batch, microseconds.
    pub wall_us: u64,
    /// Per-kernel results, in the order the kernels were given.
    pub runs: Vec<KernelRun>,
    /// Non-fatal warnings (corrupt cache entries healed, abandoned
    /// retries, degradations, jobs clamping). Already printed to stderr as
    /// they occurred; collected here for the JSON summary.
    pub warnings: Vec<String>,
}

impl BatchSummary {
    /// Kernels that completed under the requested flow.
    pub fn ok_count(&self) -> usize {
        self.runs.iter().filter(|r| r.is_ok()).count()
    }

    /// Kernels that fell back to the C++ flow.
    pub fn degraded_count(&self) -> usize {
        self.runs.iter().filter(|r| r.is_degraded()).count()
    }

    /// Kernels that failed or panicked outright.
    pub fn failed_count(&self) -> usize {
        self.runs.len() - self.ok_count() - self.degraded_count()
    }

    /// Total cache hits across kernels (degraded fallbacks included).
    pub fn cache_hits(&self) -> usize {
        self.artifacts().map(|a| a.cache_hits).sum()
    }

    /// Total cache misses across kernels (degraded fallbacks included).
    pub fn cache_misses(&self) -> usize {
        self.artifacts().map(|a| a.cache_misses).sum()
    }

    fn artifacts(&self) -> impl Iterator<Item = &KernelArtifacts> {
        self.runs.iter().filter_map(|r| match &r.outcome {
            RunOutcome::Completed(a) | RunOutcome::Degraded { artifacts: a, .. } => {
                Some(a.as_ref())
            }
            _ => None,
        })
    }

    /// Process exit code under the mha-lint convention: 0 all kernels
    /// clean, 1 some kernels failed *or degraded* (the rest still
    /// reported). Code 2 is reserved for [`BatchError`], which precludes a
    /// summary.
    pub fn exit_code(&self) -> i32 {
        if self.failed_count() > 0 || self.degraded_count() > 0 {
            1
        } else {
            0
        }
    }

    /// Render the human-readable batch table. Warnings are *not* included —
    /// they stream to stderr as they occur.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== mha-batch: {} kernel(s), flow {}, jobs {}, cache {} ({} hit / {} miss), {} ms\n",
            self.runs.len(),
            self.flow,
            self.jobs,
            if self.cache_enabled { "on" } else { "off" },
            self.cache_hits(),
            self.cache_misses(),
            self.wall_us / 1000
        );
        out.push_str(&format!(
            "{:<10}  {:<8}  {:>8}  {:>8}  {:>9}  {:>9}  {}\n",
            "kernel", "status", "latency", "interval", "cosim_err", "stage_us", "cache"
        ));
        for r in &self.runs {
            match &r.outcome {
                RunOutcome::Completed(a) => {
                    out.push_str(&Self::artifact_row(&r.kernel, "ok", a));
                }
                RunOutcome::Degraded { artifacts, .. } => {
                    out.push_str(&Self::artifact_row(&r.kernel, "degraded", artifacts));
                }
                RunOutcome::Failed(e) => {
                    out.push_str(&format!(
                        "{:<10}  FAILED    [{}|{}] {}\n",
                        r.kernel,
                        e.stage(),
                        e.class_label(),
                        e.detail()
                    ));
                }
                RunOutcome::Panicked { message } => {
                    out.push_str(&format!("{:<10}  PANIC     {message}\n", r.kernel));
                }
            }
        }
        out.push_str(&format!(
            "== {} ok, {} degraded, {} failed\n",
            self.ok_count(),
            self.degraded_count(),
            self.failed_count()
        ));
        out
    }

    fn artifact_row(kernel: &str, status: &str, a: &KernelArtifacts) -> String {
        format!(
            "{:<10}  {:<8}  {:>8}  {:>8}  {:>9}  {:>9}  {}h/{}m\n",
            kernel,
            status,
            a.csynth.latency,
            a.csynth.interval,
            a.cosim_max_err,
            a.report.total_us(),
            a.cache_hits,
            a.cache_misses
        )
    }

    /// Serialize the summary to JSON (hand-rolled, same style as
    /// `PipelineReport::to_json`; schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"flow\":{},", json_str(&self.flow)));
        out.push_str(&format!("\"jobs\":{},", self.jobs));
        out.push_str(&format!("\"cache_enabled\":{},", self.cache_enabled));
        out.push_str(&format!("\"wall_us\":{},", self.wall_us));
        out.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"misses\":{}}},",
            self.cache_hits(),
            self.cache_misses()
        ));
        out.push_str("\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(w));
        }
        out.push_str("],\"kernels\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &r.outcome {
                RunOutcome::Completed(a) => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"ok\",{}}}",
                    json_str(&r.kernel),
                    Self::artifact_json_fields(a)
                )),
                RunOutcome::Degraded { artifacts, reason } => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"degraded\",\"reason\":{},{}}}",
                    json_str(&r.kernel),
                    json_str(reason),
                    Self::artifact_json_fields(artifacts)
                )),
                RunOutcome::Failed(e) => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"failed\",\"stage\":{},\"class\":{},\"error\":{}}}",
                    json_str(&r.kernel),
                    json_str(e.stage()),
                    json_str(&e.class_label()),
                    json_str(e.detail())
                )),
                RunOutcome::Panicked { message } => out.push_str(&format!(
                    "{{\"kernel\":{},\"status\":\"panicked\",\"error\":{}}}",
                    json_str(&r.kernel),
                    json_str(message)
                )),
            }
        }
        out.push_str("]}");
        out
    }

    fn artifact_json_fields(a: &KernelArtifacts) -> String {
        format!(
            "\"module_digest\":{},\"latency\":{},\"interval\":{},\"cosim_max_err\":{},\"cosim_steps\":{},\"cache_hits\":{},\"cache_misses\":{},\"report\":{}",
            json_str(&a.module_digest),
            a.csynth.latency,
            a.csynth.interval,
            a.cosim_max_err,
            a.cosim_steps,
            a.cache_hits,
            a.cache_misses,
            a.report.to_json()
        )
    }
}

/// Serialize a [`RunOutcome`] as the journal's `done`-record payload. The
/// encoding is total: every artifact field travels (module text, exact
/// csynth/cosim payload encodings, the nested report), so
/// [`outcome_from_json`] reconstructs the outcome field-for-field and a
/// `--resume` replay is indistinguishable from having run the kernel.
pub fn outcome_to_json(o: &RunOutcome) -> String {
    fn artifact_fields(a: &KernelArtifacts) -> String {
        format!(
            "\"module_text\":{},\"module_digest\":{},\"csynth\":{},\"cosim\":{},\"cache_hits\":{},\"cache_misses\":{},\"report\":{}",
            json_str(&a.module_text),
            json_str(&a.module_digest),
            json_str(&cache::encode_csynth(&a.csynth)),
            json_str(&cache::encode_cosim(&crate::CosimResult {
                max_abs_err: a.cosim_max_err,
                steps: a.cosim_steps,
            })),
            a.cache_hits,
            a.cache_misses,
            a.report.to_json()
        )
    }
    match o {
        RunOutcome::Completed(a) => format!("{{\"status\":\"ok\",{}}}", artifact_fields(a)),
        RunOutcome::Degraded { artifacts, reason } => format!(
            "{{\"status\":\"degraded\",\"reason\":{},{}}}",
            json_str(reason),
            artifact_fields(artifacts)
        ),
        RunOutcome::Failed(e) => {
            // Splice the StageError's own fields (stage/class/error plus
            // the crash-only rss_peak_kb) after the status tag.
            format!("{{\"status\":\"failed\",{}", &e.to_json()[1..])
        }
        RunOutcome::Panicked { message } => {
            format!(
                "{{\"status\":\"panicked\",\"error\":{}}}",
                json_str(message)
            )
        }
    }
}

/// Parse a journal `done`-record payload back into a [`RunOutcome`].
pub fn outcome_from_json(v: &JsonValue) -> Result<RunOutcome, String> {
    fn artifacts(v: &JsonValue) -> Result<KernelArtifacts, String> {
        let text = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("journal outcome: missing '{k}'"))
        };
        let count = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_u64())
                .map(|n| n as usize)
                .ok_or_else(|| format!("journal outcome: missing '{k}'"))
        };
        let csynth = cache::decode_csynth(&text("csynth")?)
            .map_err(|e| format!("journal outcome: bad csynth payload: {e}"))?;
        let cosim = cache::decode_cosim(&text("cosim")?)
            .map_err(|e| format!("journal outcome: bad cosim payload: {e}"))?;
        let report = PipelineReport::from_json_value(
            v.get("report").ok_or("journal outcome: missing 'report'")?,
        )?;
        Ok(KernelArtifacts {
            module_text: text("module_text")?,
            module_digest: text("module_digest")?,
            csynth,
            cosim_max_err: cosim.max_abs_err,
            cosim_steps: cosim.steps,
            report,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
        })
    }
    let status = v
        .get("status")
        .and_then(|x| x.as_str())
        .ok_or("journal outcome: missing 'status'")?;
    match status {
        "ok" => Ok(RunOutcome::Completed(Box::new(artifacts(v)?))),
        "degraded" => Ok(RunOutcome::Degraded {
            artifacts: Box::new(artifacts(v)?),
            reason: v
                .get("reason")
                .and_then(|x| x.as_str())
                .unwrap_or_default()
                .to_string(),
        }),
        "failed" => Ok(RunOutcome::Failed(StageError::from_json(v)?)),
        "panicked" => Ok(RunOutcome::Panicked {
            message: v
                .get("error")
                .and_then(|x| x.as_str())
                .unwrap_or_default()
                .to_string(),
        }),
        other => Err(format!("journal outcome: unknown status '{other}'")),
    }
}

/// A canonical, order-stable text form of the pass configuration; hashed
/// into every flow-stage cache key so a directive change invalidates
/// exactly the affected artifacts.
pub(crate) fn directives_repr(d: &Directives, flow: Flow) -> String {
    fn opt(v: Option<u32>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    format!(
        "flow={};ii={};unroll={};partition={};flatten={}",
        flow.label(),
        opt(d.pipeline_ii),
        opt(d.unroll_factor),
        opt(d.partition_factor),
        d.flatten
    )
}

pub(crate) fn target_repr(t: &Target) -> String {
    format!(
        "clock={:016x};bram_ports={};axi_ports={};axi_extra={}",
        t.clock_ns.to_bits(),
        t.bram_ports,
        t.axi_ports,
        t.axi_extra_latency
    )
}

/// The full configuration identity a journal is bound to: resuming under a
/// different value of any of these would mix incomparable outcomes.
fn batch_config_repr(opts: &BatchOptions) -> String {
    fn opt_u64(v: Option<u64>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    format!(
        "{};target={};seed={};deadline_ms={};fuel={};chaos={}",
        directives_repr(&opts.directives, opts.flow),
        target_repr(&opts.target),
        opts.seed,
        opt_u64(opts.deadline_ms),
        opt_u64(opts.fuel),
        opts.chaos.map(|c| c.repr()).unwrap_or_else(|| "-".into()),
    )
}

/// Shared per-run context handed to every worker.
struct BatchCtx<'a> {
    opts: &'a BatchOptions,
    cache: Option<Cache>,
    chaos: Option<ChaosEngine>,
    journal: Option<Journal>,
    warnings: Mutex<Vec<String>>,
}

/// Faults the chaos engine may inject at a pipeline stage boundary.
const BOUNDARY_MENU: &[ChaosFault] = &[
    ChaosFault::Panic,
    ChaosFault::Delay,
    ChaosFault::FuelExhaustion,
];

/// At the adaptor flow's boundary a legalization rejection is also on the
/// menu, to exercise the degraded C++-flow fallback.
const ADAPTOR_BOUNDARY_MENU: &[ChaosFault] = &[
    ChaosFault::Panic,
    ChaosFault::Delay,
    ChaosFault::FuelExhaustion,
    ChaosFault::AdaptorReject,
];

impl BatchCtx<'_> {
    /// Record a non-fatal warning: streamed to stderr immediately (stdout
    /// stays a clean document for `--format json`) and collected for the
    /// summary's `warnings` array.
    fn warn(&self, w: String) {
        eprintln!("warning: {w}");
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(w);
    }

    fn chaos_roll(
        &self,
        kernel: &str,
        site: &str,
        attempt: u32,
        menu: &[ChaosFault],
    ) -> Option<ChaosFault> {
        self.chaos
            .as_ref()
            .and_then(|c| c.roll(kernel, site, attempt, menu))
    }

    /// Roll (and apply) stage-boundary chaos for `kernel` at `site`.
    /// Panics propagate to the worker's `catch_unwind`; a delay just
    /// sleeps (letting a real deadline trip downstream); fuel exhaustion
    /// drains the pool *and* trips immediately so the injection is
    /// observable even without `--fuel`.
    fn boundary_chaos(
        &self,
        kernel: &str,
        site: &str,
        flow: Flow,
        budget: &Budget,
    ) -> Result<(), StageError> {
        let menu = if site == "flow" && flow == Flow::Adaptor {
            ADAPTOR_BOUNDARY_MENU
        } else {
            BOUNDARY_MENU
        };
        match self.chaos_roll(kernel, site, 0, menu) {
            // IoError only fires at cache sites; the serve-layer faults
            // (socket reset / slow read / worker stall) and the
            // warden-layer crash faults (worker kill / rss bomb / reply
            // truncate) never appear on a batch boundary menu.
            None
            | Some(
                ChaosFault::IoError
                | ChaosFault::SocketReset
                | ChaosFault::SlowRead
                | ChaosFault::WorkerStall
                | ChaosFault::WorkerKill
                | ChaosFault::RssBomb
                | ChaosFault::ReplyTruncate,
            ) => Ok(()),
            Some(ChaosFault::Panic) => {
                panic!("chaos: injected panic at {site} for {kernel}")
            }
            Some(ChaosFault::Delay) => {
                std::thread::sleep(Duration::from_millis(25));
                Ok(())
            }
            Some(ChaosFault::FuelExhaustion) => {
                budget.exhaust_fuel();
                Err(budget_trip(BudgetError::new(
                    pass_core::BudgetKind::Fuel,
                    site,
                    "chaos: injected fuel exhaustion",
                )))
            }
            Some(ChaosFault::AdaptorReject) => Err(StageError::Fault {
                stage: "flow".to_string(),
                class: FaultClass::Deterministic,
                detail: "chaos: injected adaptor legalization rejection".to_string(),
            }),
        }
    }

    /// Probe the cache under the retry policy. Corrupt entries degrade to
    /// a miss plus a warning; a probe still failing transiently after
    /// backoff is abandoned (recompute), never fatal.
    fn probe(&self, kernel: &str, stage: &str, key: &CacheKey) -> Option<String> {
        let cache = self.cache.as_ref()?;
        let site = format!("cache/{stage}");
        let probed = self.opts.retry.run(&site, |attempt| {
            if self
                .chaos_roll(kernel, &site, attempt, &[ChaosFault::IoError])
                .is_some()
            {
                return Err((
                    FaultClass::Transient,
                    "chaos: injected cache read error".to_string(),
                ));
            }
            match cache.load(key) {
                Lookup::Hit(payload) => Ok(Some(payload)),
                Lookup::Miss => Ok(None),
                Lookup::Corrupt(reason) => {
                    self.warn(format!("corrupt cache entry ignored: {reason}"));
                    Ok(None)
                }
            }
        });
        match probed {
            Ok(v) => v,
            Err(e) => {
                self.warn(format!(
                    "cache probe abandoned for {kernel} ({e}); recomputing"
                ));
                None
            }
        }
    }

    /// Store a freshly computed artifact under the retry policy; store
    /// failures are warnings, not errors — the batch result is already in
    /// hand.
    fn keep(&self, kernel: &str, stage: &str, key: &CacheKey, payload: &str) {
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        let site = format!("store/{stage}");
        let stored = self.opts.retry.run(&site, |attempt| {
            if self
                .chaos_roll(kernel, &site, attempt, &[ChaosFault::IoError])
                .is_some()
            {
                return Err((
                    FaultClass::Transient,
                    "chaos: injected cache write error".to_string(),
                ));
            }
            cache
                .store(key, payload)
                .map_err(|e| (FaultClass::Transient, e.to_string()))
        });
        if let Err(e) = stored {
            self.warn(format!("cache store failed: {e}"));
        }
    }
}

/// Lift a [`BudgetError`] into the batch's [`StageError`] vocabulary.
fn budget_trip(e: BudgetError) -> StageError {
    StageError::BudgetExceeded {
        stage: e.stage,
        kind: e.kind,
        detail: e.detail,
    }
}

/// Run one kernel through `flow` → csynth → cosim with stage-level caching,
/// under a fresh per-attempt [`Budget`] and the chaos engine's boundary
/// injections.
fn run_pipeline(k: &Kernel, ctx: &BatchCtx<'_>, flow: Flow) -> Result<KernelArtifacts, StageError> {
    let opts = ctx.opts;
    let budget = opts.fresh_budget();
    let mut report = PipelineReport::new("batch");
    let mut hits = 0usize;
    let mut misses = 0usize;
    let config = directives_repr(&opts.directives, flow);

    // Stage 1: MLIR → HLS-ready module, keyed by kernel content + config.
    ctx.boundary_chaos(k.name, "flow", flow, &budget)?;
    let flow_key = KeyBuilder::new("flow")
        .num("kernel", k.content_digest())
        .text("config", &config)
        .finish();
    let start = std::time::Instant::now();
    let module_text = match ctx.probe(k.name, "flow", &flow_key) {
        Some(text) => {
            hits += 1;
            report.record_cached("flow", start.elapsed().as_micros() as u64);
            text
        }
        None => {
            misses += 1;
            let art = run_flow_budgeted(k, &opts.directives, flow, &budget).map_err(|e| {
                StageError::classify("flow", &e.to_string(), FaultClass::Deterministic)
            })?;
            report.extend_prefixed("flow", &art.report);
            let text = llvm_lite::printer::print_module(&art.module);
            ctx.keep(k.name, "flow", &flow_key, &text);
            text
        }
    };
    let module_digest = format!("{:016x}", kernels::fnv1a64(module_text.as_bytes()));

    // Stages 2 and 3 key on the module *text*: any IR change reflows them,
    // any directive change already changed the text. The module is only
    // re-parsed when at least one of them actually has to run.
    let csynth_key = KeyBuilder::new("csynth")
        .text("module", &module_text)
        .text("target", &target_repr(&opts.target))
        .finish();
    let cosim_key = KeyBuilder::new("cosim")
        .text("module", &module_text)
        .num("kernel", k.content_digest())
        .num("seed", opts.seed)
        .finish();

    ctx.boundary_chaos(k.name, "csynth", flow, &budget)?;
    let cached_csynth = {
        let start = std::time::Instant::now();
        ctx.probe(k.name, "csynth", &csynth_key)
            .and_then(|p| match cache::decode_csynth(&p) {
                Ok(r) => {
                    hits += 1;
                    report.record_cached("csynth", start.elapsed().as_micros() as u64);
                    Some(r)
                }
                Err(e) => {
                    ctx.warn(format!("undecodable csynth entry for {}: {e}", k.name));
                    None
                }
            })
    };
    ctx.boundary_chaos(k.name, "cosim", flow, &budget)?;
    let cached_cosim = {
        let start = std::time::Instant::now();
        ctx.probe(k.name, "cosim", &cosim_key)
            .and_then(|p| match cache::decode_cosim(&p) {
                Ok(r) => {
                    hits += 1;
                    report.record_cached("cosim", start.elapsed().as_micros() as u64);
                    Some(r)
                }
                Err(e) => {
                    ctx.warn(format!("undecodable cosim entry for {}: {e}", k.name));
                    None
                }
            })
    };

    let module = if cached_csynth.is_none() || cached_cosim.is_none() {
        Some(
            llvm_lite::parser::parse_module(k.name, &module_text).map_err(|e| {
                StageError::classify("parse", &e.to_string(), FaultClass::Deterministic)
            })?,
        )
    } else {
        None
    };

    let csynth_report = match cached_csynth {
        Some(r) => r,
        None => {
            misses += 1;
            let r = report
                .time_stage("csynth", || {
                    csynth_budgeted(module.as_ref().unwrap(), &opts.target, &budget)
                })
                .map_err(|e| {
                    StageError::classify("csynth", &e.to_string(), FaultClass::Deterministic)
                })?;
            ctx.keep(k.name, "csynth", &csynth_key, &cache::encode_csynth(&r));
            r
        }
    };
    let cosim_result = match cached_cosim {
        Some(r) => r,
        None => {
            misses += 1;
            budget.charge(1, "cosim").map_err(budget_trip)?;
            let r = report
                .time_stage("cosim", || cosim(module.as_ref().unwrap(), k, opts.seed))
                .map_err(|e| {
                    StageError::classify("cosim", &e.to_string(), FaultClass::Deterministic)
                })?;
            ctx.keep(k.name, "cosim", &cosim_key, &cache::encode_cosim(&r));
            r
        }
    };

    Ok(KernelArtifacts {
        module_text,
        module_digest,
        csynth: csynth_report,
        cosim_max_err: cosim_result.max_abs_err,
        cosim_steps: cosim_result.steps,
        report,
        cache_hits: hits,
        cache_misses: misses,
    })
}

/// One kernel under full supervision: the requested flow first; when the
/// adaptor flow fails *deterministically* (a legalization property of the
/// input, not a budget trip or transient fault), fall back to the baseline
/// C++ flow and mark the kernel degraded.
fn run_one(k: &Kernel, ctx: &BatchCtx<'_>) -> RunOutcome {
    if ctx.opts.inject_panic.as_deref() == Some(k.name) {
        panic!("injected panic for {} (test hook)", k.name);
    }
    match run_pipeline(k, ctx, ctx.opts.flow) {
        Ok(a) => RunOutcome::Completed(Box::new(a)),
        Err(StageError::Fault {
            stage,
            class: FaultClass::Deterministic,
            detail,
        }) if ctx.opts.flow == Flow::Adaptor && stage == "flow" => {
            let reason = format!("deterministic fault in {stage}: {detail}");
            ctx.warn(format!(
                "{}: adaptor flow failed; degrading to the C++ flow ({detail})",
                k.name
            ));
            match run_pipeline(k, ctx, Flow::Cpp) {
                Ok(mut artifacts) => {
                    artifacts.report.degraded = true;
                    RunOutcome::Degraded {
                        artifacts: Box::new(artifacts),
                        reason,
                    }
                }
                Err(e) => RunOutcome::Failed(e),
            }
        }
        Err(e) => RunOutcome::Failed(e),
    }
}

fn run_one_isolated(k: &Kernel, ctx: &BatchCtx<'_>) -> KernelRun {
    let outcome = match std::panic::catch_unwind(AssertUnwindSafe(|| run_one(k, ctx))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            RunOutcome::Panicked { message }
        }
    };
    KernelRun {
        kernel: k.name.to_string(),
        outcome,
    }
}

/// Run a single kernel through the full supervised pipeline — flow →
/// csynth → co-simulation with stage-level caching, budget supervision,
/// chaos injection, degraded-fallback, and panic isolation — without the
/// batch machinery around it (no journal, no worker pool, no summary).
///
/// This is the per-request engine behind `mha-serve`: each HTTP request
/// for a suite kernel becomes one `run_supervised` call sharing the same
/// on-disk cache directory as `mha-batch`. Returns the outcome plus any
/// warnings the run produced (the batch layer would stream these to
/// stderr; a server attaches them to the response instead).
pub fn run_supervised(
    kernel: &Kernel,
    opts: &BatchOptions,
) -> Result<(RunOutcome, Vec<String>), BatchError> {
    let cache = match &opts.cache_dir {
        Some(dir) => Some(Cache::open(dir)?),
        None => None,
    };
    let ctx = BatchCtx {
        opts,
        cache,
        chaos: opts.chaos.map(ChaosEngine::new),
        journal: None,
        warnings: Mutex::new(Vec::new()),
    };
    let run = run_one_isolated(kernel, &ctx);
    let warnings = ctx.warnings.into_inner().unwrap_or_else(|p| p.into_inner());
    Ok((run.outcome, warnings))
}

/// Run the batch: every kernel through the configured flow, on
/// `opts.effective_jobs` worker threads, with per-kernel failure isolation,
/// stage-level caching, budget supervision, and (with caching on) a
/// write-ahead journal. Results come back in input order regardless of
/// completion order; with `opts.resume`, kernels already completed in the
/// journal are replayed instead of re-run.
pub fn run_batch(kernels: &[Kernel], opts: &BatchOptions) -> Result<BatchSummary, BatchError> {
    if kernels.is_empty() {
        return Err(BatchError::Usage("no kernels selected".into()));
    }
    if opts.resume && opts.cache_dir.is_none() {
        return Err(BatchError::Usage(
            "--resume needs the run journal, which lives in the cache directory; \
             drop --no-cache"
                .into(),
        ));
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(Cache::open(dir)?),
        None => None,
    };
    let config = batch_config_repr(opts);
    let mut replayed = JournalOutcomes::new();
    let journal = match &opts.cache_dir {
        Some(dir) => {
            let path = dir.join(Journal::FILE_NAME);
            if opts.resume {
                let (j, outcomes) = Journal::resume(&path, &config)?;
                replayed = outcomes;
                Some(j)
            } else {
                Some(Journal::create(&path, &config)?)
            }
        }
        None => None,
    };
    let ctx = BatchCtx {
        opts,
        cache,
        chaos: opts.chaos.map(ChaosEngine::new),
        journal,
        warnings: Mutex::new(Vec::new()),
    };
    let jobs = opts.effective_jobs(kernels.len());
    if opts.jobs > kernels.len() {
        ctx.warn(format!(
            "--jobs {} exceeds the {} selected kernel(s); clamping to {jobs}",
            opts.jobs,
            kernels.len()
        ));
    }
    let start = std::time::Instant::now();

    // Pre-fill slots for journal-replayed kernels; only the rest queue up.
    let slots: Vec<Mutex<Option<KernelRun>>> = kernels.iter().map(|_| Mutex::new(None)).collect();
    let mut pending: Vec<usize> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        match replayed.get(k.name).map(outcome_from_json) {
            Some(Ok(outcome)) => {
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(KernelRun {
                    kernel: k.name.to_string(),
                    outcome,
                });
            }
            Some(Err(e)) => {
                ctx.warn(format!(
                    "journal outcome for {} unusable ({e}); re-running",
                    k.name
                ));
                pending.push(i);
            }
            None => pending.push(i),
        }
    }
    let n_replayed = kernels.len() - pending.len();
    if n_replayed > 0 {
        eprintln!("mha-batch: --resume replayed {n_replayed} completed kernel(s) from the journal");
    }

    // Process isolation (`--isolate`): compilations run in warden worker
    // processes, one warm worker per pool thread. Journaling, resume, and
    // result slots stay supervisor-side; only the compute crosses the
    // process boundary.
    let warden = if opts.isolate {
        Some(
            crate::warden::Warden::new(crate::warden::WardenConfig {
                pool: jobs.min(pending.len().max(1)),
                ..crate::warden::WardenConfig::default()
            })
            .map_err(|e| BatchError::Usage(format!("--isolate worker pool: {e}")))?,
        )
    } else {
        None
    };

    // Worker pool: `jobs` threads pull indices from a shared counter, so a
    // slow kernel never blocks the queue behind it. (The workspace's rayon
    // stand-in is sequential — see stubs/rayon — so the pool is built
    // directly on scoped threads.)
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(pending.len().max(1)) {
            scope.spawn(|| loop {
                let qi = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(qi) else { break };
                let k = &kernels[i];
                if let Some(j) = &ctx.journal {
                    if let Err(e) = j.begin(k.name) {
                        ctx.warn(format!("journal write failed for {}: {e}", k.name));
                    }
                }
                let run = match &warden {
                    Some(w) => {
                        let (outcome, warnings) = w.execute_suite(k.name, ctx.opts);
                        for msg in warnings {
                            ctx.warn(format!("{}: {msg}", k.name));
                        }
                        KernelRun {
                            kernel: k.name.to_string(),
                            outcome,
                        }
                    }
                    None => run_one_isolated(k, &ctx),
                };
                if let Some(j) = &ctx.journal {
                    if let Err(e) = j.finish(k.name, &outcome_to_json(&run.outcome)) {
                        ctx.warn(format!("journal write failed for {}: {e}", k.name));
                    }
                }
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(run);
            });
        }
    });

    let runs = slots
        .into_iter()
        .zip(kernels)
        .map(|(slot, k)| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or(KernelRun {
                    kernel: k.name.to_string(),
                    outcome: RunOutcome::Panicked {
                        message: "worker disappeared without reporting".into(),
                    },
                })
        })
        .collect();

    Ok(BatchSummary {
        flow: opts.flow.label().to_string(),
        jobs,
        cache_enabled: ctx.cache.is_some(),
        wall_us: start.elapsed().as_micros() as u64,
        runs,
        warnings: ctx.warnings.into_inner().unwrap_or_else(|p| p.into_inner()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_core::json;

    fn no_cache_opts() -> BatchOptions {
        BatchOptions {
            cache_dir: None,
            jobs: 4,
            ..BatchOptions::default()
        }
    }

    #[test]
    fn batch_over_two_kernels_completes() {
        let ks: Vec<Kernel> = ["gemm", "fir"]
            .iter()
            .map(|n| *kernels::kernel(n).unwrap())
            .collect();
        let s = run_batch(&ks, &no_cache_opts()).unwrap();
        assert_eq!(s.runs.len(), 2);
        assert_eq!(s.exit_code(), 0);
        assert_eq!(s.cache_hits(), 0);
        for r in &s.runs {
            match &r.outcome {
                RunOutcome::Completed(a) => {
                    assert_eq!(a.cosim_max_err, 0.0, "{}", r.kernel);
                    assert!(a.csynth.latency > 0);
                }
                other => panic!("{}: {other:?}", r.kernel),
            }
        }
    }

    #[test]
    fn empty_selection_is_a_usage_error() {
        let err = run_batch(&[], &no_cache_opts()).unwrap_err();
        assert!(matches!(err, BatchError::Usage(_)));
        assert!(err.to_string().contains("no kernels"));
    }

    #[test]
    fn resume_without_cache_is_a_usage_error() {
        let ks = [*kernels::kernel("fir").unwrap()];
        let err = run_batch(
            &ks,
            &BatchOptions {
                resume: true,
                ..no_cache_opts()
            },
        )
        .unwrap_err();
        assert!(matches!(err, BatchError::Usage(_)));
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn summary_json_has_the_documented_shape() {
        let ks = [*kernels::kernel("fir").unwrap()];
        let s = run_batch(&ks, &no_cache_opts()).unwrap();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for needle in [
            "\"flow\":\"adaptor\"",
            "\"cache_enabled\":false",
            "\"kernels\":[",
            "\"kernel\":\"fir\"",
            "\"status\":\"ok\"",
            "\"module_digest\":",
            "\"report\":{",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        // And it parses as one JSON document.
        json::parse(&j).unwrap();
    }

    #[test]
    fn directive_repr_is_canonical() {
        let a = directives_repr(&Directives::pipelined(1), Flow::Adaptor);
        let b = directives_repr(&Directives::pipelined(2), Flow::Adaptor);
        let c = directives_repr(&Directives::pipelined(1), Flow::Cpp);
        assert_eq!(a, "flow=adaptor;ii=1;unroll=-;partition=-;flatten=false");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fuel_starved_kernel_fails_with_budget_outcome_and_isolates() {
        let ks: Vec<Kernel> = ["gemm", "fir"]
            .iter()
            .map(|n| *kernels::kernel(n).unwrap())
            .collect();
        let s = run_batch(
            &ks,
            &BatchOptions {
                fuel: Some(2),
                ..no_cache_opts()
            },
        )
        .unwrap();
        // Both kernels trip (each attempt gets its own 2-unit pool), with a
        // structured budget outcome, not a hang or a panic.
        assert_eq!(s.exit_code(), 1);
        for r in &s.runs {
            match &r.outcome {
                RunOutcome::Failed(e) => {
                    assert!(e.is_budget(), "{}: {e:?}", r.kernel);
                    assert_eq!(e.class_label(), "budget-fuel", "{}", r.kernel);
                }
                other => panic!("{}: expected budget failure, got {other:?}", r.kernel),
            }
        }
        // A generous pool completes normally.
        let s = run_batch(
            &ks,
            &BatchOptions {
                fuel: Some(1_000_000),
                ..no_cache_opts()
            },
        )
        .unwrap();
        assert_eq!(s.exit_code(), 0, "{:?}", s.runs[0].outcome);
    }

    #[test]
    fn outcome_json_round_trips_every_shape() {
        let ks = [*kernels::kernel("fir").unwrap()];
        let s = run_batch(&ks, &no_cache_opts()).unwrap();
        let completed = &s.runs[0].outcome;
        let degraded = match completed {
            RunOutcome::Completed(a) => RunOutcome::Degraded {
                artifacts: a.clone(),
                reason: "deterministic fault in flow: injected".to_string(),
            },
            other => panic!("{other:?}"),
        };
        let failed = RunOutcome::Failed(StageError::Fault {
            stage: "flow".into(),
            class: FaultClass::Deterministic,
            detail: "no such kernel".into(),
        });
        let tripped = RunOutcome::Failed(StageError::BudgetExceeded {
            stage: "csynth/schedule".into(),
            kind: pass_core::BudgetKind::Fuel,
            detail: "pool empty".into(),
        });
        let panicked = RunOutcome::Panicked {
            message: "boom".into(),
        };
        let crashed = RunOutcome::Failed(StageError::Crash {
            stage: "warden".into(),
            cause: "signal 9".into(),
            rss_peak_kb: Some(204_800),
        });
        for outcome in [completed, &degraded, &failed, &tripped, &panicked, &crashed] {
            let encoded = outcome_to_json(outcome);
            let parsed = outcome_from_json(&json::parse(&encoded).unwrap()).unwrap();
            // Field-for-field equality via the canonical encoding.
            assert_eq!(encoded, outcome_to_json(&parsed));
        }
    }
}
