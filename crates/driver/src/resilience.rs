//! Admission control and degradation primitives for `mha-serve`.
//!
//! The service's resilience layer (ARCHITECTURE.md §7) is built from two
//! self-contained pieces that know nothing about HTTP:
//!
//! * [`FairQueue`] — a bounded admission queue with per-client
//!   **deficit-round-robin** scheduling. The acceptor/intake side pushes
//!   classified work items tagged with a client identity; the worker side
//!   pops them in DRR order, so one aggressive tenant with a deep backlog
//!   cannot starve polite tenants (each round serves every active client
//!   `quantum` items). Admission is where overload is shed: when the
//!   queue is past its depth bound or the recent queue-wait p99 is past
//!   the configured bound, [`FairQueue::try_admit`] refuses with a
//!   [`Shed`] verdict the server turns into `429 Retry-After`. Shedding
//!   is tiered ([`ShedClass`]): raw-MLIR compiles shed first, suite
//!   kernels only under harder pressure — graceful degradation rather
//!   than cliff collapse. Warm/cache hits are answered before admission
//!   and therefore can never be shed.
//! * [`Breaker`] — a circuit breaker over the PR-4 fault taxonomy. It
//!   watches the rate of **transient** faults in a sliding window; past
//!   the trip ratio it opens, and while open the serve layer degrades
//!   adaptor-flow compiles to the deterministic C++ fallback (the same
//!   fallback `mha-batch` uses for deterministic adaptor failures)
//!   instead of hammering the failing path. After a cooldown the breaker
//!   goes half-open and admits a single probe through the normal path;
//!   the probe's outcome closes or re-opens it.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How urgent it is to keep a request when the admission queue is under
/// pressure. Lower-priority classes shed first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedClass {
    /// Raw-MLIR compile: ad-hoc work with no suite identity; sheds first.
    Raw,
    /// Suite-kernel compile: the service's primary workload; sheds only
    /// when the queue is saturated outright.
    Suite,
}

/// Why a request was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue is at its hard depth bound.
    Full,
    /// The queue-wait p99 (or the raw-tier depth threshold) is past its
    /// bound; lower tiers shed before the queue saturates.
    Pressure,
}

/// An admission refusal: the reason plus a `Retry-After` hint derived
/// from the recent queue-wait distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shed {
    /// Why admission was refused.
    pub reason: ShedReason,
    /// Suggested client back-off, whole seconds (the `Retry-After` value).
    pub retry_after_s: u64,
}

/// Configuration for the [`FairQueue`] admission policy.
#[derive(Clone, Copy, Debug)]
pub struct FairQueueConfig {
    /// Hard bound on total queued items; at this depth everything sheds.
    pub max_depth: usize,
    /// DRR quantum: items served per client per round (cost 1 per item).
    pub quantum: u32,
    /// Queue-wait p99 bound in milliseconds. Past it, [`ShedClass::Raw`]
    /// sheds; past twice it, [`ShedClass::Suite`] sheds too.
    pub shed_wait_p99_ms: u64,
}

impl Default for FairQueueConfig {
    fn default() -> FairQueueConfig {
        FairQueueConfig {
            max_depth: 64,
            quantum: 1,
            shed_wait_p99_ms: 2_000,
        }
    }
}

/// Recent queue-wait samples kept for the shed decision (exact p99 over a
/// small sliding window; the unbounded [`pass_core::Histogram`] in the
/// metrics has no decay, which would let one slow hour shed forever).
const WAIT_WINDOW: usize = 128;

struct ClientLane<T> {
    items: VecDeque<(T, Instant)>,
    deficit: u32,
    /// True while the client id is in the round-robin ring.
    in_ring: bool,
}

impl<T> Default for ClientLane<T> {
    fn default() -> Self {
        ClientLane {
            items: VecDeque::new(),
            deficit: 0,
            in_ring: false,
        }
    }
}

struct QueueInner<T> {
    lanes: HashMap<String, ClientLane<T>>,
    /// Round-robin ring of client ids with queued items.
    ring: VecDeque<String>,
    depth: usize,
    closed: bool,
    waits_us: VecDeque<u64>,
}

/// A bounded multi-tenant admission queue with deficit-round-robin
/// scheduling (client = caller-supplied identity string).
///
/// Pushers call [`FairQueue::try_admit`]; poppers call [`FairQueue::pop`],
/// which blocks until an item is available or the queue is closed *and*
/// drained. Each pop also returns how long the item waited, which feeds
/// both the shed policy and the service's queue-wait histogram.
pub struct FairQueue<T> {
    cfg: FairQueueConfig,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

impl<T> FairQueue<T> {
    /// An empty queue under `cfg`.
    pub fn new(cfg: FairQueueConfig) -> FairQueue<T> {
        FairQueue {
            cfg,
            inner: Mutex::new(QueueInner {
                lanes: HashMap::new(),
                ring: VecDeque::new(),
                depth: 0,
                closed: false,
                waits_us: VecDeque::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// The policy this queue admits under.
    pub fn config(&self) -> &FairQueueConfig {
        &self.cfg
    }

    /// Current total depth across all client lanes.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).depth
    }

    /// Exact p99 of the recent queue-wait window, microseconds (0 while
    /// the window is empty).
    pub fn recent_wait_p99_us(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        Self::p99_of(&inner.waits_us)
    }

    fn p99_of(waits: &VecDeque<u64>) -> u64 {
        if waits.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = waits.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn retry_after_s(p99_us: u64) -> u64 {
        (p99_us / 1_000_000 + 1).clamp(1, 30)
    }

    /// Admit `item` for `client`, or shed it. The decision is tiered:
    ///
    /// * depth ≥ `max_depth` → shed everything ([`ShedReason::Full`]);
    /// * [`ShedClass::Raw`] → shed when depth ≥ `max_depth / 2` or the
    ///   recent wait p99 exceeds `shed_wait_p99_ms`;
    /// * [`ShedClass::Suite`] → shed when the recent wait p99 exceeds
    ///   `2 * shed_wait_p99_ms`.
    ///
    /// On admission, returns the queue depth after the push; on shed,
    /// hands the item back alongside the verdict (the caller still owns
    /// the connection it must answer `429` on). A closed (draining) queue
    /// sheds everything as [`ShedReason::Full`].
    pub fn try_admit(&self, client: &str, class: ShedClass, item: T) -> Result<usize, (T, Shed)> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let p99_us = Self::p99_of(&inner.waits_us);
        let p99_bound_us = self.cfg.shed_wait_p99_ms.saturating_mul(1000);
        let shed = |reason| Shed {
            reason,
            retry_after_s: Self::retry_after_s(p99_us),
        };
        if inner.closed || inner.depth >= self.cfg.max_depth {
            return Err((item, shed(ShedReason::Full)));
        }
        let over_p99 = p99_bound_us > 0 && p99_us > p99_bound_us;
        let over_p99_hard = p99_bound_us > 0 && p99_us > p99_bound_us.saturating_mul(2);
        match class {
            ShedClass::Raw if inner.depth >= self.cfg.max_depth.div_ceil(2) || over_p99 => {
                return Err((item, shed(ShedReason::Pressure)));
            }
            ShedClass::Suite if over_p99_hard => {
                return Err((item, shed(ShedReason::Pressure)));
            }
            _ => {}
        }
        let lane = inner.lanes.entry(client.to_string()).or_default();
        lane.items.push_back((item, Instant::now()));
        if !lane.in_ring {
            lane.in_ring = true;
            inner.ring.push_back(client.to_string());
        }
        inner.depth += 1;
        let depth = inner.depth;
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pop the next item in DRR order, blocking while the queue is empty
    /// and open. Returns the item, how long it waited, and its client id —
    /// or `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<(T, Duration, String)> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if inner.depth > 0 {
                return Some(self.pop_locked(&mut inner));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn pop_locked(&self, inner: &mut QueueInner<T>) -> (T, Duration, String) {
        loop {
            let client = inner.ring.pop_front().expect("depth > 0 implies ring");
            let lane = inner.lanes.get_mut(&client).expect("ring client has lane");
            if lane.items.is_empty() {
                // Lane drained earlier in this round; drop it from the ring.
                lane.in_ring = false;
                lane.deficit = 0;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = self.cfg.quantum.max(1);
            }
            let (item, queued_at) = lane.items.pop_front().expect("lane non-empty");
            lane.deficit -= 1;
            if lane.items.is_empty() {
                lane.in_ring = false;
                lane.deficit = 0;
            } else if lane.deficit > 0 {
                // Quantum not yet spent: this client keeps the head slot.
                inner.ring.push_front(client.clone());
            } else {
                inner.ring.push_back(client.clone());
            }
            inner.depth -= 1;
            let wait = queued_at.elapsed();
            inner.waits_us.push_back(wait.as_micros() as u64);
            while inner.waits_us.len() > WAIT_WINDOW {
                inner.waits_us.pop_front();
            }
            return (item, wait, client);
        }
    }

    /// Close the queue: no further admissions, and [`FairQueue::pop`]
    /// returns `None` once the remaining items are drained. Wakes every
    /// blocked popper.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Configuration for the [`Breaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding-window size (outcomes remembered while closed).
    pub window: usize,
    /// Minimum samples in the window before the trip ratio is evaluated.
    pub min_samples: usize,
    /// Transient-fault fraction at or above which the breaker opens.
    pub trip_ratio: f64,
    /// How long the breaker stays open before probing half-open.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            trip_ratio: 0.5,
            cooldown_ms: 2_000,
        }
    }
}

/// What the breaker tells a request about to compile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed: take the normal path and report the outcome.
    Normal,
    /// Breaker open: degrade to the deterministic fallback; the outcome
    /// is *not* reported (a fallback says nothing about the primary path).
    Degrade,
    /// Breaker half-open and this request is the probe: take the normal
    /// path and report the outcome with `was_probe = true`.
    Probe,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    /// Recent outcomes while closed: `true` = transient fault.
    samples: VecDeque<bool>,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight.
    probing: bool,
    trips: u64,
}

/// A transient-fault-rate circuit breaker (see the module docs for the
/// serve-layer semantics it drives).
pub struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                samples: VecDeque::new(),
                opened_at: None,
                probing: false,
                trips: 0,
            }),
        }
    }

    /// Decide what a request about to compile should do. Transitions
    /// open → half-open when the cooldown has elapsed (the caller becomes
    /// the probe).
    pub fn admit(&self) -> BreakerDecision {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.state {
            BreakerState::Closed => BreakerDecision::Normal,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed() >= Duration::from_millis(self.cfg.cooldown_ms))
                    .unwrap_or(true);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Degrade
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    BreakerDecision::Degrade
                } else {
                    inner.probing = true;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Report a normal-path outcome. `was_probe` must be `true` iff
    /// [`Breaker::admit`] returned [`BreakerDecision::Probe`] for this
    /// request; `transient` is whether the outcome was a transient fault.
    pub fn report(&self, was_probe: bool, transient: bool) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if was_probe {
            inner.probing = false;
            if transient {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.trips += 1;
            } else {
                inner.state = BreakerState::Closed;
                inner.samples.clear();
            }
            return;
        }
        if inner.state != BreakerState::Closed {
            return;
        }
        inner.samples.push_back(transient);
        while inner.samples.len() > self.cfg.window.max(1) {
            inner.samples.pop_front();
        }
        if inner.samples.len() >= self.cfg.min_samples.max(1) {
            let faults = inner.samples.iter().filter(|t| **t).count();
            if faults as f64 / inner.samples.len() as f64 >= self.cfg.trip_ratio {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.trips += 1;
                inner.samples.clear();
            }
        }
    }

    /// Canonical state label for the status endpoint.
    pub fn state_label(&self) -> &'static str {
        match self.inner.lock().unwrap_or_else(|p| p.into_inner()).state {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).trips
    }

    /// Milliseconds until the next half-open probe is allowed (0 when not
    /// open) — the `Retry-After` hint for requests that cannot degrade.
    pub fn retry_after_ms(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.state != BreakerState::Open {
            return 0;
        }
        let cooldown = Duration::from_millis(self.cfg.cooldown_ms);
        inner
            .opened_at
            .and_then(|t| cooldown.checked_sub(t.elapsed()))
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(max_depth: usize) -> FairQueue<u32> {
        FairQueue::new(FairQueueConfig {
            max_depth,
            quantum: 1,
            shed_wait_p99_ms: 2_000,
        })
    }

    #[test]
    fn drr_interleaves_a_hot_tenant_with_polite_ones() {
        let q = queue(64);
        // Hot tenant floods 6 items before polite tenants enqueue 2 each.
        for i in 0..6 {
            q.try_admit("hot", ShedClass::Suite, 100 + i).unwrap();
        }
        for i in 0..2 {
            q.try_admit("p1", ShedClass::Suite, 200 + i).unwrap();
            q.try_admit("p2", ShedClass::Suite, 300 + i).unwrap();
        }
        let mut order = Vec::new();
        while q.depth() > 0 {
            let (_, _, client) = q.pop().unwrap();
            order.push(client);
        }
        // One item per client per round: polite tenants finish within the
        // first rounds instead of waiting behind the hot backlog.
        assert_eq!(
            order,
            vec!["hot", "p1", "p2", "hot", "p1", "p2", "hot", "hot", "hot", "hot"]
        );
    }

    #[test]
    fn quantum_gives_a_client_consecutive_slots() {
        let q = FairQueue::new(FairQueueConfig {
            max_depth: 16,
            quantum: 2,
            shed_wait_p99_ms: 2_000,
        });
        for i in 0..4 {
            q.try_admit("a", ShedClass::Suite, i).unwrap();
        }
        for i in 0..2 {
            q.try_admit("b", ShedClass::Suite, 10 + i).unwrap();
        }
        let mut order = Vec::new();
        while q.depth() > 0 {
            order.push(q.pop().unwrap().2);
        }
        assert_eq!(order, vec!["a", "a", "b", "b", "a", "a"]);
    }

    #[test]
    fn depth_bound_sheds_everything_and_raw_sheds_at_half() {
        let q = queue(4);
        // Raw admits until depth reaches max/2 = 2.
        assert!(q.try_admit("c", ShedClass::Raw, 0).is_ok());
        assert!(q.try_admit("c", ShedClass::Raw, 1).is_ok());
        let (item, shed) = q.try_admit("c", ShedClass::Raw, 2).unwrap_err();
        assert_eq!(item, 2, "shed hands the item back");
        assert_eq!(shed.reason, ShedReason::Pressure);
        assert!(shed.retry_after_s >= 1);
        // Suite still admits past the raw tier, up to the hard bound.
        assert!(q.try_admit("c", ShedClass::Suite, 3).is_ok());
        assert!(q.try_admit("c", ShedClass::Suite, 4).is_ok());
        let (_, shed) = q.try_admit("c", ShedClass::Suite, 5).unwrap_err();
        assert_eq!(shed.reason, ShedReason::Full);
    }

    #[test]
    fn closed_queue_sheds_then_drains_then_pops_none() {
        let q = queue(8);
        q.try_admit("c", ShedClass::Suite, 1).unwrap();
        q.close();
        assert_eq!(
            q.try_admit("c", ShedClass::Suite, 2).unwrap_err().1.reason,
            ShedReason::Full
        );
        assert_eq!(q.pop().map(|(v, _, _)| v), Some(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_reports_queue_wait_and_feeds_the_window() {
        let q = queue(8);
        q.try_admit("c", ShedClass::Suite, 1).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let (_, wait, _) = q.pop().unwrap();
        assert!(wait >= Duration::from_millis(5));
        assert!(q.recent_wait_p99_us() >= 5_000);
    }

    #[test]
    fn breaker_trips_on_transient_rate_and_probes_half_open() {
        let b = Breaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown_ms: 20,
        });
        assert_eq!(b.admit(), BreakerDecision::Normal);
        // Below min_samples: no trip regardless of the ratio.
        for _ in 0..3 {
            b.report(false, true);
        }
        assert_eq!(b.admit(), BreakerDecision::Normal);
        // Fourth transient sample pushes the ratio over 0.5 → open.
        b.report(false, true);
        assert_eq!(b.state_label(), "open");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.admit(), BreakerDecision::Degrade);
        assert!(b.retry_after_ms() <= 20);
        // After the cooldown exactly one caller becomes the probe.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert_eq!(b.state_label(), "half-open");
        assert_eq!(b.admit(), BreakerDecision::Degrade);
        // Probe fails transiently → re-open (second trip).
        b.report(true, true);
        assert_eq!(b.state_label(), "open");
        assert_eq!(b.trips(), 2);
        // Cooldown again; this probe succeeds → closed, window reset.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), BreakerDecision::Probe);
        b.report(true, false);
        assert_eq!(b.state_label(), "closed");
        assert_eq!(b.admit(), BreakerDecision::Normal);
        // The cleared window means old faults don't count toward a re-trip.
        b.report(false, true);
        b.report(false, true);
        b.report(false, true);
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn non_transient_outcomes_do_not_trip_the_breaker() {
        let b = Breaker::new(BreakerConfig {
            window: 8,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown_ms: 1_000,
        });
        for _ in 0..20 {
            b.report(false, false);
        }
        assert_eq!(b.state_label(), "closed");
        // Deterministic failures are `transient = false` by definition at
        // the call site, so a storm of 422s never opens the breaker.
    }
}
