//! The `mha-serve` compilation service: the batch substrate, long-running.
//!
//! `mha-batch` runs one supervised sweep and exits; this module keeps the
//! same engine resident behind a small hand-rolled HTTP/1.1 server
//! (`std::net::TcpListener`, no dependencies) so kernels compile on demand:
//!
//! * **`POST /v1/compile`** — kernel text + config in, a supervised
//!   pipeline outcome out (flow → csynth → co-simulation → lint for suite
//!   kernels; flow → csynth → lint for raw MLIR bodies, which have no
//!   reference implementation to co-simulate against). With
//!   `Accept: application/x-mha-stream` the response is a chunked stream
//!   of JSON progress events ending in the canonical response document.
//! * **`GET /v1/status`** — uptime, pool occupancy, cache/coalescing
//!   counters, resilience counters, and per-stage latency [`Histogram`]s.
//! * **`GET /v1/healthz`** — liveness probe (`503` once draining).
//! * **`POST /v1/shutdown`** — cooperative drain (see below).
//!
//! # Connection and admission architecture
//!
//! Since PR 8 the server is no longer "workers parked in `accept`":
//!
//! ```text
//!  acceptor ──► conn queue ──► intake threads ──► fair queue ──► workers
//!  (1 thread,   (bounded)      (parse heads,       (DRR per       (compile,
//!   non-block)                  answer warm hits,   client,        journal,
//!                               admit or shed)      bounded)       respond)
//! ```
//!
//! * The **acceptor** owns the (non-blocking) listener, so a drain never
//!   needs to nudge blocked `accept` calls with throwaway connections.
//! * **Intake** threads read request heads incrementally with short read
//!   timeouts, so thousands of idle keep-alive connections do not pin
//!   threads; a connection whose head dribbles in past the header
//!   deadline is answered `408` and closed (slow-loris defense). Intake
//!   answers status/health endpoints and **warm/cache hits inline** —
//!   those never enter the admission queue and can never be shed.
//! * Cold compiles are admitted to a [`FairQueue`]: per-client
//!   deficit-round-robin (client = `X-Mha-Client`, else peer IP) keeps an
//!   aggressive tenant from starving polite ones, and overload sheds with
//!   `429 + Retry-After` — raw-MLIR compiles shed before suite kernels.
//! * **Workers** pop admitted jobs, compile under a [`Breaker`] (circuit
//!   breaker over the fault taxonomy: a high transient-fault rate trips
//!   it open, adaptor-flow requests then degrade to the deterministic C++
//!   fallback exactly like batch's degraded mode, and half-open probes
//!   decide when to close it), then write the response and hand
//!   keep-alive connections back to intake.
//!
//! Connections speak real HTTP/1.1 keep-alive: idle timeout, per-connection
//! request cap, header-read deadline, and write timeouts, all configurable.
//!
//! Three layers keep repeated work from repeating:
//!
//! 1. **Coalescing**: requests are keyed by an FNV-1a digest of their
//!    full identity (source, directives, flow, target, seed, budget); an
//!    identical request arriving while the first is still compiling waits
//!    on the in-flight slot and shares its response (`X-Mha-Served:
//!    coalesced`).
//! 2. **The response cache**: completed `200`/`422` responses are kept
//!    in memory and replayed byte-identically (`X-Mha-Served: cache`);
//!    suite-kernel pipelines additionally share the on-disk stage cache
//!    with `mha-batch`, and raw-MLIR responses persist under a `serve`
//!    stage key in the same cache directory.
//! 3. **The journal**: every cacheable response is appended to a
//!    write-ahead journal (`serve.jsonl`, the batch [`Journal`] with an
//!    `mha-serve` header magic) and flushed before the response is sent,
//!    so a killed server loses only in-flight requests — a restarted
//!    server replays the journal and serves those responses warm
//!    (`X-Mha-Served: warm`).
//!
//! Failures map the supervisor's fault taxonomy onto HTTP statuses:
//! deadline trips are `408`, fuel trips `429`, deterministic faults `422`
//! (with the located diagnostics in the body), transient faults `503`,
//! infra faults and panics `500`. Budget trips keep the stable budget
//! grammar in the `rendered` field, so clients recover them structurally
//! with `pass_core::BudgetError::from_rendered`. Every `429`/`503`
//! carries a `Retry-After` header.
//!
//! The seeded [`ChaosEngine`] reaches into the serve layer itself when
//! `--chaos` is set: `serve/read` (slow read), `serve/worker` (worker
//! stall), `serve/response` (socket reset after journaling — the journal
//! makes the response recoverable on retry), and `serve/compile` (a
//! transient raw-pipeline fault, feeding the breaker). Suite compiles
//! additionally forward the chaos config into the batch engine's own
//! boundary/cache sites. Injection is a pure function of
//! `(seed, key, site, attempt)`, so soaks reproduce.
//!
//! There is no signal handling here (the repo is `unsafe`-free, and
//! catching SIGTERM in pure std is not possible): the per-response journal
//! flush makes an uncooperative kill safe, and `POST /v1/shutdown` is the
//! cooperative drain — workers finish their in-flight requests, journal
//! them, and exit. See OPERATIONS.md for the runbook.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kernels::digest::Hasher64;
use pass_core::json::{self, JsonValue};
use pass_core::report::json_str;
use pass_core::{Budget, Histogram, PipelineReport};
use vitis_sim::Target;

use crate::batch::{
    directives_repr, outcome_to_json, run_supervised, target_repr, BatchOptions, RunOutcome,
};
use crate::cache::{Cache, KeyBuilder, Lookup};
use crate::experiment::Directives;
use crate::flow::{run_flow_on_text, Flow};
use crate::lint::LintReport;
use crate::resilience::{
    Breaker, BreakerConfig, BreakerDecision, FairQueue, FairQueueConfig, ShedClass, ShedReason,
};
use crate::supervisor::{
    ChaosConfig, ChaosEngine, ChaosFault, FaultClass, Journal, JournalError, StageError,
};
use crate::warden::{RawCompile, Warden, WardenConfig};

/// Journal header magic distinguishing serve journals from batch journals.
const JOURNAL_KIND: &str = "mha-serve";

/// Default cap on request bodies (1 MiB) — far above any suite kernel.
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Cap on a request head (request line + headers) before `400`.
const MAX_HEAD: usize = 16 << 10;

/// Per-poll read timeout while waiting for a request head: short enough
/// that intake threads multiplex many idle connections, long enough that
/// an active client completes in one poll.
const POLL_READ_MS: u64 = 15;

/// Acceptor sleep between empty non-blocking `accept` polls.
const ACCEPT_SLEEP_MS: u64 = 5;

/// The `Accept` media type that switches a compile response to chunked
/// stage-by-stage streaming.
pub const STREAM_MEDIA_TYPE: &str = "application/x-mha-stream";

/// Server configuration (the `mha-serve` CLI surface).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads; 0 means "use the machine's available parallelism".
    pub workers: usize,
    /// Artifact cache directory shared with `mha-batch`; `None` disables
    /// both the stage cache and the journal.
    pub cache_dir: Option<PathBuf>,
    /// Replay the serve journal on startup (warm restart). Ignored without
    /// a cache dir.
    pub resume: bool,
    /// Default per-request wall-clock deadline, overridable per request.
    pub deadline_ms: Option<u64>,
    /// Default per-request fuel allowance, overridable per request.
    pub fuel: Option<u64>,
    /// Synthesis target for every request.
    pub target: Target,
    /// Co-simulation input seed for suite kernels.
    pub seed: u64,
    /// Reject request bodies larger than this (HTTP 413).
    pub max_body: usize,
    /// Total body-read timeout per request (`--read-timeout-ms`); a body
    /// still incomplete past it is answered `408`. Setsockopt failures
    /// while arming it are logged and counted, never silently dropped.
    pub read_timeout_ms: u64,
    /// Header-read deadline: a connection whose request head is still
    /// incomplete this long after its first byte is answered `408`
    /// (slow-loris defense).
    pub header_deadline_ms: u64,
    /// Write timeout armed on every accepted connection.
    pub write_timeout_ms: u64,
    /// Honor HTTP/1.1 keep-alive (`--no-keep-alive` disables).
    pub keepalive: bool,
    /// Close keep-alive connections idle longer than this.
    pub keepalive_idle_ms: u64,
    /// Close keep-alive connections after this many requests.
    pub keepalive_max_requests: u32,
    /// Admission-queue policy: depth bound, DRR quantum, shed p99 bound.
    pub queue: FairQueueConfig,
    /// Circuit-breaker policy over the transient-fault rate.
    pub breaker: BreakerConfig,
    /// Seeded fault injection covering the serve layer and (for suite
    /// kernels) the batch engine's own chaos sites.
    pub chaos: Option<ChaosConfig>,
    /// Run compilations in isolated worker processes (`--isolate`): a
    /// worker segfault/abort/OOM becomes a typed `crash` 500 instead of
    /// server death.
    pub isolate: bool,
    /// Warm worker processes to pre-spawn (`--warden-pool`); 0 matches
    /// the compile worker-thread count. Ignored without `isolate`.
    pub warden_pool: usize,
    /// Recycle each worker process after this many requests
    /// (`--max-requests-per-worker`).
    pub max_requests_per_worker: u32,
    /// RSS ceiling per worker process in MiB (`--max-worker-rss-mb`);
    /// exceeding it gets the worker killed and the request a `crash` 500.
    pub max_worker_rss_mb: Option<u64>,
    /// Seeded crash injection at the in-worker `warden` chaos site
    /// (`--warden-chaos`): worker kill, RSS bomb, reply truncation.
    pub warden_chaos: Option<ChaosConfig>,
    /// Bound on the in-memory response cache (`--max-cached-responses`);
    /// least-recently-used entries are evicted past it. 0 disables the
    /// response cache entirely (journal replay still works per restart).
    pub max_cached_responses: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_dir: Some(Cache::default_dir()),
            resume: true,
            deadline_ms: None,
            fuel: None,
            target: Target::default(),
            seed: 2026,
            max_body: DEFAULT_MAX_BODY,
            read_timeout_ms: 10_000,
            header_deadline_ms: 2_000,
            write_timeout_ms: 10_000,
            keepalive: true,
            keepalive_idle_ms: 5_000,
            keepalive_max_requests: 1_000,
            queue: FairQueueConfig::default(),
            breaker: BreakerConfig::default(),
            chaos: None,
            isolate: false,
            warden_pool: 0,
            max_requests_per_worker: 256,
            max_worker_rss_mb: None,
            warden_chaos: None,
            max_cached_responses: 4096,
        }
    }
}

impl ServeConfig {
    /// Worker count after resolving 0 to the machine's parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Intake threads: enough to multiplex connection reads without
    /// competing with the compile pool.
    fn intake_threads(&self) -> usize {
        (self.effective_workers() / 4).clamp(2, 8)
    }

    /// The configuration identity the serve journal is bound to. Budgets
    /// and directives are per-request (and part of each request's digest),
    /// so only the cross-request knobs participate — including chaos,
    /// since injected faults shape journaled outcomes.
    fn config_repr(&self) -> String {
        format!(
            "target={};seed={};chaos={}",
            target_repr(&self.target),
            self.seed,
            self.chaos.map(|c| c.repr()).unwrap_or_else(|| "-".into())
        )
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind(String),
    /// Cache directory unusable.
    Cache(String),
    /// Journal unusable.
    Journal(JournalError),
    /// Worker-process pool could not start (`--isolate`).
    Warden(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::Cache(e) => write!(f, "cache: {e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Warden(e) => write!(f, "worker pool: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a compile response was produced, reported in `X-Mha-Served`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Ran the pipeline for this request.
    Compiled,
    /// Waited on an identical in-flight request and shared its response.
    Coalesced,
    /// Replayed from the in-memory response cache (completed earlier in
    /// this server's lifetime).
    Cache,
    /// Replayed from the journal of a previous server lifetime.
    Warm,
}

impl Served {
    /// Header value.
    pub fn as_str(self) -> &'static str {
        match self {
            Served::Compiled => "compiled",
            Served::Coalesced => "coalesced",
            Served::Cache => "cache",
            Served::Warm => "warm",
        }
    }
}

/// A finished response, replayable byte-for-byte.
#[derive(Clone, Debug)]
struct StoredResponse {
    code: u16,
    body: String,
    /// True when this entry came from journal replay (served as `warm`
    /// rather than `cache`).
    from_journal: bool,
}

/// The bounded in-memory response cache: an LRU over completed cacheable
/// responses. `u64` ticks order recency (bumped on every hit); eviction
/// scans for the minimum tick — O(n), fine at the few-thousand-entry caps
/// this serves. Counters feed `GET /v1/status`.
struct ResponseCache {
    map: HashMap<String, (StoredResponse, u64)>,
    tick: u64,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResponseCache {
    fn new(cap: usize) -> ResponseCache {
        ResponseCache {
            map: HashMap::new(),
            tick: 0,
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, digest: &str) -> Option<StoredResponse> {
        self.tick += 1;
        match self.map.get_mut(digest) {
            Some((r, last)) => {
                *last = self.tick;
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, digest: String, r: StoredResponse) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&digest) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(digest, (r, self.tick));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// An in-flight compilation other requests can coalesce onto.
struct Inflight {
    slot: Mutex<Option<StoredResponse>>,
    done: Condvar,
}

/// Aggregate request counters + per-stage latency histograms.
#[derive(Default)]
struct Metrics {
    /// `POST /v1/compile` requests, by how they were served.
    compiled: u64,
    coalesced: u64,
    cache_hits: u64,
    warm_hits: u64,
    /// All responses, by status code.
    codes: HashMap<u16, u64>,
    /// Compile requests admitted to the fair queue.
    queued: u64,
    /// Compile requests shed at admission, by class.
    shed_raw: u64,
    shed_suite: u64,
    /// Connections refused at accept because the connection queue was full.
    accept_rejects: u64,
    /// Connections answered `408` for dribbling their head past the
    /// deadline (slow-loris).
    header_timeouts: u64,
    /// `setsockopt` (read/write timeout, nonblocking) failures.
    sockopt_failures: u64,
    /// Requests served on a connection that had already served one.
    keepalive_reuses: u64,
    /// Compile responses delivered as chunked progress streams.
    streamed: u64,
    /// Compiles degraded to the C++ fallback because the breaker was open.
    breaker_degraded: u64,
    /// C++-flow compiles answered `503` because the breaker was open
    /// (nothing left to degrade to).
    breaker_rejects: u64,
    /// Serve-layer chaos faults injected.
    chaos_injected: u64,
    /// Compile outcomes classified as worker-process crashes (`--isolate`).
    crashes: u64,
    /// Journal begin/finish appends that failed (disk full, permissions).
    /// The response is still served; the entry just won't replay warm.
    journal_write_failures: u64,
    /// End-to-end compile-request latency.
    request: Histogram,
    /// Time admitted jobs spent in the fair queue.
    queue_wait: Histogram,
    /// Per-stage latencies, recorded from completed pipeline reports.
    flow: Histogram,
    csynth: Histogram,
    cosim: Histogram,
}

impl Metrics {
    fn count_code(&mut self, code: u16) {
        *self.codes.entry(code).or_insert(0) += 1;
    }

    /// Fold a completed run's stage timings in: report pass names are
    /// either bare stage names (`flow`, `csynth`, `cosim` for cached
    /// stages) or stage-prefixed (`flow/lower`); bucket on the prefix.
    fn record_stages(&mut self, report: &PipelineReport) {
        let mut flow_us = 0u64;
        for p in &report.passes {
            let stage = p.pass.split('/').next().unwrap_or("");
            match stage {
                "flow" => flow_us += p.wall_us,
                "csynth" => self.csynth.record(p.wall_us),
                "cosim" => self.cosim.record(p.wall_us),
                _ => flow_us += p.wall_us,
            }
        }
        self.flow.record(flow_us);
    }
}

// ---------------------------------------------------------------------------
// Connections and queues
// ---------------------------------------------------------------------------

/// One client connection, owned by whichever thread is currently driving
/// it (intake while reading, a worker while compiling its request).
struct Conn {
    stream: TcpStream,
    /// Peer IP (no port — the fairness fallback identity).
    peer: String,
    /// Bytes read but not yet consumed (partial heads, pipelined data).
    buf: Vec<u8>,
    /// Responses already written on this connection.
    served: u32,
    /// Start of the current wait (for a first byte / next request).
    idle_since: Instant,
    /// When the current head's first byte arrived (None while idle).
    head_started: Option<Instant>,
    /// The `serve/read` chaos site fired for the current request.
    chaos_read_done: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: SocketAddr) -> Conn {
        Conn {
            stream,
            peer: peer.ip().to_string(),
            buf: Vec::new(),
            served: 0,
            idle_since: Instant::now(),
            head_started: None,
            chaos_read_done: false,
        }
    }

    /// Rearm for the next keep-alive request (pipelined bytes stay in
    /// `buf` and count as an already-started head).
    fn reset_for_next(&mut self) {
        self.served += 1;
        self.idle_since = Instant::now();
        self.head_started = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        self.chaos_read_done = false;
    }
}

enum ConnPop {
    Conn(Box<Conn>),
    Empty,
    Closed,
}

/// The connection queue between acceptor/workers and intake. Closing it
/// (drain) makes pushes drop their connection and pops return [`ConnPop::
/// Closed`] once the backlog is consumed.
struct ConnQueue {
    inner: Mutex<(VecDeque<Box<Conn>>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).0.len()
    }

    fn push(&self, conn: Box<Conn>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.1 {
            return; // draining: drop (closes) the connection
        }
        inner.0.push_back(conn);
        drop(inner);
        self.ready.notify_one();
    }

    fn pop_wait(&self, timeout: Duration) -> ConnPop {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(c) = inner.0.pop_front() {
                return ConnPop::Conn(c);
            }
            if inner.1 {
                return ConnPop::Closed;
            }
            let (guard, result) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
            if result.timed_out() {
                return match inner.0.pop_front() {
                    Some(c) => ConnPop::Conn(c),
                    None if inner.1 => ConnPop::Closed,
                    None => ConnPop::Empty,
                };
            }
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).1 = true;
        self.ready.notify_all();
    }
}

/// A compile request admitted to the fair queue: the connection travels
/// with it, and the worker that pops it answers the client.
struct QueuedJob {
    conn: Box<Conn>,
    req: CompileRequest,
    digest: String,
    /// Client asked for chunked progress streaming.
    stream_mode: bool,
    /// Client asked to keep the connection alive.
    keep: bool,
    /// When the request head finished parsing (end-to-end latency base).
    start: Instant,
}

/// Everything the worker threads share.
struct ServerState {
    config: ServeConfig,
    started: Instant,
    draining: AtomicBool,
    busy: AtomicUsize,
    cache: Option<Cache>,
    journal: Option<Journal>,
    chaos: Option<ChaosEngine>,
    conns: ConnQueue,
    queue: FairQueue<QueuedJob>,
    breaker: Breaker,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    responses: Mutex<ResponseCache>,
    /// Worker-process pool (`--isolate`); `None` compiles in-process.
    warden: Option<Warden>,
    /// Per-digest response-write attempt counters, keying the
    /// `serve/response` chaos site so an injected socket reset clears on
    /// the client's retry (same attempt semantics as the batch sites).
    response_attempts: Mutex<HashMap<String, u32>>,
    metrics: Mutex<Metrics>,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.conns.close();
        self.queue.close();
    }

    /// Count (and log, once per process) a failed setsockopt.
    fn note_sockopt(&self, what: &str, e: &io::Error) {
        static LOGGED: AtomicBool = AtomicBool::new(false);
        let mut m = self.metrics.lock().unwrap();
        m.sockopt_failures += 1;
        drop(m);
        if !LOGGED.swap(true, Ordering::Relaxed) {
            eprintln!("mha-serve: setsockopt {what} failed: {e} (counted in /v1/status)");
        }
    }

    /// Count (and log, once per process) a failed journal append. The
    /// response itself is unaffected — it just won't replay warm after a
    /// restart — but the operator must be able to see the disk is sick.
    fn note_journal_failure(&self, e: &JournalError) {
        static LOGGED: AtomicBool = AtomicBool::new(false);
        self.metrics.lock().unwrap().journal_write_failures += 1;
        if !LOGGED.swap(true, Ordering::Relaxed) {
            eprintln!("mha-serve: journal append failed: {e} (counted in /v1/status)");
        }
    }

    fn roll_chaos(&self, key: &str, site: &str, attempt: u32, menu: &[ChaosFault]) -> bool {
        let Some(engine) = &self.chaos else {
            return false;
        };
        if engine.roll(key, site, attempt, menu).is_some() {
            self.metrics.lock().unwrap().chaos_injected += 1;
            return true;
        }
        false
    }
}

/// A running `mha-serve` instance (also usable in-process, which is how
/// `tests/serve.rs` drives it).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, replay the journal if resuming, and spawn the acceptor,
    /// intake, and worker threads.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(format!("set_nonblocking: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(e.to_string()))?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(Cache::open(dir).map_err(|e| ServeError::Cache(e.to_string()))?),
            None => None,
        };
        let mut responses = ResponseCache::new(config.max_cached_responses);
        let journal = match &config.cache_dir {
            Some(dir) => {
                let path = dir.join("serve.jsonl");
                let repr = config.config_repr();
                if config.resume {
                    match Journal::resume_kind(&path, JOURNAL_KIND, &repr) {
                        Ok((j, outcomes)) => {
                            for (digest, v) in &outcomes {
                                if let Some(r) = stored_from_journal(v) {
                                    responses.insert(digest.clone(), r);
                                }
                            }
                            Some(j)
                        }
                        Err(JournalError::ConfigMismatch { .. }) => {
                            eprintln!(
                                "mha-serve: journal was written under a different \
                                 target/seed/chaos config; starting fresh"
                            );
                            Some(
                                Journal::create_kind(&path, JOURNAL_KIND, &repr)
                                    .map_err(ServeError::Journal)?,
                            )
                        }
                        Err(e) => return Err(ServeError::Journal(e)),
                    }
                } else {
                    Some(
                        Journal::create_kind(&path, JOURNAL_KIND, &repr)
                            .map_err(ServeError::Journal)?,
                    )
                }
            }
            None => None,
        };
        let n_warm = responses.len();
        if n_warm > 0 {
            eprintln!("mha-serve: replayed {n_warm} journaled response(s)");
        }

        let warden = if config.isolate {
            let pool = if config.warden_pool > 0 {
                config.warden_pool
            } else {
                config.effective_workers()
            };
            Some(
                Warden::new(WardenConfig {
                    pool,
                    max_requests_per_worker: config.max_requests_per_worker,
                    max_rss_mb: config.max_worker_rss_mb,
                    chaos: config.warden_chaos,
                    ..WardenConfig::default()
                })
                .map_err(ServeError::Warden)?,
            )
        } else {
            None
        };

        let state = Arc::new(ServerState {
            started: Instant::now(),
            draining: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            cache,
            journal,
            chaos: config.chaos.map(ChaosEngine::new),
            conns: ConnQueue::new(),
            queue: FairQueue::new(config.queue),
            breaker: Breaker::new(config.breaker),
            inflight: Mutex::new(HashMap::new()),
            responses: Mutex::new(responses),
            warden,
            response_attempts: Mutex::new(HashMap::new()),
            metrics: Mutex::new(Metrics::default()),
            config,
        });

        let workers = state.config.effective_workers();
        let intakes = state.config.intake_threads();
        let mut handles = Vec::with_capacity(1 + intakes + workers);
        {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || acceptor_loop(listener, state)));
        }
        for _ in 0..intakes {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || intake_loop(state)));
        }
        for _ in 0..workers {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || worker_loop(state)));
        }
        Ok(Server {
            state,
            addr,
            handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain was requested (via [`Server::stop`] or
    /// `POST /v1/shutdown`).
    pub fn draining(&self) -> bool {
        self.state.draining()
    }

    /// Block until every thread has exited (drain completion).
    pub fn join(mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Request a drain and block until in-flight work is finished and
    /// journaled: the drain flag stops the (non-blocking) acceptor,
    /// closing the queues drains intake and the workers — no loopback
    /// nudge connections required.
    pub fn stop(self) {
        self.state.begin_drain();
        self.join();
    }
}

// MARK: acceptor/intake (appended below)

// ---------------------------------------------------------------------------
// Acceptor and intake
// ---------------------------------------------------------------------------

fn acceptor_loop(listener: TcpListener, state: Arc<ServerState>) {
    // Refuse new connections once the backlog would dwarf the admission
    // queue; the fair queue's own shed policy handles finer-grained load.
    let max_backlog = state.config.queue.max_depth * 2 + 64;
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if let Err(e) = stream.set_nonblocking(false) {
                    state.note_sockopt("nonblocking", &e);
                }
                // Nagle + delayed ACK costs ~40ms per response on loopback;
                // responses and stream chunks are whole writes anyway.
                if let Err(e) = stream.set_nodelay(true) {
                    state.note_sockopt("nodelay", &e);
                }
                if let Err(e) = stream
                    .set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)))
                {
                    state.note_sockopt("write timeout", &e);
                }
                let mut conn = Box::new(Conn::new(stream, peer));
                if state.conns.len() >= max_backlog {
                    let mut m = state.metrics.lock().unwrap();
                    m.accept_rejects += 1;
                    m.count_code(429);
                    drop(m);
                    let wire = Wire {
                        code: 429,
                        body: error_body(429, "connection backlog full"),
                        served: None,
                        retry_after_s: Some(1),
                    };
                    let _ = write_wire(&mut conn, &wire, false, &state.config);
                } else {
                    state.conns.push(conn);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(ACCEPT_SLEEP_MS));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(ACCEPT_SLEEP_MS)),
        }
    }
}

/// One step of driving a connection's read side.
enum PollOutcome {
    /// A full request (head + body) was read.
    Ready(HttpRequest),
    /// No complete head yet; the connection goes back in the queue
    /// unless a deadline has passed.
    Pending,
    /// Peer closed (or errored); drop silently.
    Gone,
    /// Malformed or over-limit input: answer with this status and close.
    Bad(u16, String),
}

fn intake_loop(state: Arc<ServerState>) {
    loop {
        let mut conn = match state.conns.pop_wait(Duration::from_millis(50)) {
            ConnPop::Conn(c) => c,
            ConnPop::Empty => continue,
            ConnPop::Closed => return,
        };
        match poll_conn(&state, &mut conn) {
            PollOutcome::Ready(req) => dispatch(&state, conn, req),
            PollOutcome::Gone => {}
            PollOutcome::Bad(code, detail) => {
                let mut m = state.metrics.lock().unwrap();
                m.count_code(code);
                if code == 408 && conn.head_started.is_some() {
                    m.header_timeouts += 1;
                }
                drop(m);
                let wire = Wire {
                    code,
                    body: error_body(code, &detail),
                    served: None,
                    retry_after_s: None,
                };
                // Connection state is unknown after malformed input: close.
                let _ = write_wire(&mut conn, &wire, false, &state.config);
            }
            PollOutcome::Pending => {
                let cfg = &state.config;
                if let Some(started) = conn.head_started {
                    // A head is dribbling in: the slow-loris deadline.
                    if started.elapsed() >= Duration::from_millis(cfg.header_deadline_ms) {
                        let mut m = state.metrics.lock().unwrap();
                        m.count_code(408);
                        m.header_timeouts += 1;
                        drop(m);
                        let wire = Wire {
                            code: 408,
                            body: error_body(408, "header read deadline exceeded"),
                            served: None,
                            retry_after_s: None,
                        };
                        let _ = write_wire(&mut conn, &wire, false, cfg);
                        continue;
                    }
                } else if conn.idle_since.elapsed() >= Duration::from_millis(cfg.keepalive_idle_ms)
                {
                    // Idle reap (both fresh-and-silent and between-requests).
                    continue;
                }
                state.conns.push(conn);
            }
        }
    }
}

/// Read whatever the connection has for us right now. Blocks at most
/// ~[`POLL_READ_MS`] while the head is incomplete; once a head is in,
/// blocks up to the body-read timeout for the rest of the request.
fn poll_conn(state: &ServerState, conn: &mut Conn) -> PollOutcome {
    // Chaos: a slow peer/read path, once per request.
    if !conn.chaos_read_done {
        conn.chaos_read_done = true;
        let peer = conn.peer.clone();
        if state.roll_chaos(&peer, "serve/read", conn.served, &[ChaosFault::SlowRead]) {
            std::thread::sleep(Duration::from_millis(40));
        }
    }
    if let Err(e) = conn
        .stream
        .set_read_timeout(Some(Duration::from_millis(POLL_READ_MS)))
    {
        state.note_sockopt("read timeout", &e);
    }
    let mut tmp = [0u8; 4096];
    loop {
        if let Some(head_end) = find_head_end(&conn.buf) {
            return read_rest(state, conn, head_end);
        }
        if conn.buf.len() > MAX_HEAD {
            return PollOutcome::Bad(400, "request head exceeds 16 KiB".into());
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => return PollOutcome::Gone,
            Ok(n) => {
                if conn.head_started.is_none() {
                    conn.head_started = Some(Instant::now());
                }
                conn.buf.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return PollOutcome::Pending;
            }
            Err(_) => return PollOutcome::Gone,
        }
    }
}

/// Head complete: parse it and pull in the body under the configured
/// read timeout.
fn read_rest(state: &ServerState, conn: &mut Conn, head_end: usize) -> PollOutcome {
    let head = match parse_head(&conn.buf[..head_end]) {
        Ok(h) => h,
        Err((code, detail)) => return PollOutcome::Bad(code, detail),
    };
    if head.content_length > state.config.max_body {
        return PollOutcome::Bad(
            413,
            format!(
                "body of {} bytes exceeds the {}-byte cap",
                head.content_length, state.config.max_body
            ),
        );
    }
    let total = head_end + head.content_length;
    let deadline = Instant::now() + Duration::from_millis(state.config.read_timeout_ms);
    let mut tmp = [0u8; 4096];
    while conn.buf.len() < total {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            return PollOutcome::Bad(408, "body read deadline exceeded".into());
        };
        let slice = remaining
            .min(Duration::from_millis(200))
            .max(Duration::from_millis(1));
        if let Err(e) = conn.stream.set_read_timeout(Some(slice)) {
            state.note_sockopt("read timeout", &e);
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => return PollOutcome::Bad(400, "short body".into()),
            Ok(n) => conn.buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return PollOutcome::Bad(400, format!("body read failed: {e}")),
        }
    }
    let body = match String::from_utf8(conn.buf[head_end..total].to_vec()) {
        Ok(s) => s,
        Err(_) => return PollOutcome::Bad(400, "body is not UTF-8".into()),
    };
    // Keep pipelined bytes beyond this request.
    conn.buf.drain(..total);
    PollOutcome::Ready(HttpRequest {
        method: head.method,
        path: head.path,
        body,
        client: head.client,
        keep_alive: head.keep_alive,
        stream_mode: head.stream_mode,
    })
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// A parsed HTTP/1.1 request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    /// `X-Mha-Client` fairness identity, if sent.
    client: Option<String>,
    /// The request allows connection reuse (HTTP/1.1 default).
    keep_alive: bool,
    /// `Accept: application/x-mha-stream` progress streaming.
    stream_mode: bool,
}

struct ParsedHead {
    method: String,
    path: String,
    content_length: usize,
    client: Option<String>,
    keep_alive: bool,
    stream_mode: bool,
}

fn parse_head(head: &[u8]) -> Result<ParsedHead, (u16, String)> {
    let text = std::str::from_utf8(head).map_err(|_| (400, "head is not UTF-8".to_string()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || path.is_empty() {
        return Err((400, "empty request line".into()));
    }
    let mut content_length = 0usize;
    let mut client = None;
    let mut keep_alive = version != "HTTP/1.0";
    let mut stream_mode = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| (400, "unparsable Content-Length".to_string()))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("x-mha-client") {
            if !value.is_empty() {
                client = Some(value.chars().take(64).collect());
            }
        } else if name.eq_ignore_ascii_case("accept") && value.contains(STREAM_MEDIA_TYPE) {
            stream_mode = true;
        }
    }
    Ok(ParsedHead {
        method,
        path,
        content_length,
        client,
        keep_alive,
        stream_mode,
    })
}

// ---------------------------------------------------------------------------
// Response writing (plain and streamed)
// ---------------------------------------------------------------------------

fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// A response about to hit the wire.
struct Wire {
    code: u16,
    body: String,
    served: Option<Served>,
    /// Explicit back-off hint; every `429`/`503` gets `Retry-After`
    /// regardless (defaulting to 1 s), so clients can always distinguish
    /// "come back later" from a hard failure.
    retry_after_s: Option<u64>,
}

fn connection_headers(keep: bool, conn_served: u32, cfg: &ServeConfig) -> String {
    if keep {
        let remaining = cfg.keepalive_max_requests.saturating_sub(conn_served + 1);
        format!(
            "Connection: keep-alive\r\nKeep-Alive: timeout={}, max={}\r\n",
            cfg.keepalive_idle_ms.div_ceil(1000),
            remaining
        )
    } else {
        "Connection: close\r\n".to_string()
    }
}

fn retry_after_header(w: &Wire) -> String {
    if w.code == 429 || w.code == 503 {
        format!("Retry-After: {}\r\n", w.retry_after_s.unwrap_or(1))
    } else {
        String::new()
    }
}

fn write_wire(conn: &mut Conn, w: &Wire, keep: bool, cfg: &ServeConfig) -> io::Result<()> {
    let served_header = match w.served {
        Some(s) => format!("X-Mha-Served: {}\r\n", s.as_str()),
        None => String::new(),
    };
    // One write per response: head and body split across two segments
    // interacts badly with Nagle/delayed-ACK on keep-alive connections.
    let msg = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}{}{}\r\n{}",
        w.code,
        reason(w.code),
        w.body.len(),
        served_header,
        retry_after_header(w),
        connection_headers(keep, conn.served, cfg),
        w.body,
    );
    conn.stream.write_all(msg.as_bytes())?;
    conn.stream.flush()
}

/// Progress-stream bookkeeping for one response.
#[derive(Default)]
struct StreamSt {
    begun: bool,
    dead: bool,
}

/// Start a chunked `application/x-mha-stream` response. The HTTP status
/// is always 200 (the real outcome code rides in the final `done` event,
/// because it is not known when streaming starts).
fn stream_begin(conn: &mut Conn, st: &mut StreamSt, digest: &str, keep: bool, cfg: &ServeConfig) {
    if st.begun || st.dead {
        return;
    }
    st.begun = true;
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {STREAM_MEDIA_TYPE}\r\nTransfer-Encoding: chunked\r\n{}\r\n",
        connection_headers(keep, conn.served, cfg),
    );
    if conn.stream.write_all(head.as_bytes()).is_err() {
        st.dead = true;
        return;
    }
    stream_event(
        conn,
        st,
        &format!("{{\"event\":\"start\",\"digest\":{}}}", json_str(digest)),
    );
}

/// Emit one JSON-line event as a chunk. Write failures mark the stream
/// dead but never abort the compile — the canonical result still has to
/// be journaled for retries.
fn stream_event(conn: &mut Conn, st: &mut StreamSt, payload: &str) {
    if !st.begun || st.dead {
        return;
    }
    let line = format!("{payload}\n");
    let chunk = format!("{:x}\r\n{line}\r\n", line.len());
    if conn.stream.write_all(chunk.as_bytes()).is_err() || conn.stream.flush().is_err() {
        st.dead = true;
    }
}

/// Final `done` event (embedding the canonical response document and the
/// real status code) plus the terminating chunk. Returns false if the
/// stream died along the way.
fn stream_finish(conn: &mut Conn, st: &mut StreamSt, w: &Wire) -> bool {
    let served = w
        .served
        .map(|s| format!(",\"served\":{}", json_str(s.as_str())))
        .unwrap_or_default();
    let retry = w
        .retry_after_s
        .map(|s| format!(",\"retry_after_s\":{s}"))
        .unwrap_or_default();
    stream_event(
        conn,
        st,
        &format!(
            "{{\"event\":\"done\",\"code\":{}{served}{retry},\"body\":{}}}",
            w.code, w.body
        ),
    );
    if st.dead {
        return false;
    }
    if conn.stream.write_all(b"0\r\n\r\n").is_err() || conn.stream.flush().is_err() {
        st.dead = true;
    }
    !st.dead
}

fn error_body(code: u16, detail: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"code\":{code},\"error\":{}}}",
        json_str(detail)
    )
}

// MARK: dispatch/workers (appended below)

// ---------------------------------------------------------------------------
// Dispatch (intake side)
// ---------------------------------------------------------------------------

/// Whether the connection may be kept alive after the next response.
fn keep_ok(state: &ServerState, requested: bool, conn_served: u32) -> bool {
    state.config.keepalive
        && requested
        && !state.draining()
        && conn_served + 1 < state.config.keepalive_max_requests
}

/// Write `wire`, then either requeue the connection for its next request
/// or let it drop (which closes it).
fn finish(state: &ServerState, mut conn: Box<Conn>, wire: &Wire, keep_wanted: bool) {
    let keep = keep_ok(state, keep_wanted, conn.served);
    if write_wire(&mut conn, wire, keep, &state.config).is_ok() && keep {
        conn.reset_for_next();
        state.conns.push(conn);
    }
}

fn dispatch(state: &Arc<ServerState>, conn: Box<Conn>, req: HttpRequest) {
    if conn.served > 0 {
        state.metrics.lock().unwrap().keepalive_reuses += 1;
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/compile") => dispatch_compile(state, conn, req),
        ("GET", "/v1/status") => {
            let body = status_body(state);
            state.metrics.lock().unwrap().count_code(200);
            let wire = Wire {
                code: 200,
                body,
                served: None,
                retry_after_s: None,
            };
            finish(state, conn, &wire, req.keep_alive);
        }
        ("GET", "/v1/healthz") => {
            let (code, body) = if state.draining() {
                (503, "{\"ok\":false,\"draining\":true}".to_string())
            } else {
                (200, "{\"ok\":true}".to_string())
            };
            state.metrics.lock().unwrap().count_code(code);
            let wire = Wire {
                code,
                body,
                served: None,
                retry_after_s: Some(1),
            };
            finish(state, conn, &wire, req.keep_alive);
        }
        ("POST", "/v1/shutdown") => {
            state.begin_drain();
            state.metrics.lock().unwrap().count_code(200);
            let wire = Wire {
                code: 200,
                body: "{\"draining\":true}".to_string(),
                served: None,
                retry_after_s: None,
            };
            finish(state, conn, &wire, false);
        }
        ("GET", _) | ("POST", _) => {
            state.metrics.lock().unwrap().count_code(404);
            let wire = Wire {
                code: 404,
                body: error_body(404, "no such endpoint"),
                served: None,
                retry_after_s: None,
            };
            finish(state, conn, &wire, req.keep_alive);
        }
        _ => {
            state.metrics.lock().unwrap().count_code(405);
            let wire = Wire {
                code: 405,
                body: error_body(405, "use GET or POST"),
                served: None,
                retry_after_s: None,
            };
            finish(state, conn, &wire, req.keep_alive);
        }
    }
}

/// `Retry-After` hint for replayed/shared responses.
fn retry_for(code: u16) -> Option<u64> {
    if code == 429 || code == 503 {
        Some(1)
    } else {
        None
    }
}

fn record_compile_metrics(state: &ServerState, wire: &Wire, start: Instant, streamed: bool) {
    let mut m = state.metrics.lock().unwrap();
    m.request.record(start.elapsed().as_micros() as u64);
    m.count_code(wire.code);
    if streamed {
        m.streamed += 1;
    }
    match wire.served {
        Some(Served::Compiled) => m.compiled += 1,
        Some(Served::Coalesced) => m.coalesced += 1,
        Some(Served::Cache) => m.cache_hits += 1,
        Some(Served::Warm) => m.warm_hits += 1,
        None => {}
    }
}

/// Deliver a compile response from the intake side (warm/cache hits and
/// sheds — never subject to response chaos, mirroring "warm hits are
/// never shed").
fn deliver_inline(
    state: &ServerState,
    mut conn: Box<Conn>,
    wire: &Wire,
    keep_wanted: bool,
    stream_mode: bool,
    digest: &str,
) {
    let keep = keep_ok(state, keep_wanted, conn.served);
    let ok = if stream_mode {
        let mut st = StreamSt::default();
        stream_begin(&mut conn, &mut st, digest, keep, &state.config);
        stream_finish(&mut conn, &mut st, wire)
    } else {
        write_wire(&mut conn, wire, keep, &state.config).is_ok()
    };
    if ok && keep {
        conn.reset_for_next();
        state.conns.push(conn);
    }
}

fn dispatch_compile(state: &Arc<ServerState>, conn: Box<Conn>, req: HttpRequest) {
    let start = Instant::now();
    if state.draining() {
        state.metrics.lock().unwrap().count_code(503);
        let wire = Wire {
            code: 503,
            body: error_body(503, "draining; retry against the restarted instance"),
            served: None,
            retry_after_s: Some(1),
        };
        finish(state, conn, &wire, false);
        return;
    }
    let creq = match CompileRequest::parse(&req.body) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.lock().unwrap().count_code(400);
            let wire = Wire {
                code: 400,
                body: error_body(400, &e),
                served: None,
                retry_after_s: None,
            };
            finish(state, conn, &wire, req.keep_alive);
            return;
        }
    };
    let digest = creq.digest(&state.config);

    // Warm/cache fast path: answered inline, never queued, never shed.
    let hit = state.responses.lock().unwrap().get(&digest);
    if let Some(r) = hit {
        let served = if r.from_journal {
            Served::Warm
        } else {
            Served::Cache
        };
        let wire = Wire {
            retry_after_s: retry_for(r.code),
            code: r.code,
            body: r.body,
            served: Some(served),
        };
        record_compile_metrics(state, &wire, start, req.stream_mode);
        deliver_inline(state, conn, &wire, req.keep_alive, req.stream_mode, &digest);
        return;
    }

    // Cold compile: admit under the fairness/shedding policy.
    let client = req.client.clone().unwrap_or_else(|| conn.peer.clone());
    let class = if creq.kernel.is_some() {
        ShedClass::Suite
    } else {
        ShedClass::Raw
    };
    let job = QueuedJob {
        conn,
        req: creq,
        digest,
        stream_mode: req.stream_mode,
        keep: req.keep_alive,
        start,
    };
    match state.queue.try_admit(&client, class, job) {
        Ok(_) => state.metrics.lock().unwrap().queued += 1,
        Err((job, shed)) => {
            let mut m = state.metrics.lock().unwrap();
            match class {
                ShedClass::Raw => m.shed_raw += 1,
                ShedClass::Suite => m.shed_suite += 1,
            }
            m.count_code(429);
            m.request.record(start.elapsed().as_micros() as u64);
            drop(m);
            let detail = match shed.reason {
                ShedReason::Full => "admission queue full; request shed",
                ShedReason::Pressure => "admission queue under pressure; request shed",
            };
            let wire = Wire {
                code: 429,
                body: error_body(429, detail),
                served: None,
                retry_after_s: Some(shed.retry_after_s),
            };
            finish(state, job.conn, &wire, job.keep);
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(state: Arc<ServerState>) {
    while let Some((job, wait, _client)) = state.queue.pop() {
        state.busy.fetch_add(1, Ordering::SeqCst);
        state
            .metrics
            .lock()
            .unwrap()
            .queue_wait
            .record(wait.as_micros() as u64);
        process_job(&state, job);
        state.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Deliver a worker-produced compile response. The `serve/response` chaos
/// site lives here: an injected socket reset drops the connection *after*
/// the response was journaled, so nothing cacheable is ever lost — the
/// client's retry replays it warm. The per-digest attempt counter lets
/// the fault clear on retry, like every transient chaos site.
fn respond_job(
    state: &ServerState,
    mut conn: Box<Conn>,
    wire: &Wire,
    keep_wanted: bool,
    stream_mode: bool,
    digest: &str,
    mut st: StreamSt,
) {
    let attempt = {
        let mut map = state.response_attempts.lock().unwrap();
        let a = map.entry(digest.to_string()).or_insert(0);
        let cur = *a;
        *a += 1;
        cur
    };
    // Only the first write attempt per digest is eligible for a reset, so
    // a client retry always recovers — even at injection rate 1.0.
    if attempt == 0
        && state.roll_chaos(
            digest,
            "serve/response",
            attempt,
            &[ChaosFault::SocketReset],
        )
    {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    let keep = keep_ok(state, keep_wanted, conn.served);
    let ok = if stream_mode {
        stream_begin(&mut conn, &mut st, digest, keep, &state.config);
        stream_finish(&mut conn, &mut st, wire)
    } else {
        write_wire(&mut conn, wire, keep, &state.config).is_ok()
    };
    if ok && keep {
        conn.reset_for_next();
        state.conns.push(conn);
    }
}

fn process_job(state: &Arc<ServerState>, job: QueuedJob) {
    let QueuedJob {
        mut conn,
        req,
        digest,
        stream_mode,
        keep,
        start,
    } = job;

    // Chaos: stall this worker before it starts (queue pressure builds).
    if state.roll_chaos(&digest, "serve/worker", 0, &[ChaosFault::WorkerStall]) {
        std::thread::sleep(Duration::from_millis(150));
    }

    // A duplicate may have completed while this job sat in the queue.
    let hit = state.responses.lock().unwrap().get(&digest);
    if let Some(r) = hit {
        let served = if r.from_journal {
            Served::Warm
        } else {
            Served::Cache
        };
        let wire = Wire {
            retry_after_s: retry_for(r.code),
            code: r.code,
            body: r.body,
            served: Some(served),
        };
        record_compile_metrics(state, &wire, start, stream_mode);
        respond_job(
            state,
            conn,
            &wire,
            keep,
            stream_mode,
            &digest,
            StreamSt::default(),
        );
        return;
    }

    // Coalesce onto an identical in-flight request, or claim the slot.
    let inflight = {
        let mut map = state.inflight.lock().unwrap();
        match map.get(&digest) {
            Some(found) => Some(Arc::clone(found)),
            None => {
                map.insert(
                    digest.clone(),
                    Arc::new(Inflight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    }),
                );
                None
            }
        }
    };
    if let Some(inflight) = inflight {
        let mut slot = inflight.slot.lock().unwrap();
        while slot.is_none() {
            slot = inflight.done.wait(slot).unwrap();
        }
        let r = slot.as_ref().unwrap().clone();
        drop(slot);
        let wire = Wire {
            retry_after_s: retry_for(r.code),
            code: r.code,
            body: r.body,
            served: Some(Served::Coalesced),
        };
        record_compile_metrics(state, &wire, start, stream_mode);
        respond_job(
            state,
            conn,
            &wire,
            keep,
            stream_mode,
            &digest,
            StreamSt::default(),
        );
        return;
    }

    // We own the compilation: breaker decision, journal, compile, publish.
    let decision = state.breaker.admit();
    let degrade = decision == BreakerDecision::Degrade;
    let mut st = StreamSt::default();
    if stream_mode {
        // The stream head goes out before compiling; keep-alive is
        // advertised optimistically and re-checked at delivery.
        let keep_adv = keep_ok(state, keep, conn.served);
        stream_begin(&mut conn, &mut st, &digest, keep_adv, &state.config);
    }
    let result = if degrade && req.flow == Flow::Cpp {
        // Already on the deterministic path: nothing to degrade to.
        state.metrics.lock().unwrap().breaker_rejects += 1;
        let retry_s = state.breaker.retry_after_ms().div_ceil(1000).max(1);
        CompileResult {
            code: 503,
            body: error_body(503, "circuit breaker open; retry after cooldown"),
            transient: false,
            retry_after_s: Some(retry_s),
        }
    } else {
        if degrade {
            state.metrics.lock().unwrap().breaker_degraded += 1;
        } else if let Some(j) = &state.journal {
            if let Err(e) = j.begin(&digest) {
                state.note_journal_failure(&e);
            }
        }
        let mut r = compile_locked(state, &req, &digest, degrade, &mut |stage| {
            stream_event(
                &mut conn,
                &mut st,
                &format!("{{\"event\":\"stage\",\"stage\":{}}}", json_str(stage)),
            );
        });
        r.retry_after_s = retry_for(r.code);
        r
    };
    if decision != BreakerDecision::Degrade {
        state
            .breaker
            .report(decision == BreakerDecision::Probe, result.transient);
    }
    if !degrade && result.code == 200 {
        state.note_outcome(&result.body);
    }
    let stored = StoredResponse {
        code: result.code,
        body: result.body.clone(),
        from_journal: false,
    };
    // Breaker-degraded (and breaker-rejected) responses are not canonical
    // for the digest — they depend on breaker state, not request identity
    // — so they are never cached or journaled.
    if !degrade && cacheable(result.code) {
        if let Some(j) = &state.journal {
            if let Err(e) = j.finish(&digest, &stored_to_journal(&stored)) {
                state.note_journal_failure(&e);
            }
        }
        state
            .responses
            .lock()
            .unwrap()
            .insert(digest.clone(), stored.clone());
    }
    // Publish to coalesced waiters before releasing the in-flight slot.
    let inflight = state.inflight.lock().unwrap().remove(&digest);
    if let Some(inflight) = inflight {
        *inflight.slot.lock().unwrap() = Some(stored);
        inflight.done.notify_all();
    }
    let wire = Wire {
        code: result.code,
        body: result.body,
        served: Some(Served::Compiled),
        retry_after_s: result.retry_after_s,
    };
    record_compile_metrics(state, &wire, start, stream_mode);
    respond_job(state, conn, &wire, keep, stream_mode, &digest, st);
}

// MARK: status/compile endpoint (appended below)

fn status_body(state: &ServerState) -> String {
    let warden_json = state
        .warden
        .as_ref()
        .map(|w| {
            let s = w.stats();
            format!(
                "{{\"pool_idle\":{},\"spawned\":{},\"recycled\":{},\"executed\":{},\
                 \"crashes\":{},\"deadline_kills\":{},\"rss_kills\":{}}}",
                s.pool_idle,
                s.spawned,
                s.recycled,
                s.executed,
                s.crashes,
                s.deadline_kills,
                s.rss_kills
            )
        })
        .unwrap_or_else(|| "null".into());
    let response_cache_json = {
        let c = state.responses.lock().unwrap();
        format!(
            "{{\"size\":{},\"cap\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            c.len(),
            c.cap,
            c.hits,
            c.misses,
            c.evictions
        )
    };
    let m = state.metrics.lock().unwrap();
    let mut codes: Vec<(u16, u64)> = m.codes.iter().map(|(k, v)| (*k, *v)).collect();
    codes.sort_unstable();
    let codes_json = codes
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let total: u64 = m.compiled + m.coalesced + m.cache_hits + m.warm_hits;
    format!(
        "{{\"service\":\"mha-serve\",\"uptime_ms\":{},\"workers\":{},\"busy\":{},\"draining\":{},\
         \"journal\":{},\
         \"requests\":{{\"compile_total\":{total},\"compiled\":{},\"coalesced\":{},\
         \"cache_hits\":{},\"warm_hits\":{},\"codes\":{{{codes_json}}}}},\
         \"resilience\":{{\"queue_depth\":{},\"queued\":{},\
         \"shed\":{{\"raw\":{},\"suite\":{},\"accept\":{}}},\
         \"header_timeouts\":{},\"sockopt_failures\":{},\"keepalive_reuses\":{},\
         \"streamed\":{},\"chaos_injected\":{},\
         \"crashes\":{},\"journal_write_failures\":{},\
         \"breaker\":{{\"state\":{},\"trips\":{},\"degraded\":{},\"rejects\":{}}}}},\
         \"warden\":{warden_json},\"response_cache\":{response_cache_json},\
         \"latency\":[{},{},{},{},{}]}}",
        state.started.elapsed().as_millis(),
        state.config.effective_workers(),
        state.busy.load(Ordering::SeqCst),
        state.draining(),
        state
            .journal
            .as_ref()
            .map(|j| json_str(&j.path().display().to_string()))
            .unwrap_or_else(|| "null".into()),
        m.compiled,
        m.coalesced,
        m.cache_hits,
        m.warm_hits,
        state.queue.depth(),
        m.queued,
        m.shed_raw,
        m.shed_suite,
        m.accept_rejects,
        m.header_timeouts,
        m.sockopt_failures,
        m.keepalive_reuses,
        m.streamed,
        m.chaos_injected,
        m.crashes,
        m.journal_write_failures,
        json_str(state.breaker.state_label()),
        state.breaker.trips(),
        m.breaker_degraded,
        m.breaker_rejects,
        m.request.to_json("request"),
        m.queue_wait.to_json("queue"),
        m.flow.to_json("flow"),
        m.csynth.to_json("csynth"),
        m.cosim.to_json("cosim"),
    )
}

// ---------------------------------------------------------------------------
// The compile endpoint
// ---------------------------------------------------------------------------

/// A parsed `POST /v1/compile` body.
struct CompileRequest {
    /// Suite kernel name (`"kernel"` field) — mutually exclusive with raw
    /// MLIR text (`"mlir"`).
    kernel: Option<String>,
    /// Raw MLIR module text.
    mlir: Option<String>,
    /// Module name for raw MLIR (defaults to `"kernel"`).
    name: String,
    flow: Flow,
    directives: Directives,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
}

impl CompileRequest {
    fn parse(body: &str) -> Result<CompileRequest, String> {
        let v = json::parse(body).map_err(|e| format!("request is not JSON: {e}"))?;
        let str_field = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let num_field = |k: &str| v.get(k).and_then(|x| x.as_u64());
        let kernel = str_field("kernel");
        let mlir = str_field("mlir");
        match (&kernel, &mlir) {
            (None, None) => return Err("need either 'kernel' (suite name) or 'mlir' (text)".into()),
            (Some(_), Some(_)) => return Err("'kernel' and 'mlir' are mutually exclusive".into()),
            _ => {}
        }
        let flow = match str_field("flow").as_deref() {
            None | Some("adaptor") => Flow::Adaptor,
            Some("cpp") | Some("hls-c++") => Flow::Cpp,
            Some(other) => return Err(format!("unknown flow '{other}' (adaptor|cpp)")),
        };
        // `ii: 0` disables pipelining; absent means the batch default II=1.
        let directives = Directives {
            pipeline_ii: match num_field("ii") {
                None => Some(1),
                Some(0) => None,
                Some(ii) => Some(ii as u32),
            },
            unroll_factor: num_field("unroll").map(|x| x as u32),
            partition_factor: num_field("partition").map(|x| x as u32),
            flatten: v.get("flatten").and_then(|x| x.as_bool()).unwrap_or(false),
        };
        let name = str_field("name")
            .or_else(|| kernel.clone())
            .unwrap_or_else(|| "kernel".into());
        Ok(CompileRequest {
            kernel,
            mlir,
            name,
            flow,
            directives,
            deadline_ms: num_field("deadline_ms"),
            fuel: num_field("fuel"),
        })
    }

    /// The request's full identity, as the coalescing/cache/journal key.
    fn digest(&self, config: &ServeConfig) -> String {
        let mut h = Hasher64::new();
        h.field_str("mha-serve/v1");
        if let Some(k) = &self.kernel {
            h.field_str("kernel").field_str(k);
        } else if let Some(m) = &self.mlir {
            h.field_str("mlir").field_str(m);
        }
        h.field_str(&self.name);
        h.field_str(&directives_repr(&self.directives, self.flow));
        h.field_str(&config.config_repr());
        h.field_str(&format!(
            "deadline={:?};fuel={:?}",
            self.effective_deadline(config),
            self.effective_fuel(config)
        ));
        h.finish_hex()
    }

    fn effective_deadline(&self, config: &ServeConfig) -> Option<u64> {
        self.deadline_ms.or(config.deadline_ms)
    }

    fn effective_fuel(&self, config: &ServeConfig) -> Option<u64> {
        self.fuel.or(config.fuel)
    }

    fn budget(&self, config: &ServeConfig) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.effective_deadline(config) {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(fuel) = self.effective_fuel(config) {
            b = b.with_fuel(fuel);
        }
        b
    }
}

/// HTTP status for a pipeline outcome: the supervisor's taxonomy on the
/// wire. Budget deadline → 408, fuel → 429, deterministic → 422,
/// transient → 503, infra/panic/crash → 500.
pub fn outcome_status(o: &RunOutcome) -> u16 {
    match o {
        RunOutcome::Completed(_) | RunOutcome::Degraded { .. } => 200,
        RunOutcome::Failed(StageError::BudgetExceeded { kind, .. }) => match kind {
            pass_core::BudgetKind::Deadline => 408,
            pass_core::BudgetKind::Fuel => 429,
        },
        RunOutcome::Failed(StageError::Fault { class, .. }) => match class {
            FaultClass::Deterministic => 422,
            FaultClass::Transient => 503,
            FaultClass::Infra => 500,
        },
        RunOutcome::Failed(StageError::Crash { .. }) => 500,
        RunOutcome::Panicked { .. } => 500,
    }
}

/// Response codes that are deterministic functions of the request and
/// therefore safe to cache and journal. Budget trips (408/429) depend on
/// wall clock and pool contention; transient/infra failures may clear.
fn cacheable(code: u16) -> bool {
    code == 200 || code == 422
}

/// Serialize a stored response as a journal `done` payload. The body is
/// embedded as a JSON *string*, so replay reproduces it byte-for-byte.
fn stored_to_journal(r: &StoredResponse) -> String {
    format!("{{\"code\":{},\"body\":{}}}", r.code, json_str(&r.body))
}

fn stored_from_journal(v: &JsonValue) -> Option<StoredResponse> {
    Some(StoredResponse {
        code: v.get("code")?.as_u64()? as u16,
        body: v.get("body")?.as_str()?.to_string(),
        from_journal: true,
    })
}

/// The worker-side result of running one compile.
struct CompileResult {
    code: u16,
    body: String,
    /// The outcome was a transient fault (feeds the breaker).
    transient: bool,
    retry_after_s: Option<u64>,
}

/// Run the request's pipeline and produce the response document:
///
/// ```json
/// {"kernel": "...", "digest": "...", "flow": "adaptor",
///  "outcome": { "status": "ok", ... },         // batch outcome schema
///  "rendered": "...",                          // failures only
///  "lint": { ... } | null,
///  "warnings": ["..."]}
/// ```
///
/// With `degrade` set (breaker open), adaptor requests run the
/// deterministic C++ fallback instead; the completed outcome is wrapped
/// as `Degraded` (exactly like batch's degraded mode) and the body gains
/// a `"breaker":"open"` marker.
fn compile_locked(
    state: &ServerState,
    req: &CompileRequest,
    digest: &str,
    degrade: bool,
    progress: &mut dyn FnMut(&str),
) -> CompileResult {
    let flow = if degrade { Flow::Cpp } else { req.flow };
    let (outcome, warnings) = match &req.kernel {
        Some(name) => compile_suite(state, req, name, flow, degrade, progress),
        None => compile_raw(state, req, digest, flow, degrade, progress),
    };
    let outcome = if degrade {
        match outcome {
            RunOutcome::Completed(a) => RunOutcome::Degraded {
                artifacts: a,
                reason: "circuit breaker open: adaptor flow degraded to the C++ fallback".into(),
            },
            other => other,
        }
    } else {
        outcome
    };
    let code = outcome_status(&outcome);
    let crashed = matches!(&outcome, RunOutcome::Failed(e) if e.is_crash());
    if crashed {
        state.metrics.lock().unwrap().crashes += 1;
    }
    // Worker crashes feed the breaker like transient faults: a crashing
    // worker population should degrade to the deterministic fallback, not
    // keep burning workers.
    let transient = crashed
        || matches!(
            outcome,
            RunOutcome::Failed(StageError::Fault {
                class: FaultClass::Transient,
                ..
            })
        );
    let rendered = match &outcome {
        RunOutcome::Failed(e) => format!(",\"rendered\":{}", json_str(&e.to_string())),
        _ => String::new(),
    };
    let lint = match &outcome {
        RunOutcome::Completed(a) | RunOutcome::Degraded { artifacts: a, .. } => {
            match llvm_lite::parser::parse_module(&req.name, &a.module_text) {
                Ok(m) => LintReport::for_module(&m, false).to_json(),
                Err(_) => "null".into(),
            }
        }
        _ => "null".into(),
    };
    let warnings_json = warnings
        .iter()
        .map(|w| json_str(w))
        .collect::<Vec<_>>()
        .join(",");
    let breaker = if degrade { ",\"breaker\":\"open\"" } else { "" };
    let body = format!(
        "{{\"kernel\":{},\"digest\":{},\"flow\":{},\"outcome\":{}{rendered},\"lint\":{lint},\"warnings\":[{warnings_json}]{breaker}}}",
        json_str(&req.name),
        json_str(digest),
        json_str(flow.label()),
        outcome_to_json(&outcome),
    );
    CompileResult {
        code,
        body,
        transient,
        retry_after_s: None,
    }
}

/// A suite kernel goes through the full supervised batch pipeline — flow →
/// csynth → co-simulation with the shared on-disk stage cache and panic
/// isolation. The serve chaos config is forwarded into the batch engine's
/// own sites — except on the degraded fallback path, which is the safety
/// net and runs without injection.
fn compile_suite(
    state: &ServerState,
    req: &CompileRequest,
    name: &str,
    flow: Flow,
    degrade: bool,
    progress: &mut dyn FnMut(&str),
) -> (RunOutcome, Vec<String>) {
    let kernel = match kernels::kernel(name) {
        Some(k) => k,
        None => {
            return (
                RunOutcome::Failed(StageError::Fault {
                    stage: "request".into(),
                    class: FaultClass::Deterministic,
                    detail: format!("unknown suite kernel '{name}'"),
                }),
                Vec::new(),
            )
        }
    };
    progress("supervised");
    let opts = BatchOptions {
        jobs: 1,
        directives: req.directives,
        flow,
        cache_dir: state.config.cache_dir.clone(),
        target: state.config.target.clone(),
        seed: state.config.seed,
        deadline_ms: req.effective_deadline(&state.config),
        fuel: req.effective_fuel(&state.config),
        chaos: if degrade { None } else { state.config.chaos },
        ..BatchOptions::default()
    };
    // Isolation: ship the compile to a worker process. The degraded
    // fallback path stays in-process — it is the safety net and must not
    // depend on the worker pool being healthy.
    if !degrade {
        if let Some(warden) = &state.warden {
            progress("isolated");
            return warden.execute_suite(name, &opts);
        }
    }
    match run_supervised(kernel, &opts) {
        Ok((outcome, warnings)) => (outcome, warnings),
        Err(e) => (
            RunOutcome::Failed(StageError::Fault {
                stage: "cache".into(),
                class: FaultClass::Infra,
                detail: e.to_string(),
            }),
            Vec::new(),
        ),
    }
}

/// Raw MLIR has no reference implementation, so it runs flow → csynth →
/// lint (no co-simulation), budgeted and panic-isolated, with the whole
/// outcome persisted under a `serve` stage key in the shared cache. A
/// degraded (breaker-open) run bypasses that cache in both directions —
/// its outcome is not canonical for the request identity — and skips
/// chaos injection.
fn compile_raw(
    state: &ServerState,
    req: &CompileRequest,
    digest: &str,
    flow: Flow,
    degrade: bool,
    progress: &mut dyn FnMut(&str),
) -> (RunOutcome, Vec<String>) {
    let mlir = req.mlir.as_deref().unwrap_or_default();
    let mut warnings = Vec::new();
    let serve_key = (!degrade).then(|| {
        KeyBuilder::new("serve")
            .text("source", mlir)
            .text("name", &req.name)
            .text("config", &directives_repr(&req.directives, req.flow))
            .text("target", &target_repr(&state.config.target))
            .finish()
    });
    if let (Some(cache), Some(key)) = (&state.cache, &serve_key) {
        match cache.load(key) {
            Lookup::Hit(payload) => match json::parse(&payload)
                .map_err(|e| e.to_string())
                .and_then(|v| crate::batch::outcome_from_json(&v))
            {
                Ok(outcome) => return (outcome, warnings),
                Err(e) => warnings.push(format!("undecodable serve cache entry: {e}")),
            },
            Lookup::Corrupt(e) => warnings.push(format!("corrupt serve cache entry: {e}")),
            Lookup::Miss => {}
        }
    }
    // Chaos: a transient serve-layer compile fault (what trips the
    // breaker in soaks); a delay just slows the pipeline down.
    if !degrade {
        if let Some(engine) = &state.chaos {
            match engine.roll(
                digest,
                "serve/compile",
                0,
                &[ChaosFault::IoError, ChaosFault::Delay],
            ) {
                Some(ChaosFault::IoError) => {
                    state.metrics.lock().unwrap().chaos_injected += 1;
                    return (
                        RunOutcome::Failed(StageError::Fault {
                            stage: "serve".into(),
                            class: FaultClass::Transient,
                            detail: "chaos: injected transient serve compile fault".into(),
                        }),
                        warnings,
                    );
                }
                Some(ChaosFault::Delay) => {
                    state.metrics.lock().unwrap().chaos_injected += 1;
                    std::thread::sleep(Duration::from_millis(25));
                }
                _ => {}
            }
        }
    }
    // Isolation: ship the raw pipeline to a worker process (degraded
    // fallback stays in-process, same as suite compiles).
    if !degrade {
        if let Some(warden) = &state.warden {
            progress("isolated");
            let rc = RawCompile {
                name: &req.name,
                mlir,
                directives: &req.directives,
                flow,
                deadline_ms: req.effective_deadline(&state.config),
                fuel: req.effective_fuel(&state.config),
            };
            let (outcome, mut wwarnings) = warden.execute_raw(&rc, &state.config.target);
            warnings.append(&mut wwarnings);
            if matches!(outcome, RunOutcome::Completed(_)) {
                if let (Some(cache), Some(key)) = (&state.cache, &serve_key) {
                    if let Err(e) = cache.store(key, &outcome_to_json(&outcome)) {
                        warnings.push(format!("serve cache store failed: {e}"));
                    }
                }
            }
            return (outcome, warnings);
        }
    }
    let budget = req.budget(&state.config);
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        raw_pipeline(
            &req.name,
            mlir,
            &req.directives,
            &state.config.target,
            &budget,
            flow,
            progress,
        )
    }));
    let outcome = match run {
        Ok(Ok(artifacts)) => RunOutcome::Completed(Box::new(artifacts)),
        Ok(Err(e)) => RunOutcome::Failed(e),
        Err(payload) => RunOutcome::Panicked {
            message: payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into()),
        },
    };
    if matches!(outcome, RunOutcome::Completed(_)) {
        if let (Some(cache), Some(key)) = (&state.cache, &serve_key) {
            if let Err(e) = cache.store(key, &outcome_to_json(&outcome)) {
                warnings.push(format!("serve cache store failed: {e}"));
            }
        }
    }
    (outcome, warnings)
}

// Shared with `warden::child_main`, which runs the same pipeline inside an
// isolated worker process — hence the state-free signature.
pub(crate) fn raw_pipeline(
    name: &str,
    mlir: &str,
    directives: &Directives,
    target: &Target,
    budget: &Budget,
    flow: Flow,
    progress: &mut dyn FnMut(&str),
) -> Result<crate::batch::KernelArtifacts, StageError> {
    let mut report = PipelineReport::new("serve");
    progress("flow");
    let art = report
        .time_stage("flow", || {
            run_flow_on_text(name, mlir, directives, flow, budget)
        })
        .map_err(|e| StageError::classify("flow", &e.to_string(), FaultClass::Deterministic))?;
    report.extend_prefixed("flow", &art.report);
    let module_text = llvm_lite::printer::print_module(&art.module);
    let module_digest = format!("{:016x}", kernels::fnv1a64(module_text.as_bytes()));
    progress("csynth");
    let csynth = report
        .time_stage("csynth", || {
            vitis_sim::csynth_budgeted(&art.module, target, budget)
        })
        .map_err(|e| StageError::classify("csynth", &e.to_string(), FaultClass::Deterministic))?;
    Ok(crate::batch::KernelArtifacts {
        module_text,
        module_digest,
        csynth,
        cosim_max_err: 0.0,
        cosim_steps: 0,
        report,
        cache_hits: 0,
        cache_misses: 1,
    })
}

// Record completed stage timings into the metrics histograms. Split out of
// the worker path so the lock scope stays obvious.
impl ServerState {
    fn note_outcome(&self, outcome_json: &str) {
        if let Ok(v) = json::parse(outcome_json) {
            if let Some(report) = v.get("outcome").and_then(|o| o.get("report")) {
                if let Ok(r) = PipelineReport::from_json_value(report) {
                    self.metrics.lock().unwrap().record_stages(&r);
                }
            }
        }
    }
}
