//! The `mha-serve` compilation service: the batch substrate, long-running.
//!
//! `mha-batch` runs one supervised sweep and exits; this module keeps the
//! same engine resident behind a small hand-rolled HTTP/1.1 server
//! (`std::net::TcpListener`, no dependencies) so kernels compile on demand:
//!
//! * **`POST /v1/compile`** — kernel text + config in, a supervised
//!   pipeline outcome out (flow → csynth → co-simulation → lint for suite
//!   kernels; flow → csynth → lint for raw MLIR bodies, which have no
//!   reference implementation to co-simulate against).
//! * **`GET /v1/status`** — uptime, pool occupancy, cache/coalescing
//!   counters, and per-stage latency [`Histogram`]s.
//! * **`GET /v1/healthz`** — liveness probe.
//! * **`POST /v1/shutdown`** — cooperative drain (see below).
//!
//! Three layers keep repeated work from repeating:
//!
//! 1. **Coalescing**: requests are keyed by an FNV-1a digest of their
//!    full identity (source, directives, flow, target, seed, budget); an
//!    identical request arriving while the first is still compiling waits
//!    on the in-flight slot and shares its response (`X-Mha-Served:
//!    coalesced`).
//! 2. **The response cache**: completed `200`/`422` responses are kept
//!    in memory and replayed byte-identically (`X-Mha-Served: cache`);
//!    suite-kernel pipelines additionally share the on-disk stage cache
//!    with `mha-batch`, and raw-MLIR responses persist under a `serve`
//!    stage key in the same cache directory.
//! 3. **The journal**: every cacheable response is appended to a
//!    write-ahead journal (`serve.jsonl`, the batch [`Journal`] with an
//!    `mha-serve` header magic) and flushed before the response is sent,
//!    so a killed server loses only in-flight requests — a restarted
//!    server replays the journal and serves those responses warm
//!    (`X-Mha-Served: warm`).
//!
//! Failures map the supervisor's fault taxonomy onto HTTP statuses:
//! deadline trips are `408`, fuel trips `429`, deterministic faults `422`
//! (with the located diagnostics in the body), transient faults `503`,
//! infra faults and panics `500`. Budget trips keep the stable budget
//! grammar in the `rendered` field, so clients recover them structurally
//! with `pass_core::BudgetError::from_rendered`.
//!
//! There is no signal handling here (the repo is `unsafe`-free, and
//! catching SIGTERM in pure std is not possible): the per-response journal
//! flush makes an uncooperative kill safe, and `POST /v1/shutdown` is the
//! cooperative drain — workers finish their in-flight requests, journal
//! them, and exit. See OPERATIONS.md for the runbook.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kernels::digest::Hasher64;
use pass_core::json::{self, JsonValue};
use pass_core::report::json_str;
use pass_core::{Budget, Histogram, PipelineReport};
use vitis_sim::Target;

use crate::batch::{
    directives_repr, outcome_to_json, run_supervised, target_repr, BatchOptions, RunOutcome,
};
use crate::cache::{Cache, KeyBuilder, Lookup};
use crate::experiment::Directives;
use crate::flow::{run_flow_on_text, Flow};
use crate::lint::LintReport;
use crate::supervisor::{FaultClass, Journal, JournalError, StageError};

/// Journal header magic distinguishing serve journals from batch journals.
const JOURNAL_KIND: &str = "mha-serve";

/// Default cap on request bodies (1 MiB) — far above any suite kernel.
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Server configuration (the `mha-serve` CLI surface).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads; 0 means "use the machine's available parallelism".
    pub workers: usize,
    /// Artifact cache directory shared with `mha-batch`; `None` disables
    /// both the stage cache and the journal.
    pub cache_dir: Option<PathBuf>,
    /// Replay the serve journal on startup (warm restart). Ignored without
    /// a cache dir.
    pub resume: bool,
    /// Default per-request wall-clock deadline, overridable per request.
    pub deadline_ms: Option<u64>,
    /// Default per-request fuel allowance, overridable per request.
    pub fuel: Option<u64>,
    /// Synthesis target for every request.
    pub target: Target,
    /// Co-simulation input seed for suite kernels.
    pub seed: u64,
    /// Reject request bodies larger than this (HTTP 413).
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_dir: Some(Cache::default_dir()),
            resume: true,
            deadline_ms: None,
            fuel: None,
            target: Target::default(),
            seed: 2026,
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

impl ServeConfig {
    /// Worker count after resolving 0 to the machine's parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// The configuration identity the serve journal is bound to. Budgets
    /// and directives are per-request (and part of each request's digest),
    /// so only the cross-request knobs participate.
    fn config_repr(&self) -> String {
        format!("target={};seed={}", target_repr(&self.target), self.seed)
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind(String),
    /// Cache directory unusable.
    Cache(String),
    /// Journal unusable.
    Journal(JournalError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::Cache(e) => write!(f, "cache: {e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a compile response was produced, reported in `X-Mha-Served`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Ran the pipeline for this request.
    Compiled,
    /// Waited on an identical in-flight request and shared its response.
    Coalesced,
    /// Replayed from the in-memory response cache (completed earlier in
    /// this server's lifetime).
    Cache,
    /// Replayed from the journal of a previous server lifetime.
    Warm,
}

impl Served {
    /// Header value.
    pub fn as_str(self) -> &'static str {
        match self {
            Served::Compiled => "compiled",
            Served::Coalesced => "coalesced",
            Served::Cache => "cache",
            Served::Warm => "warm",
        }
    }
}

/// A finished response, replayable byte-for-byte.
#[derive(Clone, Debug)]
struct StoredResponse {
    code: u16,
    body: String,
    /// True when this entry came from journal replay (served as `warm`
    /// rather than `cache`).
    from_journal: bool,
}

/// An in-flight compilation other requests can coalesce onto.
struct Inflight {
    slot: Mutex<Option<StoredResponse>>,
    done: Condvar,
}

/// Aggregate request counters + per-stage latency histograms.
#[derive(Default)]
struct Metrics {
    /// `POST /v1/compile` requests, by how they were served.
    compiled: u64,
    coalesced: u64,
    cache_hits: u64,
    warm_hits: u64,
    /// All responses, by status code.
    codes: HashMap<u16, u64>,
    /// End-to-end compile-request latency.
    request: Histogram,
    /// Per-stage latencies, recorded from completed pipeline reports.
    flow: Histogram,
    csynth: Histogram,
    cosim: Histogram,
}

impl Metrics {
    fn count_code(&mut self, code: u16) {
        *self.codes.entry(code).or_insert(0) += 1;
    }

    /// Fold a completed run's stage timings in: report pass names are
    /// either bare stage names (`flow`, `csynth`, `cosim` for cached
    /// stages) or stage-prefixed (`flow/lower`); bucket on the prefix.
    fn record_stages(&mut self, report: &PipelineReport) {
        let mut flow_us = 0u64;
        for p in &report.passes {
            let stage = p.pass.split('/').next().unwrap_or("");
            match stage {
                "flow" => flow_us += p.wall_us,
                "csynth" => self.csynth.record(p.wall_us),
                "cosim" => self.cosim.record(p.wall_us),
                _ => flow_us += p.wall_us,
            }
        }
        self.flow.record(flow_us);
    }
}

/// Everything the worker threads share.
struct ServerState {
    config: ServeConfig,
    started: Instant,
    draining: AtomicBool,
    busy: AtomicUsize,
    cache: Option<Cache>,
    journal: Option<Journal>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    responses: Mutex<HashMap<String, StoredResponse>>,
    metrics: Mutex<Metrics>,
}

/// A running `mha-serve` instance (also usable in-process, which is how
/// `tests/serve.rs` drives it).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, replay the journal if resuming, and spawn the worker pool.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(e.to_string()))?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(Cache::open(dir).map_err(|e| ServeError::Cache(e.to_string()))?),
            None => None,
        };
        let mut responses = HashMap::new();
        let journal = match &config.cache_dir {
            Some(dir) => {
                let path = dir.join("serve.jsonl");
                let repr = config.config_repr();
                if config.resume {
                    match Journal::resume_kind(&path, JOURNAL_KIND, &repr) {
                        Ok((j, outcomes)) => {
                            for (digest, v) in &outcomes {
                                if let Some(r) = stored_from_journal(v) {
                                    responses.insert(digest.clone(), r);
                                }
                            }
                            Some(j)
                        }
                        Err(JournalError::ConfigMismatch { .. }) => {
                            eprintln!(
                                "mha-serve: journal was written under a different \
                                 target/seed; starting fresh"
                            );
                            Some(
                                Journal::create_kind(&path, JOURNAL_KIND, &repr)
                                    .map_err(ServeError::Journal)?,
                            )
                        }
                        Err(e) => return Err(ServeError::Journal(e)),
                    }
                } else {
                    Some(
                        Journal::create_kind(&path, JOURNAL_KIND, &repr)
                            .map_err(ServeError::Journal)?,
                    )
                }
            }
            None => None,
        };
        let n_warm = responses.len();
        if n_warm > 0 {
            eprintln!("mha-serve: replayed {n_warm} journaled response(s)");
        }

        let state = Arc::new(ServerState {
            started: Instant::now(),
            draining: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            cache,
            journal,
            inflight: Mutex::new(HashMap::new()),
            responses: Mutex::new(responses),
            metrics: Mutex::new(Metrics::default()),
            config,
        });

        let workers = state.config.effective_workers();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = listener
                .try_clone()
                .map_err(|e| ServeError::Bind(e.to_string()))?;
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || worker_loop(listener, state)));
        }
        Ok(Server {
            state,
            addr,
            handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain was requested (via [`Server::stop`] or
    /// `POST /v1/shutdown`).
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Block until every worker has exited (drain completion).
    pub fn join(mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Request a drain and block until in-flight work is finished and
    /// journaled: sets the drain flag, nudges every blocked `accept`, and
    /// joins the pool.
    pub fn stop(self) {
        self.state.draining.store(true, Ordering::SeqCst);
        wake_workers(self.addr, self.state.config.effective_workers());
        self.join();
    }
}

/// Unblock workers parked in `accept` by connecting throwaway sockets.
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            drop(s);
        }
    }
}

fn worker_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if state.draining.load(Ordering::SeqCst) {
            // Wake-up nudge or a straggler past the drain point.
            return;
        }
        state.busy.fetch_add(1, Ordering::SeqCst);
        let _ = handle_connection(stream, &state);
        state.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// A parsed HTTP/1.1 request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// Read one request off the stream. Returns `Err` with a ready-to-send
/// status code on malformed input.
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, (u16, String)> {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| (400, format!("bad request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err((400, "empty request line".into()));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| (400, format!("bad header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, "unparsable Content-Length".to_string()))?;
            }
        }
    }
    if content_length > max_body {
        return Err((
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte cap"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("short body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    Ok(HttpRequest { method, path, body })
}

fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    body: &str,
    served: Option<Served>,
) -> io::Result<()> {
    let served_header = match served {
        Some(s) => format!("X-Mha-Served: {}\r\n", s.as_str()),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{served_header}Connection: close\r\n\r\n",
        reason(code),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn error_body(code: u16, detail: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"code\":{code},\"error\":{}}}",
        json_str(detail)
    )
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    let req = match read_request(&mut stream, state.config.max_body) {
        Ok(r) => r,
        Err((code, detail)) => {
            state.metrics.lock().unwrap().count_code(code);
            return write_response(&mut stream, code, &error_body(code, &detail), None);
        }
    };
    let (code, body, served) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/compile") => {
            let start = Instant::now();
            let (code, body, served) = handle_compile(state, &req.body);
            let mut m = state.metrics.lock().unwrap();
            m.request.record(start.elapsed().as_micros() as u64);
            match served {
                Some(Served::Compiled) => m.compiled += 1,
                Some(Served::Coalesced) => m.coalesced += 1,
                Some(Served::Cache) => m.cache_hits += 1,
                Some(Served::Warm) => m.warm_hits += 1,
                None => {}
            }
            drop(m);
            (code, body, served)
        }
        ("GET", "/v1/status") => (200, status_body(state), None),
        ("GET", "/v1/healthz") => (200, "{\"ok\":true}".to_string(), None),
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            // Other workers are parked in accept; nudge them out.
            if let Ok(addr) = stream.local_addr() {
                wake_workers(addr, state.config.effective_workers());
            }
            (200, "{\"draining\":true}".to_string(), None)
        }
        ("GET", _) | ("POST", _) => (404, error_body(404, "no such endpoint"), None),
        _ => (405, error_body(405, "use GET or POST"), None),
    };
    state.metrics.lock().unwrap().count_code(code);
    write_response(&mut stream, code, &body, served)
}

fn status_body(state: &ServerState) -> String {
    let m = state.metrics.lock().unwrap();
    let mut codes: Vec<(u16, u64)> = m.codes.iter().map(|(k, v)| (*k, *v)).collect();
    codes.sort_unstable();
    let codes_json = codes
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let total: u64 = m.compiled + m.coalesced + m.cache_hits + m.warm_hits;
    format!(
        "{{\"service\":\"mha-serve\",\"uptime_ms\":{},\"workers\":{},\"busy\":{},\"draining\":{},\
         \"journal\":{},\
         \"requests\":{{\"compile_total\":{total},\"compiled\":{},\"coalesced\":{},\
         \"cache_hits\":{},\"warm_hits\":{},\"codes\":{{{codes_json}}}}},\
         \"latency\":[{},{},{},{}]}}",
        state.started.elapsed().as_millis(),
        state.config.effective_workers(),
        state.busy.load(Ordering::SeqCst),
        state.draining.load(Ordering::SeqCst),
        state
            .journal
            .as_ref()
            .map(|j| json_str(&j.path().display().to_string()))
            .unwrap_or_else(|| "null".into()),
        m.compiled,
        m.coalesced,
        m.cache_hits,
        m.warm_hits,
        m.request.to_json("request"),
        m.flow.to_json("flow"),
        m.csynth.to_json("csynth"),
        m.cosim.to_json("cosim"),
    )
}

// ---------------------------------------------------------------------------
// The compile endpoint
// ---------------------------------------------------------------------------

/// A parsed `POST /v1/compile` body.
struct CompileRequest {
    /// Suite kernel name (`"kernel"` field) — mutually exclusive with raw
    /// MLIR text (`"mlir"`).
    kernel: Option<String>,
    /// Raw MLIR module text.
    mlir: Option<String>,
    /// Module name for raw MLIR (defaults to `"kernel"`).
    name: String,
    flow: Flow,
    directives: Directives,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
}

impl CompileRequest {
    fn parse(body: &str) -> Result<CompileRequest, String> {
        let v = json::parse(body).map_err(|e| format!("request is not JSON: {e}"))?;
        let str_field = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let num_field = |k: &str| v.get(k).and_then(|x| x.as_u64());
        let kernel = str_field("kernel");
        let mlir = str_field("mlir");
        match (&kernel, &mlir) {
            (None, None) => return Err("need either 'kernel' (suite name) or 'mlir' (text)".into()),
            (Some(_), Some(_)) => return Err("'kernel' and 'mlir' are mutually exclusive".into()),
            _ => {}
        }
        let flow = match str_field("flow").as_deref() {
            None | Some("adaptor") => Flow::Adaptor,
            Some("cpp") | Some("hls-c++") => Flow::Cpp,
            Some(other) => return Err(format!("unknown flow '{other}' (adaptor|cpp)")),
        };
        // `ii: 0` disables pipelining; absent means the batch default II=1.
        let directives = Directives {
            pipeline_ii: match num_field("ii") {
                None => Some(1),
                Some(0) => None,
                Some(ii) => Some(ii as u32),
            },
            unroll_factor: num_field("unroll").map(|x| x as u32),
            partition_factor: num_field("partition").map(|x| x as u32),
            flatten: v.get("flatten").and_then(|x| x.as_bool()).unwrap_or(false),
        };
        let name = str_field("name")
            .or_else(|| kernel.clone())
            .unwrap_or_else(|| "kernel".into());
        Ok(CompileRequest {
            kernel,
            mlir,
            name,
            flow,
            directives,
            deadline_ms: num_field("deadline_ms"),
            fuel: num_field("fuel"),
        })
    }

    /// The request's full identity, as the coalescing/cache/journal key.
    fn digest(&self, config: &ServeConfig) -> String {
        let mut h = Hasher64::new();
        h.field_str("mha-serve/v1");
        if let Some(k) = &self.kernel {
            h.field_str("kernel").field_str(k);
        } else if let Some(m) = &self.mlir {
            h.field_str("mlir").field_str(m);
        }
        h.field_str(&self.name);
        h.field_str(&directives_repr(&self.directives, self.flow));
        h.field_str(&config.config_repr());
        h.field_str(&format!(
            "deadline={:?};fuel={:?}",
            self.effective_deadline(config),
            self.effective_fuel(config)
        ));
        h.finish_hex()
    }

    fn effective_deadline(&self, config: &ServeConfig) -> Option<u64> {
        self.deadline_ms.or(config.deadline_ms)
    }

    fn effective_fuel(&self, config: &ServeConfig) -> Option<u64> {
        self.fuel.or(config.fuel)
    }

    fn budget(&self, config: &ServeConfig) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.effective_deadline(config) {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(fuel) = self.effective_fuel(config) {
            b = b.with_fuel(fuel);
        }
        b
    }
}

/// HTTP status for a pipeline outcome: the supervisor's taxonomy on the
/// wire. Budget deadline → 408, fuel → 429, deterministic → 422,
/// transient → 503, infra/panic → 500.
pub fn outcome_status(o: &RunOutcome) -> u16 {
    match o {
        RunOutcome::Completed(_) | RunOutcome::Degraded { .. } => 200,
        RunOutcome::Failed(StageError::BudgetExceeded { kind, .. }) => match kind {
            pass_core::BudgetKind::Deadline => 408,
            pass_core::BudgetKind::Fuel => 429,
        },
        RunOutcome::Failed(StageError::Fault { class, .. }) => match class {
            FaultClass::Deterministic => 422,
            FaultClass::Transient => 503,
            FaultClass::Infra => 500,
        },
        RunOutcome::Panicked { .. } => 500,
    }
}

/// Response codes that are deterministic functions of the request and
/// therefore safe to cache and journal. Budget trips (408/429) depend on
/// wall clock and pool contention; transient/infra failures may clear.
fn cacheable(code: u16) -> bool {
    code == 200 || code == 422
}

fn handle_compile(state: &ServerState, body: &str) -> (u16, String, Option<Served>) {
    let req = match CompileRequest::parse(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(400, &e), None),
    };
    let digest = req.digest(&state.config);

    // Fast path: an identical request already completed.
    if let Some(r) = state.responses.lock().unwrap().get(&digest) {
        let served = if r.from_journal {
            Served::Warm
        } else {
            Served::Cache
        };
        return (r.code, r.body.clone(), Some(served));
    }

    // Coalesce onto an identical in-flight request, or claim the slot.
    let inflight = {
        let mut map = state.inflight.lock().unwrap();
        match map.get(&digest) {
            Some(found) => Some(Arc::clone(found)),
            None => {
                map.insert(
                    digest.clone(),
                    Arc::new(Inflight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    }),
                );
                None
            }
        }
    };
    if let Some(inflight) = inflight {
        let mut slot = inflight.slot.lock().unwrap();
        while slot.is_none() {
            slot = inflight.done.wait(slot).unwrap();
        }
        let r = slot.as_ref().unwrap();
        return (r.code, r.body.clone(), Some(Served::Coalesced));
    }

    // We own the compilation. Journal the start, run, publish.
    if let Some(j) = &state.journal {
        let _ = j.begin(&digest);
    }
    let (code, body) = compile_locked(state, &req, &digest);
    if code == 200 {
        state.note_outcome(&body);
    }
    let stored = StoredResponse {
        code,
        body: body.clone(),
        from_journal: false,
    };
    if cacheable(code) {
        if let Some(j) = &state.journal {
            let _ = j.finish(&digest, &stored_to_journal(&stored));
        }
        state
            .responses
            .lock()
            .unwrap()
            .insert(digest.clone(), stored.clone());
    }
    // Publish to coalesced waiters before releasing the in-flight slot.
    let inflight = state.inflight.lock().unwrap().remove(&digest);
    if let Some(inflight) = inflight {
        *inflight.slot.lock().unwrap() = Some(stored);
        inflight.done.notify_all();
    }
    (code, body, Some(Served::Compiled))
}

/// Serialize a stored response as a journal `done` payload. The body is
/// embedded as a JSON *string*, so replay reproduces it byte-for-byte.
fn stored_to_journal(r: &StoredResponse) -> String {
    format!("{{\"code\":{},\"body\":{}}}", r.code, json_str(&r.body))
}

fn stored_from_journal(v: &JsonValue) -> Option<StoredResponse> {
    Some(StoredResponse {
        code: v.get("code")?.as_u64()? as u16,
        body: v.get("body")?.as_str()?.to_string(),
        from_journal: true,
    })
}

/// Run the request's pipeline and produce the response document:
///
/// ```json
/// {"kernel": "...", "digest": "...", "flow": "adaptor",
///  "outcome": { "status": "ok", ... },         // batch outcome schema
///  "rendered": "...",                          // failures only
///  "lint": { ... } | null,
///  "warnings": ["..."]}
/// ```
fn compile_locked(state: &ServerState, req: &CompileRequest, digest: &str) -> (u16, String) {
    let (outcome, warnings) = match &req.kernel {
        Some(name) => compile_suite(state, req, name),
        None => compile_raw(state, req),
    };
    let code = outcome_status(&outcome);
    let rendered = match &outcome {
        RunOutcome::Failed(e) => format!(",\"rendered\":{}", json_str(&e.to_string())),
        _ => String::new(),
    };
    let lint = match &outcome {
        RunOutcome::Completed(a) | RunOutcome::Degraded { artifacts: a, .. } => {
            match llvm_lite::parser::parse_module(&req.name, &a.module_text) {
                Ok(m) => LintReport::for_module(&m, false).to_json(),
                Err(_) => "null".into(),
            }
        }
        _ => "null".into(),
    };
    let warnings_json = warnings
        .iter()
        .map(|w| json_str(w))
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(
        "{{\"kernel\":{},\"digest\":{},\"flow\":{},\"outcome\":{}{rendered},\"lint\":{lint},\"warnings\":[{warnings_json}]}}",
        json_str(&req.name),
        json_str(digest),
        json_str(req.flow.label()),
        outcome_to_json(&outcome),
    );
    (code, body)
}

/// A suite kernel goes through the full supervised batch pipeline — flow →
/// csynth → co-simulation with the shared on-disk stage cache and panic
/// isolation.
fn compile_suite(
    state: &ServerState,
    req: &CompileRequest,
    name: &str,
) -> (RunOutcome, Vec<String>) {
    let kernel = match kernels::kernel(name) {
        Some(k) => k,
        None => {
            return (
                RunOutcome::Failed(StageError::Fault {
                    stage: "request".into(),
                    class: FaultClass::Deterministic,
                    detail: format!("unknown suite kernel '{name}'"),
                }),
                Vec::new(),
            )
        }
    };
    let opts = BatchOptions {
        jobs: 1,
        directives: req.directives,
        flow: req.flow,
        cache_dir: state.config.cache_dir.clone(),
        target: state.config.target.clone(),
        seed: state.config.seed,
        deadline_ms: req.effective_deadline(&state.config),
        fuel: req.effective_fuel(&state.config),
        ..BatchOptions::default()
    };
    match run_supervised(kernel, &opts) {
        Ok((outcome, warnings)) => (outcome, warnings),
        Err(e) => (
            RunOutcome::Failed(StageError::Fault {
                stage: "cache".into(),
                class: FaultClass::Infra,
                detail: e.to_string(),
            }),
            Vec::new(),
        ),
    }
}

/// Raw MLIR has no reference implementation, so it runs flow → csynth →
/// lint (no co-simulation), budgeted and panic-isolated, with the whole
/// outcome persisted under a `serve` stage key in the shared cache.
fn compile_raw(state: &ServerState, req: &CompileRequest) -> (RunOutcome, Vec<String>) {
    let mlir = req.mlir.as_deref().unwrap_or_default();
    let serve_key = KeyBuilder::new("serve")
        .text("source", mlir)
        .text("name", &req.name)
        .text("config", &directives_repr(&req.directives, req.flow))
        .text("target", &target_repr(&state.config.target))
        .finish();
    let mut warnings = Vec::new();
    if let Some(cache) = &state.cache {
        match cache.load(&serve_key) {
            Lookup::Hit(payload) => match json::parse(&payload)
                .map_err(|e| e.to_string())
                .and_then(|v| crate::batch::outcome_from_json(&v))
            {
                Ok(outcome) => return (outcome, warnings),
                Err(e) => warnings.push(format!("undecodable serve cache entry: {e}")),
            },
            Lookup::Corrupt(e) => warnings.push(format!("corrupt serve cache entry: {e}")),
            Lookup::Miss => {}
        }
    }
    let budget = req.budget(&state.config);
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| raw_pipeline(state, req, &budget)));
    let outcome = match run {
        Ok(Ok(artifacts)) => RunOutcome::Completed(Box::new(artifacts)),
        Ok(Err(e)) => RunOutcome::Failed(e),
        Err(payload) => RunOutcome::Panicked {
            message: payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into()),
        },
    };
    if matches!(outcome, RunOutcome::Completed(_)) {
        if let Some(cache) = &state.cache {
            if let Err(e) = cache.store(&serve_key, &outcome_to_json(&outcome)) {
                warnings.push(format!("serve cache store failed: {e}"));
            }
        }
    }
    (outcome, warnings)
}

fn raw_pipeline(
    state: &ServerState,
    req: &CompileRequest,
    budget: &Budget,
) -> Result<crate::batch::KernelArtifacts, StageError> {
    let mlir = req.mlir.as_deref().unwrap_or_default();
    let mut report = PipelineReport::new("serve");
    let art = report
        .time_stage("flow", || {
            run_flow_on_text(&req.name, mlir, &req.directives, req.flow, budget)
        })
        .map_err(|e| StageError::classify("flow", &e.to_string(), FaultClass::Deterministic))?;
    report.extend_prefixed("flow", &art.report);
    let module_text = llvm_lite::printer::print_module(&art.module);
    let module_digest = format!("{:016x}", kernels::fnv1a64(module_text.as_bytes()));
    let csynth = report
        .time_stage("csynth", || {
            vitis_sim::csynth_budgeted(&art.module, &state.config.target, budget)
        })
        .map_err(|e| StageError::classify("csynth", &e.to_string(), FaultClass::Deterministic))?;
    Ok(crate::batch::KernelArtifacts {
        module_text,
        module_digest,
        csynth,
        cosim_max_err: 0.0,
        cosim_steps: 0,
        report,
        cache_hits: 0,
        cache_misses: 1,
    })
}

// Record completed stage timings into the metrics histograms. Split out of
// `handle_compile` so the lock scope stays obvious.
impl ServerState {
    fn note_outcome(&self, outcome_json: &str) {
        if let Ok(v) = json::parse(outcome_json) {
            if let Some(report) = v.get("outcome").and_then(|o| o.get("report")) {
                if let Ok(r) = PipelineReport::from_json_value(report) {
                    self.metrics.lock().unwrap().record_stages(&r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_req(body: &str) -> CompileRequest {
        CompileRequest::parse(body).expect("request parses")
    }

    #[test]
    fn request_parsing_applies_defaults_and_rejects_ambiguity() {
        let r = parse_req("{\"kernel\":\"gemm\"}");
        assert_eq!(r.kernel.as_deref(), Some("gemm"));
        assert_eq!(r.name, "gemm");
        assert_eq!(r.flow, Flow::Adaptor);
        assert_eq!(r.directives.pipeline_ii, Some(1));
        assert!(CompileRequest::parse("{}").is_err());
        assert!(CompileRequest::parse("{\"kernel\":\"gemm\",\"mlir\":\"x\"}").is_err());
        let r = parse_req("{\"mlir\":\"func.func ...\",\"ii\":0,\"flow\":\"cpp\"}");
        assert_eq!(r.directives.pipeline_ii, None);
        assert_eq!(r.flow, Flow::Cpp);
        assert_eq!(r.name, "kernel");
    }

    #[test]
    fn digest_is_stable_and_sensitive_to_identity_fields() {
        let config = ServeConfig::default();
        let a = parse_req("{\"kernel\":\"gemm\"}").digest(&config);
        let b = parse_req("{\"kernel\":\"gemm\"}").digest(&config);
        assert_eq!(a, b);
        let c = parse_req("{\"kernel\":\"gemm\",\"ii\":2}").digest(&config);
        assert_ne!(a, c);
        let d = parse_req("{\"kernel\":\"gemm\",\"deadline_ms\":5}").digest(&config);
        assert_ne!(a, d);
        let e = parse_req("{\"kernel\":\"two_mm\"}").digest(&config);
        assert_ne!(a, e);
    }

    #[test]
    fn outcome_status_maps_the_taxonomy() {
        use pass_core::BudgetKind;
        let failed = |e| RunOutcome::Failed(e);
        assert_eq!(
            outcome_status(&failed(StageError::BudgetExceeded {
                stage: "flow".into(),
                kind: BudgetKind::Deadline,
                detail: "d".into(),
            })),
            408
        );
        assert_eq!(
            outcome_status(&failed(StageError::BudgetExceeded {
                stage: "flow".into(),
                kind: BudgetKind::Fuel,
                detail: "d".into(),
            })),
            429
        );
        assert_eq!(
            outcome_status(&failed(StageError::Fault {
                stage: "flow".into(),
                class: FaultClass::Deterministic,
                detail: "d".into(),
            })),
            422
        );
        assert_eq!(
            outcome_status(&failed(StageError::Fault {
                stage: "flow".into(),
                class: FaultClass::Transient,
                detail: "d".into(),
            })),
            503
        );
        assert_eq!(
            outcome_status(&RunOutcome::Panicked {
                message: "boom".into()
            }),
            500
        );
    }

    #[test]
    fn journal_codec_round_trips_bodies_byte_for_byte() {
        let stored = StoredResponse {
            code: 200,
            body: "{\"kernel\":\"gemm\",\"weird\":\"\\\"quoted\\\"\\n\"}".to_string(),
            from_journal: false,
        };
        let encoded = stored_to_journal(&stored);
        let v = json::parse(&encoded).unwrap();
        let back = stored_from_journal(&v).unwrap();
        assert_eq!(back.code, 200);
        assert_eq!(back.body, stored.body);
        assert!(back.from_journal);
    }

    #[test]
    fn cacheable_covers_only_deterministic_codes() {
        assert!(cacheable(200));
        assert!(cacheable(422));
        for code in [400, 408, 429, 500, 503] {
            assert!(!cacheable(code), "{code} must not be cached");
        }
    }
}
