//! Content-addressed artifact cache for the batch driver.
//!
//! Every stage of the batch flow (`flow` → `csynth` → `cosim`) stores its
//! output under a [`CacheKey`]: a stable FNV-1a digest (via
//! [`kernels::digest`]) of everything that determines the output —
//!
//! * the *input text* (kernel MLIR for the flow stage, printed `.ll`
//!   module text for the downstream stages),
//! * the *configuration* (directives, flow kind, synthesis target, seed),
//! * the *crate version* and a cache schema version.
//!
//! A warm rerun therefore skips any stage whose inputs are unchanged, and
//! editing the IR, the pass configuration, or upgrading the workspace
//! invalidates exactly the affected entries — nothing is ever looked up by
//! name or timestamp.
//!
//! Entries are one file per key under the cache directory:
//!
//! ```text
//! mha-cache 1 <key-hex> <payload-fnv-hex> <payload-len>\n
//! <payload bytes>
//! ```
//!
//! The header makes corruption detectable: a wrong magic, key mismatch,
//! length mismatch, or payload-digest mismatch classifies the entry as
//! [`Lookup::Corrupt`], which callers treat as a miss (recompute and
//! rewrite) plus a warning — a damaged cache can cost time, never
//! correctness.

use std::fmt;
use std::path::{Path, PathBuf};

use kernels::digest::Hasher64;

/// Bumped whenever the entry format or any payload encoding changes;
/// part of every key, so old entries simply stop matching.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// An I/O or setup failure in the cache layer. Lookup-level problems
/// (missing or corrupt entries) are *not* errors — they surface as
/// [`Lookup`] variants because the correct response is to recompute.
#[derive(Debug, Clone)]
pub struct CacheError {
    /// The file or directory involved.
    pub path: PathBuf,
    /// What failed.
    pub detail: String,
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache error at {}: {}", self.path.display(), self.detail)
    }
}

impl std::error::Error for CacheError {}

/// The key addressing one stage output: 16 hex digits of FNV-1a state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// The hex form used in filenames and logs.
    pub fn hex(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Builds a [`CacheKey`] from labelled, length-delimited fields. The stage
/// name, schema version, and crate version are absorbed up front, so two
/// stages can never share a key even over identical inputs.
pub struct KeyBuilder {
    h: Hasher64,
}

impl KeyBuilder {
    /// Start a key for `stage` (e.g. `"flow"`, `"csynth"`, `"cosim"`).
    pub fn new(stage: &str) -> KeyBuilder {
        let mut h = Hasher64::new();
        h.field(&CACHE_SCHEMA_VERSION.to_le_bytes())
            .field_str(env!("CARGO_PKG_VERSION"))
            .field_str(stage);
        KeyBuilder { h }
    }

    /// Absorb one labelled string field.
    pub fn text(mut self, label: &str, value: &str) -> KeyBuilder {
        self.h.field_str(label).field_str(value);
        self
    }

    /// Absorb one labelled integer field (digests, seeds, factors).
    pub fn num(mut self, label: &str, value: u64) -> KeyBuilder {
        self.h.field_str(label).field(&value.to_le_bytes());
        self
    }

    /// Finish into the filename-ready key.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.h.finish_hex())
    }
}

/// Result of a cache probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The entry exists and its integrity checks passed.
    Hit(String),
    /// No entry for this key.
    Miss,
    /// An entry exists but failed validation; the reason is human-readable.
    /// The damaged file has already been removed (best effort).
    Corrupt(String),
}

/// A directory of content-addressed entries.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Cache, CacheError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CacheError {
            path: dir.clone(),
            detail: format!("cannot create cache directory: {e}"),
        })?;
        Ok(Cache { dir })
    }

    /// The default cache location: `target/mha-cache` next to the build
    /// artifacts, so `cargo clean`-style hygiene covers it.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("mha-cache")
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.entry", key.hex()))
    }

    /// Probe for `key`.
    pub fn load(&self, key: &CacheKey) -> Lookup {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return self.corrupt(&path, format!("unreadable entry: {e}")),
        };
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => return self.corrupt(&path, "entry is not UTF-8".into()),
        };
        let Some((header, payload)) = text.split_once('\n') else {
            return self.corrupt(&path, "entry has no header line".into());
        };
        let fields: Vec<&str> = header.split(' ').collect();
        if fields.len() != 5 || fields[0] != "mha-cache" {
            return self.corrupt(&path, "malformed header".into());
        }
        if fields[1] != CACHE_SCHEMA_VERSION.to_string() {
            return self.corrupt(
                &path,
                format!("schema version {} != {}", fields[1], CACHE_SCHEMA_VERSION),
            );
        }
        if fields[2] != key.hex() {
            return self.corrupt(&path, "stored key does not match filename key".into());
        }
        match fields[4].parse::<usize>() {
            Ok(len) if len == payload.len() => {}
            _ => return self.corrupt(&path, "payload length mismatch".into()),
        }
        let digest = format!("{:016x}", kernels::fnv1a64(payload.as_bytes()));
        if fields[3] != digest {
            return self.corrupt(&path, "payload digest mismatch".into());
        }
        Lookup::Hit(payload.to_string())
    }

    fn corrupt(&self, path: &Path, reason: String) -> Lookup {
        // Remove the damaged file so the rewritten entry starts clean.
        let _ = std::fs::remove_file(path);
        Lookup::Corrupt(format!("{}: {reason}", path.display()))
    }

    /// Write `payload` under `key` via [`atomic_write`], so concurrent
    /// readers only ever observe complete entries.
    pub fn store(&self, key: &CacheKey, payload: &str) -> Result<(), CacheError> {
        let digest = format!("{:016x}", kernels::fnv1a64(payload.as_bytes()));
        let entry = format!(
            "mha-cache {CACHE_SCHEMA_VERSION} {} {digest} {}\n{payload}",
            key.hex(),
            payload.len()
        );
        atomic_write(&self.dir, &self.entry_path(key), &entry)
    }
}

/// Write `content` to `path`, atomically enough for concurrent writers:
/// the content is staged to a unique temp file inside `dir` (same
/// filesystem, so the rename is atomic) and renamed into place. Readers
/// never observe a half-written file. Shared by the cache and the fuzzing
/// corpus.
pub fn atomic_write(dir: &Path, path: &Path, content: &str) -> Result<(), CacheError> {
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "entry".into());
    let tmp = dir.join(format!(
        ".{stem}.{:x}.tmp",
        std::process::id() as u64 ^ (content.as_ptr() as u64)
    ));
    std::fs::write(&tmp, content).map_err(|e| CacheError {
        path: tmp.clone(),
        detail: format!("cannot stage entry: {e}"),
    })?;
    std::fs::rename(&tmp, path).map_err(|e| CacheError {
        path: path.to_path_buf(),
        detail: format!("cannot commit entry: {e}"),
    })
}

/// Encode a csynth report as the cache payload. The format is line-based
/// and exact: floats travel as IEEE-754 bit patterns so decode(encode(r))
/// reproduces `r` field-for-field.
pub fn encode_csynth(r: &vitis_sim::CsynthReport) -> String {
    fn opt_u64(v: Option<u64>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    fn opt_u32(v: Option<u32>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    let mut out = String::new();
    out.push_str(&format!("top {}\n", r.top));
    out.push_str(&format!("clock_ns {:016x}\n", r.clock_ns.to_bits()));
    out.push_str(&format!("latency {}\n", r.latency));
    out.push_str(&format!("interval {}\n", r.interval));
    out.push_str(&format!(
        "resources {} {} {} {}\n",
        r.resources.dsp, r.resources.lut, r.resources.ff, r.resources.bram_18k
    ));
    for l in &r.loops {
        out.push_str(&format!(
            "loop {} {} {} {} {} {} {} {}\n",
            l.depth,
            opt_u64(l.trip_count),
            l.pipelined as u8,
            opt_u32(l.ii_target),
            opt_u32(l.ii_achieved),
            l.iteration_latency,
            l.latency,
            l.name
        ));
        match &l.ii_bound {
            Some(b) => out.push_str(&format!("bound {b}\n")),
            None => out.push_str("bound -\n"),
        }
    }
    out
}

/// Decode a payload produced by [`encode_csynth`]. Any structural deviation
/// is an error (the caller then treats the entry as corrupt).
pub fn decode_csynth(payload: &str) -> Result<vitis_sim::CsynthReport, String> {
    fn opt<T: std::str::FromStr>(s: &str) -> Result<Option<T>, String> {
        if s == "-" {
            Ok(None)
        } else {
            s.parse().map(Some).map_err(|_| format!("bad field '{s}'"))
        }
    }
    fn req<T: std::str::FromStr>(s: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("bad field '{s}'"))
    }
    let mut lines = payload.lines();
    let mut take = |tag: &str| -> Result<String, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing '{tag}' line"))?;
        line.strip_prefix(tag)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| format!("expected '{tag}' line, got '{line}'"))
    };
    let top = take("top")?;
    let clock_bits = u64::from_str_radix(&take("clock_ns")?, 16).map_err(|e| e.to_string())?;
    let latency = req(&take("latency")?)?;
    let interval = req(&take("interval")?)?;
    let res_line = take("resources")?;
    let res: Vec<&str> = res_line.split(' ').collect();
    if res.len() != 4 {
        return Err("resources line needs 4 fields".into());
    }
    let resources = vitis_sim::Resources {
        dsp: req(res[0])?,
        lut: req(res[1])?,
        ff: req(res[2])?,
        bram_18k: req(res[3])?,
    };
    let mut loops = Vec::new();
    while let Ok(l) = take("loop") {
        // depth trip pipelined ii_tgt ii_ach iterlat latency name
        let mut f = l.splitn(8, ' ');
        let mut next = || f.next().ok_or_else(|| "short loop line".to_string());
        let depth = req(next()?)?;
        let trip_count = opt(next()?)?;
        let pipelined = next()? == "1";
        let ii_target = opt(next()?)?;
        let ii_achieved = opt(next()?)?;
        let iteration_latency = req(next()?)?;
        let latency = req(next()?)?;
        let name = next()?.to_string();
        let bound = take("bound")?;
        loops.push(vitis_sim::LoopReport {
            name,
            depth,
            trip_count,
            pipelined,
            ii_target,
            ii_achieved,
            iteration_latency,
            latency,
            ii_bound: if bound == "-" { None } else { Some(bound) },
        });
    }
    Ok(vitis_sim::CsynthReport {
        top,
        clock_ns: f64::from_bits(clock_bits),
        latency,
        interval,
        loops,
        resources,
    })
}

/// Encode a co-simulation outcome (`max_abs_err` travels as its f32 bit
/// pattern for exactness).
pub fn encode_cosim(r: &crate::CosimResult) -> String {
    format!("cosim {:08x} {}\n", r.max_abs_err.to_bits(), r.steps)
}

/// Decode a payload produced by [`encode_cosim`].
pub fn decode_cosim(payload: &str) -> Result<crate::CosimResult, String> {
    let line = payload.lines().next().ok_or("empty cosim payload")?;
    let fields: Vec<&str> = line.split(' ').collect();
    if fields.len() != 3 || fields[0] != "cosim" {
        return Err(format!("malformed cosim payload '{line}'"));
    }
    let bits = u32::from_str_radix(fields[1], 16).map_err(|e| e.to_string())?;
    let steps = fields[2]
        .parse()
        .map_err(|_| "bad steps field".to_string())?;
    Ok(crate::CosimResult {
        max_abs_err: f32::from_bits(bits),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> Cache {
        let dir = std::env::temp_dir().join(format!("mha-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let c = tmp_cache("roundtrip");
        let key = KeyBuilder::new("flow").text("mlir", "func...").finish();
        assert_eq!(c.load(&key), Lookup::Miss);
        c.store(&key, "payload\nwith lines").unwrap();
        assert_eq!(c.load(&key), Lookup::Hit("payload\nwith lines".into()));
    }

    #[test]
    fn keys_separate_stages_and_inputs() {
        let a = KeyBuilder::new("flow").text("mlir", "x").finish();
        let b = KeyBuilder::new("csynth").text("mlir", "x").finish();
        let c = KeyBuilder::new("flow").text("mlir", "y").finish();
        let d = KeyBuilder::new("flow")
            .text("mlir", "x")
            .num("ii", 2)
            .finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Same inputs, same key.
        assert_eq!(a, KeyBuilder::new("flow").text("mlir", "x").finish());
    }

    #[test]
    fn corrupt_entries_are_detected_and_removed() {
        let c = tmp_cache("corrupt");
        let key = KeyBuilder::new("flow").text("k", "v").finish();
        c.store(&key, "good payload").unwrap();
        let path = c.entry_path(&key);
        // Flip a payload byte: digest check must fire.
        std::fs::write(
            &path,
            std::fs::read_to_string(&path)
                .unwrap()
                .replace("good", "evil"),
        )
        .unwrap();
        match c.load(&key) {
            Lookup::Corrupt(reason) => assert!(reason.contains("digest"), "{reason}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The damaged file is gone, so the next probe is a clean miss.
        assert_eq!(c.load(&key), Lookup::Miss);
        // Truncation is also caught.
        c.store(&key, "good payload").unwrap();
        std::fs::write(&path, "mha-cache").unwrap();
        assert!(matches!(c.load(&key), Lookup::Corrupt(_)));
    }

    #[test]
    fn csynth_payload_roundtrips() {
        let r = vitis_sim::CsynthReport {
            top: "gemm".into(),
            clock_ns: 10.0,
            latency: 4242,
            interval: 4243,
            loops: vec![
                vitis_sim::LoopReport {
                    name: "loop_i".into(),
                    depth: 1,
                    trip_count: Some(16),
                    pipelined: true,
                    ii_target: Some(1),
                    ii_achieved: Some(2),
                    iteration_latency: 9,
                    latency: 71,
                    ii_bound: Some("memory ports on %a".into()),
                },
                vitis_sim::LoopReport {
                    name: "loop_j".into(),
                    depth: 2,
                    trip_count: None,
                    pipelined: false,
                    ii_target: None,
                    ii_achieved: None,
                    iteration_latency: 3,
                    latency: 48,
                    ii_bound: None,
                },
            ],
            resources: vitis_sim::Resources {
                dsp: 5,
                lut: 1200,
                ff: 900,
                bram_18k: 3,
            },
        };
        let decoded = decode_csynth(&encode_csynth(&r)).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn cosim_payload_roundtrips_exactly() {
        let r = crate::CosimResult {
            max_abs_err: 1.1920929e-7,
            steps: 123_456,
        };
        let decoded = decode_cosim(&encode_cosim(&r)).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.max_abs_err.to_bits(), r.max_abs_err.to_bits());
    }

    #[test]
    fn decoders_reject_garbage() {
        assert!(decode_csynth("nope").is_err());
        assert!(decode_csynth("top gemm\nclock_ns zz").is_err());
        assert!(decode_cosim("").is_err());
        assert!(decode_cosim("cosim xyz 1").is_err());
    }
}
