//! `driver` — end-to-end orchestration of the two HLS flows.
//!
//! ```text
//!                      kernel MLIR (+ directives)
//!                       /                    \
//!            [adaptor flow]                [C++ flow]
//!        lower → LLVM IR → adaptor     emit C++ → frontend → cleanup
//!                       \                    /
//!                        vitis-sim csynth + co-simulation
//! ```
//!
//! The driver also hosts the experiment harness used by the bench binaries:
//! it runs kernels through both flows (in parallel with rayon), co-simulates
//! against the reference implementations, and collects csynth reports and
//! flow timings — plus the [`batch`] engine behind `mha-batch`, which runs
//! the whole suite on a worker pool over the content-addressed [`cache`].
//!
//! # Example: run one kernel through the adaptor flow
//!
//! ```
//! use driver::{run_flow, Directives, Flow};
//!
//! let gemm = kernels::kernel("gemm").expect("suite kernel");
//! let art = run_flow(gemm, &Directives::pipelined(1), Flow::Adaptor)?;
//! // The result is synthesis-ready LLVM IR plus a per-stage timing report.
//! assert!(art.module.top_function().is_some());
//! assert_eq!(art.report.passes[0].pass, "lower");
//! # Ok::<(), driver::DriverError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod corpus;
pub mod cosim;
pub mod experiment;
pub mod flow;
pub mod lint;
pub mod resilience;
pub mod serve;
pub mod supervisor;
pub mod warden;

pub use batch::{run_batch, BatchError, BatchOptions, BatchSummary};
pub use cache::{Cache, CacheError};
pub use corpus::{Corpus, CorpusEntry};
pub use cosim::{cosim, CosimResult};
pub use experiment::{run_experiment, run_suite, Directives, ExperimentRow};
pub use flow::{run_flow, run_flow_budgeted, run_flow_on_text, Flow, FlowArtifacts};
pub use lint::{lint_kernel, LintReport};
pub use resilience::{
    Breaker, BreakerConfig, BreakerDecision, FairQueue, FairQueueConfig, Shed, ShedClass,
    ShedReason,
};
pub use serve::{ServeConfig, ServeError, Served, Server, STREAM_MEDIA_TYPE};
pub use supervisor::{
    ChaosConfig, ChaosEngine, ChaosFault, FaultClass, Journal, JournalError, RetryPolicy,
    StageError,
};
pub use warden::{RawCompile, Warden, WardenConfig, WardenStats, CRASH_MENU};

/// Unified error type for the driver layer.
#[derive(Debug, Clone)]
pub struct DriverError(pub String);

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "driver error: {}", self.0)
    }
}

impl std::error::Error for DriverError {}

impl From<pass_core::Diagnostic> for DriverError {
    fn from(d: pass_core::Diagnostic) -> Self {
        DriverError(d.to_string())
    }
}

impl From<mlir_lite::Error> for DriverError {
    fn from(e: mlir_lite::Error) -> Self {
        DriverError(format!("mlir: {e}"))
    }
}

impl From<llvm_lite::Error> for DriverError {
    fn from(e: llvm_lite::Error) -> Self {
        DriverError(format!("llvm: {e}"))
    }
}

impl From<hls_cpp::Error> for DriverError {
    fn from(e: hls_cpp::Error) -> Self {
        DriverError(format!("cpp-flow: {e}"))
    }
}

impl From<vitis_sim::CsynthError> for DriverError {
    fn from(e: vitis_sim::CsynthError) -> Self {
        DriverError(format!("csynth: {e}"))
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DriverError>;
