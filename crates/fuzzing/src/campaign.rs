//! The fuzzing campaign loop: generate → oracle stack → dedup → reduce.
//!
//! A campaign walks a contiguous seed range. Each seed becomes a kernel
//! (bit-reproducibly — see [`crate::gen`]), runs through the oracle stack,
//! and on failure is deduplicated by normalized signature: only the first
//! seed to hit a signature becomes a [`Finding`] and (optionally) gets
//! reduced; later seeds with the same signature just bump a counter. The
//! loop itself never panics and never hangs — both are oracle outcomes,
//! not campaign outcomes.

use std::collections::BTreeMap;

use crate::gen::{generate, GenConfig};
use crate::oracle::{run_legality_oracle, run_oracles, OracleOpts};
use crate::reduce::{reduce, ReduceOpts};
use crate::sig::{Failure, Signature};

/// Campaign-level knobs.
#[derive(Clone, Debug, Default)]
pub struct CampaignOpts {
    /// Kernel-shape tunables.
    pub gen: GenConfig,
    /// Oracle bounds (step limit, optional fuel/deadline).
    pub oracle: OracleOpts,
    /// Reduce each new finding automatically. `None` disables reduction.
    pub reduce: Option<ReduceOpts>,
    /// Also run the transform-legality oracle: apply every engine-approved
    /// interchange and require bit-exact results.
    pub legality: bool,
}

/// One deduplicated failure: the first seed that hit a signature.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Seed whose kernel first exposed this signature.
    pub seed: u64,
    /// The failure as the oracle reported it.
    pub failure: Failure,
    /// Normalized dedup identity.
    pub signature: Signature,
    /// The offending kernel text, exactly as generated.
    pub kernel: String,
    /// Minimized reproducer, when reduction ran and shrank anything.
    pub reduced: Option<String>,
    /// How many seeds in the range hit this same signature.
    pub hits: u64,
}

/// Aggregate result of one campaign.
#[derive(Debug, Default)]
pub struct CampaignResult {
    /// Seeds attempted.
    pub attempts: u64,
    /// Seeds whose kernel passed every oracle.
    pub passed: u64,
    /// Seeds where the legality oracle exercised a real interchange
    /// (0 unless [`CampaignOpts::legality`] is set).
    pub interchanged: u64,
    /// Unique findings keyed by signature (BTreeMap for stable ordering).
    pub findings: BTreeMap<Signature, Finding>,
}

impl CampaignResult {
    /// True when every seed passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// How a campaign executes one kernel against the oracle stack: the
/// in-process default, or an injected runner that ships the kernel to an
/// isolated worker process (`mha-fuzz --isolate`, via `driver::warden`).
/// Returns whether the legality oracle exercised a real interchange.
pub type OracleRunner<'a> = dyn Fn(&str, u64, &CampaignOpts) -> Result<bool, Failure> + 'a;

/// Run seeds `[start, start + count)`. `progress` receives one human line
/// per event worth narrating (new finding, reduction done); callers route
/// it to stderr so stdout can stay machine-readable.
pub fn run_campaign(
    start: u64,
    count: u64,
    opts: &CampaignOpts,
    progress: &mut dyn FnMut(&str),
) -> CampaignResult {
    run_campaign_with(start, count, opts, &run_all, progress)
}

/// [`run_campaign`] with an injected [`OracleRunner`]. Reduction goes
/// through the same runner, so a crash finding reduces under isolation —
/// each candidate that kills the worker is contained exactly like the
/// original.
pub fn run_campaign_with(
    start: u64,
    count: u64,
    opts: &CampaignOpts,
    runner: &OracleRunner<'_>,
    progress: &mut dyn FnMut(&str),
) -> CampaignResult {
    let mut result = CampaignResult::default();
    for seed in start..start.saturating_add(count) {
        result.attempts += 1;
        let kernel = generate(seed, &opts.gen);
        match runner(&kernel.text, seed, opts) {
            Ok(exercised) => {
                result.passed += 1;
                result.interchanged += u64::from(exercised);
            }
            Err(failure) => {
                let signature = failure.signature();
                if let Some(existing) = result.findings.get_mut(&signature) {
                    existing.hits += 1;
                    continue;
                }
                progress(&format!("seed {seed}: new failure {failure}"));
                let reduced = opts.reduce.as_ref().and_then(|ropts| {
                    let r = reduce(&kernel.text, ropts, &mut |cand| {
                        matches!(
                            runner(cand, seed, opts),
                            Err(f) if f.signature() == signature
                        )
                    });
                    progress(&format!(
                        "seed {seed}: reduced {} -> {} lines in {} attempts",
                        kernel.text.lines().count(),
                        r.text.lines().count(),
                        r.attempts
                    ));
                    (r.accepted > 0).then_some(r.text)
                });
                result.findings.insert(
                    signature.clone(),
                    Finding {
                        seed,
                        failure,
                        signature,
                        kernel: kernel.text,
                        reduced,
                        hits: 1,
                    },
                );
            }
        }
    }
    result
}

/// Re-run one corpus entry: regenerate the seed's kernel (or use the
/// provided text) and report the failure, if it still fails.
pub fn replay(seed: u64, text: Option<&str>, opts: &CampaignOpts) -> Result<(), Failure> {
    let owned;
    let src = match text {
        Some(t) => t,
        None => {
            owned = generate(seed, &opts.gen).text;
            &owned
        }
    };
    run_all(src, seed, opts).map(|_| ())
}

/// The full oracle stack plus (when enabled) the legality oracle. Returns
/// whether the legality oracle exercised a real interchange.
fn run_all(src: &str, seed: u64, opts: &CampaignOpts) -> Result<bool, Failure> {
    run_oracles(src, seed, &opts.oracle)?;
    if opts.legality {
        run_legality_oracle(src, seed, &opts.oracle)
    } else {
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_reproducible() {
        let opts = CampaignOpts::default();
        let mut sink = |_: &str| {};
        let a = run_campaign(0, 20, &opts, &mut sink);
        let b = run_campaign(0, 20, &opts, &mut sink);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.passed, b.passed);
        let ka: Vec<_> = a.findings.keys().collect();
        let kb: Vec<_> = b.findings.keys().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn duplicate_signatures_collapse_to_one_finding() {
        // Force failures by starving the budget: every seed trips the same
        // budget signature, so the campaign must report exactly one finding
        // with many hits.
        let opts = CampaignOpts {
            oracle: OracleOpts {
                fuel: Some(1),
                ..OracleOpts::default()
            },
            reduce: None,
            ..CampaignOpts::default()
        };
        let mut sink = |_: &str| {};
        let r = run_campaign(0, 10, &opts, &mut sink);
        assert_eq!(r.passed, 0);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings.keys());
        assert_eq!(r.findings.values().next().unwrap().hits, 10);
    }

    #[test]
    fn replay_matches_campaign_verdict() {
        let opts = CampaignOpts::default();
        assert!(replay(0, None, &opts).is_ok());
        let starved = CampaignOpts {
            oracle: OracleOpts {
                fuel: Some(1),
                ..OracleOpts::default()
            },
            ..CampaignOpts::default()
        };
        assert!(replay(0, None, &starved).is_err());
    }
}
