//! Normalized failure signatures for deduplication.
//!
//! Two failures are "the same bug" when they have the same *oracle kind*,
//! the same *stage*, and the same *stable message prefix*. Raw messages
//! embed line numbers, element indices, and float values that vary from
//! kernel to kernel; normalization strips those (digit runs become `#`)
//! and truncates, so a signature survives reduction — the minimized kernel
//! still fails with the identical signature even though its line numbers
//! and values changed.

use std::fmt;

/// Which oracle tripped. The set is closed so signatures stay stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Generated/loaded text failed to parse.
    Parse,
    /// A verifier rejected the IR (including verify-after-each-pass).
    Verify,
    /// print ∘ parse was not the identity at some level.
    RoundTrip,
    /// A stage returned an error (lowering, adaptor, emission, frontend).
    Stage,
    /// The two flows computed different results.
    Differential,
    /// Interpreter trap during execution (OOB, step limit, type error).
    Exec,
    /// A stage panicked (caught by `catch_unwind`).
    Panic,
    /// A budget (deadline/fuel) tripped — the no-hang oracle.
    Budget,
    /// An engine-approved "legal" transform changed observable results.
    Legality,
    /// The isolated worker *process* died running the oracles (segfault,
    /// stack overflow past the guard, OOM kill) — only reachable under
    /// `mha-fuzz --isolate`, where the warden turns process death into a
    /// reducible finding instead of a dead campaign.
    Crash,
}

impl OracleKind {
    /// Stable lowercase name used in signatures and corpus entries.
    pub fn as_str(self) -> &'static str {
        match self {
            OracleKind::Parse => "parse",
            OracleKind::Verify => "verify",
            OracleKind::RoundTrip => "round-trip",
            OracleKind::Stage => "stage",
            OracleKind::Differential => "differential",
            OracleKind::Exec => "exec",
            OracleKind::Panic => "panic",
            OracleKind::Budget => "budget",
            OracleKind::Legality => "legality",
            OracleKind::Crash => "crash",
        }
    }

    /// Inverse of [`OracleKind::as_str`].
    pub fn parse_name(s: &str) -> Option<OracleKind> {
        Some(match s {
            "parse" => OracleKind::Parse,
            "verify" => OracleKind::Verify,
            "round-trip" => OracleKind::RoundTrip,
            "stage" => OracleKind::Stage,
            "differential" => OracleKind::Differential,
            "exec" => OracleKind::Exec,
            "panic" => OracleKind::Panic,
            "budget" => OracleKind::Budget,
            "legality" => OracleKind::Legality,
            "crash" => OracleKind::Crash,
            _ => return None,
        })
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One oracle failure, before normalization.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which oracle rejected the kernel.
    pub oracle: OracleKind,
    /// Pipeline stage that was running (`mlir-parse`, `adaptor`,
    /// `exec-cpp`, ...).
    pub stage: String,
    /// The raw error / panic / mismatch message.
    pub message: String,
}

impl Failure {
    /// Build a failure record.
    pub fn new(oracle: OracleKind, stage: &str, message: impl Into<String>) -> Failure {
        Failure {
            oracle,
            stage: stage.to_string(),
            message: message.into(),
        }
    }

    /// The normalized signature used for dedup.
    pub fn signature(&self) -> Signature {
        Signature::new(self.oracle, &self.stage, &self.message)
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.oracle, self.stage, self.message)
    }
}

/// A normalized, dedup-ready failure identity.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(String);

/// Longest normalized message prefix kept in a signature. Long enough to
/// distinguish different verifier complaints, short enough that trailing
/// kernel-specific detail does not split one bug into many signatures.
const MESSAGE_PREFIX_LEN: usize = 96;

impl Signature {
    /// Normalize `(oracle, stage, message)` into a signature.
    pub fn new(oracle: OracleKind, stage: &str, message: &str) -> Signature {
        Signature(format!(
            "{}/{}: {}",
            oracle.as_str(),
            stage,
            normalize_message(message)
        ))
    }

    /// Reconstruct a signature from its rendered form (corpus files).
    pub fn from_rendered(s: &str) -> Signature {
        Signature(s.to_string())
    }

    /// The canonical rendered form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Short stable hex id, used in corpus filenames.
    pub fn hex_id(&self) -> String {
        format!("{:016x}", kernels::fnv1a64(self.0.as_bytes()))
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Collapse kernel-specific variation: first line only, digit runs become
/// `#`, whitespace runs collapse, truncated to a stable prefix.
fn normalize_message(msg: &str) -> String {
    let first_line = msg.lines().next().unwrap_or("");
    let mut out = String::with_capacity(first_line.len().min(MESSAGE_PREFIX_LEN));
    let mut in_digits = false;
    let mut in_space = false;
    for c in first_line.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
            in_space = false;
        } else if c.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
            in_digits = false;
        } else {
            out.push(c);
            in_digits = false;
            in_space = false;
        }
        if out.len() >= MESSAGE_PREFIX_LEN {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_whitespace_normalize_away() {
        let a = Signature::new(
            OracleKind::Exec,
            "exec-adaptor",
            "OOB at offset 132+4 in 256",
        );
        let b = Signature::new(
            OracleKind::Exec,
            "exec-adaptor",
            "OOB at offset 36+8  in 64",
        );
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "exec/exec-adaptor: OOB at offset #+# in #");
    }

    #[test]
    fn different_stage_or_kind_split_signatures() {
        let a = Signature::new(OracleKind::Exec, "exec-adaptor", "boom");
        let b = Signature::new(OracleKind::Exec, "exec-cpp", "boom");
        let c = Signature::new(OracleKind::Panic, "exec-adaptor", "boom");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn long_messages_truncate_and_multiline_keeps_first_line() {
        let long = format!("prefix {}\nsecond line", "x".repeat(300));
        let s = Signature::new(OracleKind::Stage, "lower", &long);
        assert!(s.as_str().len() < 130);
        assert!(!s.as_str().contains("second"));
    }

    #[test]
    fn hex_id_is_stable() {
        let s = Signature::new(OracleKind::Differential, "compare", "buffer B differs");
        assert_eq!(s.hex_id(), s.hex_id());
        assert_eq!(s.hex_id().len(), 16);
    }
}
