//! Crash-resilient structured fuzzing of the adaptor stack.
//!
//! Four layers, composed by the `mha-fuzz` / `mha-reduce` binaries in the
//! driver crate:
//!
//! * [`rng`] — a stable SplitMix64 stream so corpus entries replay from a
//!   seed alone, forever.
//! * [`gen`] — a seeded generator of valid-by-construction MLIR-lite
//!   kernels (multi-loop and imperfect nests, guards, accumulation, relu,
//!   multiple buffers, degenerate bounds).
//! * [`oracle`] — the checks every kernel must survive: parse/verify,
//!   print∘parse round-trips at both IR levels, the adaptor flow with
//!   verify-after-each-pass, the HLS-C++ flow, and bit-exact differential
//!   execution — each stage under `catch_unwind` and a [`pass_core`]
//!   budget so panics and hangs become findings, not fuzzer deaths.
//! * [`sig`] + [`mod@reduce`] + [`campaign`] — normalized failure signatures
//!   for dedup, a delta-debugging text minimizer that preserves the
//!   signature, and the seed-range loop tying it together.

#![warn(missing_docs)]

pub mod campaign;
pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod rng;
pub mod sig;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignOpts, CampaignResult, Finding, OracleRunner,
};
pub use gen::{generate, GenConfig, GeneratedKernel, TOP_NAME};
pub use oracle::{run_legality_oracle, run_oracles, OracleOpts};
pub use reduce::{reduce, ReduceOpts, ReduceResult};
pub use sig::{Failure, OracleKind, Signature};
