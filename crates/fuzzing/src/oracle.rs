//! The oracle stack: every check a generated kernel must survive.
//!
//! A kernel passes when *all* oracles pass; the first failure wins and is
//! reported with its stage, so a signature pins down both *what* broke and
//! *where*. The stack, in order:
//!
//! 1. **parse + verify** — generated text must parse and verify (a failure
//!    here is a generator bug or a parser regression).
//! 2. **MLIR round-trip** — `print ∘ parse` must be the identity on the
//!    printed form at the MLIR-lite level.
//! 3. **lower + adaptor** — the adaptor flow must legalize the module; the
//!    pass manager's verify-after-each-pass is on, so a pass that corrupts
//!    the IR is caught at the pass that did it.
//! 4. **LLVM round-trip** — the printed `.ll` must re-parse and re-print
//!    identically.
//! 5. **C++ flow** — emission, the frontend, and the cleanup fixpoint must
//!    succeed on the same kernel.
//! 6. **differential execution** — both modules run under
//!    [`llvm_lite::interp`] on deterministic pseudo-random inputs derived
//!    from the seed; every output buffer must match bit-for-bit.
//!
//! Every stage runs under `catch_unwind` and a [`pass_core::Budget`], so a
//! panic becomes a [`OracleKind::Panic`] failure, an infinite loop becomes
//! a [`OracleKind::Budget`] trip (or an interpreter step-limit
//! [`OracleKind::Exec`] trap) — never a stuck or dead fuzzer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use llvm_lite::interp::{Interpreter, RtVal};
use mlir_lite::MType;
use pass_core::{Budget, BudgetError};

use crate::gen::TOP_NAME;
use crate::sig::{Failure, OracleKind};

/// Knobs bounding one oracle run.
#[derive(Clone, Debug)]
pub struct OracleOpts {
    /// Wall-clock deadline for the whole attempt (None = unbounded; keep
    /// it off when bit-reproducibility across machines matters).
    pub deadline_ms: Option<u64>,
    /// Shared fuel pool for the attempt's pass pipelines.
    pub fuel: Option<u64>,
    /// Interpreter instruction budget per execution.
    pub step_limit: u64,
}

impl Default for OracleOpts {
    fn default() -> OracleOpts {
        OracleOpts {
            deadline_ms: None,
            fuel: None,
            // Generous for 8x8 kernels (they run ~1e4 steps) while still
            // catching runaway loops quickly.
            step_limit: 5_000_000,
        }
    }
}

impl OracleOpts {
    fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(f) = self.fuel {
            b = b.with_fuel(f);
        }
        b
    }
}

/// Run `work` with panic and budget classification for `stage`.
fn guarded<T>(
    stage: &str,
    oracle: OracleKind,
    work: impl FnOnce() -> Result<T, String>,
) -> Result<T, Failure> {
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(msg)) => {
            // A budget trip travels through stringly error channels; give
            // it its own oracle kind so hangs dedup apart from real bugs.
            if BudgetError::from_rendered(&msg).is_some() {
                Err(Failure::new(OracleKind::Budget, stage, msg))
            } else {
                Err(Failure::new(oracle, stage, msg))
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(Failure::new(OracleKind::Panic, stage, msg))
        }
    }
}

/// Drive one kernel through the full oracle stack. `seed` feeds the
/// deterministic input generator for differential execution.
pub fn run_oracles(src: &str, seed: u64, opts: &OracleOpts) -> Result<(), Failure> {
    let budget = opts.budget();

    // 1. Parse + verify.
    let m = guarded("mlir-parse", OracleKind::Parse, || {
        mlir_lite::parser::parse_module(TOP_NAME, src).map_err(|e| e.to_string())
    })?;
    guarded("mlir-verify", OracleKind::Verify, || {
        mlir_lite::verifier::verify_module(&m).map_err(|e| e.to_string())
    })?;

    // 2. MLIR-level print/parse round-trip.
    guarded("mlir-roundtrip", OracleKind::RoundTrip, || {
        let t1 = mlir_lite::printer::print_module(&m);
        let m2 = mlir_lite::parser::parse_module(TOP_NAME, &t1)
            .map_err(|e| format!("printed module does not re-parse: {e}"))?;
        let t2 = mlir_lite::printer::print_module(&m2);
        if t1 != t2 {
            return Err(first_divergence("mlir print", &t1, &t2));
        }
        Ok(())
    })?;

    // 3. Adaptor flow (lower → adaptor with verify-after-each-pass).
    let adaptor_mod = guarded("lower", OracleKind::Stage, || {
        lowering::lower(m.deep_clone()).map_err(|e| e.to_string())
    })?;
    let adaptor_mod = guarded("adaptor", OracleKind::Stage, || {
        let mut module = adaptor_mod;
        adaptor::run_adaptor_budgeted(&mut module, &adaptor::AdaptorConfig::default(), &budget)
            .map_err(|e| e.to_string())?;
        Ok(module)
    })?;
    guarded("llvm-verify", OracleKind::Verify, || {
        llvm_lite::verifier::verify_module(&adaptor_mod).map_err(|e| e.to_string())
    })?;

    // 4. LLVM-level print/parse round-trip on the adaptor output.
    guarded("llvm-roundtrip", OracleKind::RoundTrip, || {
        let t1 = llvm_lite::printer::print_module(&adaptor_mod);
        let m2 = llvm_lite::parser::parse_module(TOP_NAME, &t1)
            .map_err(|e| format!("printed .ll does not re-parse: {e}"))?;
        let t2 = llvm_lite::printer::print_module(&m2);
        if t1 != t2 {
            return Err(first_divergence("llvm print", &t1, &t2));
        }
        Ok(())
    })?;

    // 5. C++ flow.
    let cpp_mod = guarded("emit-cpp", OracleKind::Stage, || {
        hls_cpp::emit_cpp(&m).map_err(|e| e.to_string())
    })
    .and_then(|cpp| {
        guarded("frontend", OracleKind::Stage, || {
            hls_cpp::compile_cpp(TOP_NAME, &cpp).map_err(|e| e.to_string())
        })
    })
    .and_then(|mut module| {
        guarded("cleanup", OracleKind::Stage, || {
            llvm_lite::transforms::standard_cleanup()
                .run_to_fixpoint_budgeted(&mut module, 4, &budget)
                .map_err(|e| e.to_string())?;
            Ok(module)
        })
    })?;

    // 6. Differential execution on deterministic inputs.
    let shapes = buffer_shapes(&m)?;
    let out_a = guarded("exec-adaptor", OracleKind::Exec, || {
        execute(&adaptor_mod, &shapes, seed, opts.step_limit)
    })?;
    let out_c = guarded("exec-cpp", OracleKind::Exec, || {
        execute(&cpp_mod, &shapes, seed, opts.step_limit)
    })?;
    guarded("compare", OracleKind::Differential, || {
        for (bi, (a, c)) in out_a.iter().zip(out_c.iter()).enumerate() {
            if a.len() != c.len() {
                return Err(format!(
                    "buffer {bi} length diverged: {} vs {}",
                    a.len(),
                    c.len()
                ));
            }
            for (ei, (x, y)) in a.iter().zip(c.iter()).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "flows diverged at buffer {bi} element {ei}: adaptor={x} hls-cpp={y}"
                    ));
                }
            }
        }
        Ok(())
    })
}

/// Differential legality oracle for the dependence engine.
///
/// Runs `interchange-innermost` in skip-illegal mode — every swap it
/// performs was judged safe by `analysis::depend` — then drives the
/// original and interchanged kernels through the adaptor flow and
/// executes both on the same deterministic inputs. A bit-level divergence
/// means the legality engine approved a dependence-reversing transform:
/// that is an [`OracleKind::Legality`] finding, the strongest kind of
/// analysis bug. Returns `Ok(true)` when an interchange was actually
/// exercised, `Ok(false)` when the kernel had no legal swap to make.
pub fn run_legality_oracle(src: &str, seed: u64, opts: &OracleOpts) -> Result<bool, Failure> {
    let budget = opts.budget();
    let m = guarded("mlir-parse", OracleKind::Parse, || {
        mlir_lite::parser::parse_module(TOP_NAME, src).map_err(|e| e.to_string())
    })?;
    let mut swapped = m.deep_clone();
    let changed = guarded("interchange", OracleKind::Legality, || {
        use mlir_lite::passes::MlirPass;
        mlir_lite::passes::InterchangeInnermost { skip_illegal: true }
            .run(&mut swapped)
            .map_err(|e| e.to_string())
    })?;
    if !changed {
        return Ok(false);
    }
    let shapes = buffer_shapes(&m)?;
    let exec_of = |module: &mlir_lite::MlirModule, tag: &'static str| {
        let lowered = guarded(tag, OracleKind::Stage, || {
            let mut ll = lowering::lower(module.deep_clone()).map_err(|e| e.to_string())?;
            adaptor::run_adaptor_budgeted(&mut ll, &adaptor::AdaptorConfig::default(), &budget)
                .map_err(|e| e.to_string())?;
            Ok(ll)
        })?;
        guarded(tag, OracleKind::Exec, || {
            execute(&lowered, &shapes, seed, opts.step_limit)
        })
    };
    let out_base = exec_of(&m, "legality-base")?;
    let out_swapped = exec_of(&swapped, "legality-interchanged")?;
    guarded("legality-compare", OracleKind::Legality, || {
        for (bi, (a, b)) in out_base.iter().zip(out_swapped.iter()).enumerate() {
            for (ei, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "engine-approved interchange changed results at buffer {bi} \
                         element {ei}: original={x} interchanged={y}"
                    ));
                }
            }
        }
        Ok(())
    })?;
    Ok(true)
}

/// Pull the top function's memref parameter element counts out of the
/// parsed module. Works on reduced kernels too (shapes come from the text,
/// not from the generator).
fn buffer_shapes(m: &mlir_lite::MlirModule) -> Result<Vec<usize>, Failure> {
    let f = m
        .func(TOP_NAME)
        .or_else(|| {
            // A reduced kernel may have been renamed; take the first func.
            m.ops.iter().find(|o| o.name == "func.func")
        })
        .ok_or_else(|| Failure::new(OracleKind::Parse, "shapes", "module has no function"))?;
    f.regions[0]
        .entry()
        .arg_types
        .iter()
        .enumerate()
        .map(|(i, ty)| match ty {
            MType::MemRef { shape, .. } => {
                let mut n: i64 = 1;
                for d in shape {
                    if *d < 0 {
                        return Err(Failure::new(
                            OracleKind::Exec,
                            "shapes",
                            format!("param {i} has a dynamic dimension"),
                        ));
                    }
                    n *= *d;
                }
                Ok(n.max(1) as usize)
            }
            other => Err(Failure::new(
                OracleKind::Exec,
                "shapes",
                format!("param {i} is not a memref: {other:?}"),
            )),
        })
        .collect()
}

/// Deterministic input for buffer `b`, element `k`: small exact fractions
/// so float results are reproducible and rarely overflow.
pub fn input_value(seed: u64, buf: usize, elem: usize) -> f32 {
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((buf as u64) << 32)
        .wrapping_add(elem as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (((h >> 16) % 33) as i64 - 16) as f32 / 4.0
}

/// Run the top function with per-buffer deterministic inputs; returns the
/// final contents of every buffer.
fn execute(
    module: &llvm_lite::Module,
    shapes: &[usize],
    seed: u64,
    step_limit: u64,
) -> Result<Vec<Vec<f32>>, String> {
    let mut interp = Interpreter::new(module);
    interp.step_limit = step_limit;
    let ptrs: Vec<u64> = shapes
        .iter()
        .enumerate()
        .map(|(b, &n)| {
            let data: Vec<f32> = (0..n).map(|k| input_value(seed, b, k)).collect();
            interp.mem.alloc_f32(&data)
        })
        .collect();
    let args: Vec<RtVal> = ptrs.iter().map(|p| RtVal::P(*p)).collect();
    let name = module
        .top_function()
        .map(|f| f.name.clone())
        .unwrap_or_else(|| TOP_NAME.to_string());
    interp.call(&name, &args).map_err(|e| e.to_string())?;
    ptrs.iter()
        .zip(shapes.iter())
        .map(|(p, &n)| interp.mem.read_f32(*p, n).map_err(|e| e.to_string()))
        .collect()
}

/// Render the first differing line of two texts for a round-trip failure.
fn first_divergence(what: &str, t1: &str, t2: &str) -> String {
    for (i, (a, b)) in t1.lines().zip(t2.lines()).enumerate() {
        if a != b {
            return format!("{what} not idempotent at line {}: '{a}' vs '{b}'", i + 1);
        }
    }
    format!(
        "{what} not idempotent: lengths {} vs {}",
        t1.len(),
        t2.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn a_simple_generated_kernel_passes_every_oracle() {
        // Seed 0 is pinned in the CI smoke range; it must stay clean.
        let k = generate(0, &GenConfig::default());
        let r = run_oracles(&k.text, 0, &OracleOpts::default());
        assert!(r.is_ok(), "seed 0 failed: {}\n{}", r.unwrap_err(), k.text);
    }

    #[test]
    fn legality_oracle_verifies_a_real_interchange() {
        // A perfect transpose nest: the engine approves the swap and the
        // differential check must find it bit-exact.
        let src = r#"
func.func @fuzz_top(%a: memref<4x6xf32>, %b: memref<4x6xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 6 {
      %v = affine.load %a[%i, %j] : memref<4x6xf32>
      affine.store %v, %b[%i, %j] : memref<4x6xf32>
    }
  }
  func.return
}
"#;
        let r = run_legality_oracle(src, 3, &OracleOpts::default());
        assert_eq!(r.map_err(|f| f.to_string()), Ok(true));
    }

    #[test]
    fn legality_oracle_skips_kernels_with_no_legal_swap() {
        // Skewed dependence: skip-illegal mode leaves the nest alone, so
        // nothing is exercised and the oracle trivially passes.
        let src = r#"
func.func @fuzz_top(%a: memref<8x8xf32>) {
  affine.for %i = 0 to 7 {
    affine.for %j = 0 to 7 {
      %v = affine.load %a[%i, %j + 1] : memref<8x8xf32>
      affine.store %v, %a[%i + 1, %j] : memref<8x8xf32>
    }
  }
  func.return
}
"#;
        let r = run_legality_oracle(src, 3, &OracleOpts::default());
        assert_eq!(r.map_err(|f| f.to_string()), Ok(false));
    }

    #[test]
    fn unparseable_input_fails_the_parse_oracle() {
        let f = run_oracles("this is not mlir", 0, &OracleOpts::default()).unwrap_err();
        assert_eq!(f.oracle, OracleKind::Parse);
        assert_eq!(f.stage, "mlir-parse");
    }

    #[test]
    fn hang_trips_the_budget_not_the_fuzzer() {
        let k = generate(0, &GenConfig::default());
        let opts = OracleOpts {
            fuel: Some(1),
            ..OracleOpts::default()
        };
        let f = run_oracles(&k.text, 0, &opts).unwrap_err();
        assert_eq!(f.oracle, OracleKind::Budget, "{f}");
    }

    #[test]
    fn input_values_are_deterministic_and_small() {
        for b in 0..4 {
            for k in 0..64 {
                let v = input_value(9, b, k);
                assert_eq!(v.to_bits(), input_value(9, b, k).to_bits());
                assert!(v.abs() <= 4.0);
            }
        }
    }
}
