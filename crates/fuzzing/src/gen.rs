//! Seeded structured generator of MLIR-lite kernels.
//!
//! Much richer than the single-statement proptest generator in
//! `tests/prop_differential.rs`: it produces multi-loop nests (including
//! *imperfect* nests with statements before/after an inner loop), if-style
//! guards via `arith.cmpf` + `arith.select`, multiple input/output buffers
//! of rank 1 and 2, accumulate-vs-overwrite stores, relu clamps, and
//! edge-case bounds — 0-trip and 1-trip loops, size-1 dimensions, stride-2
//! steps, and scaled (`2 * %i`) subscripts.
//!
//! Every choice is drawn from a [`Rng`] stream, so a seed
//! fully determines the kernel text: corpus entries replay from the seed
//! alone, and two runs over the same seed range produce byte-identical
//! kernels.
//!
//! Generated kernels are *valid by construction*: the generator tracks the
//! value range of every induction variable in scope and only emits
//! subscripts that stay inside the buffer's extent, so any oracle failure
//! downstream is a bug in the stack, not in the generator.

use crate::rng::Rng;

/// Name of the generated top function (and module).
pub const TOP_NAME: &str = "fuzzk";

/// One memref parameter of the generated kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufShape {
    /// Parameter name without the `%` sigil.
    pub name: String,
    /// Dimension extents (rank 1 or 2).
    pub dims: Vec<i64>,
}

impl BufShape {
    fn ty(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| format!("{d}x")).collect();
        format!("memref<{}f32>", dims.join(""))
    }
}

/// A subscript expression for one buffer dimension.
#[derive(Clone, Debug)]
enum Sub {
    /// `%iv + offset` (offset may be negative or zero).
    IvOffset { iv: usize, offset: i64 },
    /// `factor * %iv`.
    IvScaled { iv: usize, factor: i64 },
    /// A constant index.
    Const(i64),
}

/// One value source: a buffer load or a float constant.
#[derive(Clone, Debug)]
enum Operand {
    Load { buf: usize, subs: Vec<Sub> },
    Const(f64),
}

/// The arithmetic combining the operands.
#[derive(Clone, Copy, Debug)]
enum BinOp {
    Mul,
    Add,
    Sub,
}

impl BinOp {
    fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Mul => "arith.mulf",
            BinOp::Add => "arith.addf",
            BinOp::Sub => "arith.subf",
        }
    }
}

/// One store statement with optional relu / guard / accumulate stages.
#[derive(Clone, Debug)]
struct Stmt {
    dst: usize,
    dst_subs: Vec<Sub>,
    a: Operand,
    b: Option<(BinOp, Operand)>,
    negate: bool,
    relu: bool,
    /// Guard: keep the old destination value unless `val <pred> threshold`.
    guard: Option<(String, f64)>,
    accumulate: bool,
}

/// A node of the loop tree.
#[derive(Clone, Debug)]
enum Node {
    Loop {
        lb: i64,
        ub: i64,
        step: i64,
        ii: Option<u32>,
        body: Vec<Node>,
    },
    Stmt(Stmt),
}

/// In-scope induction variable: name index plus its inclusive value range.
#[derive(Clone, Copy, Debug)]
struct IvInfo {
    lb: i64,
    /// Largest value the iv actually takes (equals `lb` for 0-trip loops,
    /// which never evaluate their body, so any bound is conservative).
    max: i64,
}

/// Tunables for kernel shape; the defaults match what the rest of the
/// stack supports and keep interpreter time per kernel in the microsecond
/// range.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum loop-nest depth.
    pub max_depth: usize,
    /// Maximum direct children per region.
    pub max_region_items: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 3,
            max_region_items: 3,
        }
    }
}

/// A generated kernel: the MLIR text plus the shapes it was built from.
#[derive(Clone, Debug)]
pub struct GeneratedKernel {
    /// Seed that produced this kernel.
    pub seed: u64,
    /// The kernel MLIR text.
    pub text: String,
    /// Parameter buffers, in signature order.
    pub bufs: Vec<BufShape>,
}

/// Generate the kernel for `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> GeneratedKernel {
    let mut rng = Rng::new(seed);
    let bufs = gen_bufs(&mut rng);
    let mut state = GenState {
        rng,
        bufs: &bufs,
        cfg,
        next_loop: 0,
        next_stmt: 0,
        any_stmt: false,
    };
    let mut root = state.gen_region(0, &[]);
    if !state.any_stmt {
        // Guarantee at least one statement so every kernel exercises the
        // store path (an all-loop kernel is legal but tests little).
        let stmt = state.gen_stmt(&[]);
        root.push(Node::Stmt(stmt));
    }
    let text = render(&bufs, &root);
    GeneratedKernel { seed, text, bufs }
}

fn gen_bufs(rng: &mut Rng) -> Vec<BufShape> {
    let n = 2 + rng.below(3) as usize; // 2..=4 buffers
    let names = ["A", "B", "C", "D"];
    (0..n)
        .map(|i| {
            let rank = if rng.chance(1, 3) { 1 } else { 2 };
            let dims: Vec<i64> = (0..rank)
                .map(|_| {
                    // Mostly 8s and 4s; occasionally an edge-case size.
                    *rng.pick(&[8, 8, 8, 4, 4, 2, 1])
                })
                .collect();
            BufShape {
                name: names[i].to_string(),
                dims,
            }
        })
        .collect()
}

struct GenState<'a> {
    rng: Rng,
    bufs: &'a [BufShape],
    cfg: &'a GenConfig,
    next_loop: usize,
    next_stmt: usize,
    any_stmt: bool,
}

impl GenState<'_> {
    /// Generate one region's direct children.
    fn gen_region(&mut self, depth: usize, ivs: &[IvInfo]) -> Vec<Node> {
        let n_items = 1 + self.rng.below(self.cfg.max_region_items as u64) as usize;
        let mut out = Vec::new();
        for _ in 0..n_items {
            let loop_bias = if depth == 0 { (9, 10) } else { (1, 2) };
            let want_loop = depth < self.cfg.max_depth
                && self.rng.chance(loop_bias.0, loop_bias.1)
                && self.next_loop < 6;
            if want_loop {
                out.push(self.gen_loop(depth, ivs));
            } else {
                let s = self.gen_stmt(ivs);
                out.push(Node::Stmt(s));
            }
        }
        out
    }

    fn gen_loop(&mut self, depth: usize, ivs: &[IvInfo]) -> Node {
        self.next_loop += 1;
        // Bounds: mostly full extents, sometimes interior or degenerate.
        let lb = *self.rng.pick(&[0, 0, 0, 1]);
        let (ub, step) = if self.rng.chance(1, 8) {
            // Edge cases: 0-trip or 1-trip loop.
            if self.rng.chance(1, 2) {
                (lb, 1) // 0-trip
            } else {
                (lb + 1, 1) // 1-trip
            }
        } else {
            let extent = *self.rng.pick(&[2, 3, 4, 6, 7, 8 - lb]);
            let step = *self.rng.pick(&[1, 1, 1, 2]);
            (lb + extent, step)
        };
        let max = if ub > lb {
            lb + ((ub - 1 - lb) / step) * step
        } else {
            lb
        };
        let ii = if self.rng.chance(1, 4) {
            Some(1 + self.rng.below(3) as u32)
        } else {
            None
        };
        let mut inner = ivs.to_vec();
        inner.push(IvInfo { lb, max });
        let body = self.gen_region(depth + 1, &inner);
        Node::Loop {
            lb,
            ub,
            step,
            ii,
            body,
        }
    }

    fn gen_stmt(&mut self, ivs: &[IvInfo]) -> Stmt {
        self.any_stmt = true;
        self.next_stmt += 1;
        let dst = self.rng.below(self.bufs.len() as u64) as usize;
        let dst_subs = self.gen_subs(dst, ivs);
        let a = self.gen_operand(ivs);
        let b = if self.rng.chance(2, 3) {
            let op = *self
                .rng
                .pick(&[BinOp::Mul, BinOp::Mul, BinOp::Add, BinOp::Sub]);
            Some((op, self.gen_operand(ivs)))
        } else {
            None
        };
        let negate = self.rng.chance(1, 8);
        let relu = self.rng.chance(1, 4);
        let guard = if self.rng.chance(1, 6) {
            let pred = self.rng.pick(&["olt", "ogt", "ole", "oge"]).to_string();
            let threshold = self.gen_const();
            Some((pred, threshold))
        } else {
            None
        };
        let accumulate = self.rng.chance(1, 3);
        Stmt {
            dst,
            dst_subs,
            a,
            b,
            negate,
            relu,
            guard,
            accumulate,
        }
    }

    fn gen_operand(&mut self, ivs: &[IvInfo]) -> Operand {
        if self.rng.chance(1, 8) {
            Operand::Const(self.gen_const())
        } else {
            let buf = self.rng.below(self.bufs.len() as u64) as usize;
            let subs = self.gen_subs(buf, ivs);
            Operand::Load { buf, subs }
        }
    }

    fn gen_const(&mut self) -> f64 {
        *self
            .rng
            .pick(&[0.0, 0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 3.0, 4.0, -4.0])
    }

    /// One in-bounds subscript per dimension of `buf`.
    fn gen_subs(&mut self, buf: usize, ivs: &[IvInfo]) -> Vec<Sub> {
        let dims = self.bufs[buf].dims.clone();
        dims.iter().map(|&d| self.gen_sub(d, ivs)).collect()
    }

    fn gen_sub(&mut self, dim: i64, ivs: &[IvInfo]) -> Sub {
        // Collect every in-bounds iv-based option for this dimension.
        let mut options: Vec<Sub> = Vec::new();
        for (idx, iv) in ivs.iter().enumerate() {
            for offset in [-1i64, 0, 0, 1] {
                if iv.lb + offset >= 0 && iv.max + offset < dim {
                    options.push(Sub::IvOffset { iv: idx, offset });
                }
            }
            if iv.lb >= 0 && 2 * iv.max < dim {
                options.push(Sub::IvScaled { iv: idx, factor: 2 });
            }
        }
        if !options.is_empty() && self.rng.chance(7, 8) {
            return options[self.rng.below(options.len() as u64) as usize].clone();
        }
        Sub::Const(self.rng.range_i64(0, dim - 1))
    }
}

// ---- rendering --------------------------------------------------------

fn fmt_const(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn fmt_sub(s: &Sub) -> String {
    match s {
        Sub::IvOffset { iv, offset } => match offset {
            0 => format!("%i{iv}"),
            o if *o > 0 => format!("%i{iv} + {o}"),
            o => format!("%i{iv} - {}", -o),
        },
        Sub::IvScaled { iv, factor } => format!("{factor} * %i{iv}"),
        Sub::Const(c) => format!("{c}"),
    }
}

fn fmt_subs(subs: &[Sub]) -> String {
    let parts: Vec<String> = subs.iter().map(fmt_sub).collect();
    format!("[{}]", parts.join(", "))
}

fn render(bufs: &[BufShape], root: &[Node]) -> String {
    let params: Vec<String> = bufs
        .iter()
        .map(|b| format!("%{}: {}", b.name, b.ty()))
        .collect();
    let mut out = format!(
        "func.func @{TOP_NAME}({}) attributes {{hls.top}} {{\n",
        params.join(", ")
    );
    let mut ids = RenderIds::default();
    for node in root {
        render_node(bufs, node, 1, &mut ids, &mut out);
    }
    out.push_str("  func.return\n}\n");
    out
}

#[derive(Default)]
struct RenderIds {
    stmt: usize,
    depth: usize,
}

fn render_node(
    bufs: &[BufShape],
    node: &Node,
    indent: usize,
    ids: &mut RenderIds,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Loop {
            lb,
            ub,
            step,
            ii,
            body,
        } => {
            let iv = ids.depth;
            ids.depth += 1;
            let step_str = if *step != 1 {
                format!(" step {step}")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{pad}affine.for %i{iv} = {lb} to {ub}{step_str} {{\n"
            ));
            for child in body {
                render_node(bufs, child, indent + 1, ids, out);
            }
            match ii {
                Some(ii) => out.push_str(&format!("{pad}}} {{hls.pipeline_ii = {ii} : i32}}\n")),
                None => out.push_str(&format!("{pad}}}\n")),
            }
            ids.depth -= 1;
        }
        Node::Stmt(s) => {
            let k = ids.stmt;
            ids.stmt += 1;
            let dst_name = &bufs[s.dst].name;
            let dst_ty = bufs[s.dst].ty();
            let mut val = render_operand(bufs, &s.a, &format!("a{k}"), &pad, out);
            if let Some((op, b)) = &s.b {
                let bv = render_operand(bufs, b, &format!("b{k}"), &pad, out);
                out.push_str(&format!(
                    "{pad}%v{k} = {} {val}, {bv} : f32\n",
                    op.mnemonic()
                ));
                val = format!("%v{k}");
            }
            if s.negate {
                out.push_str(&format!("{pad}%n{k} = arith.negf {val} : f32\n"));
                val = format!("%n{k}");
            }
            if s.relu {
                out.push_str(&format!("{pad}%z{k} = arith.constant 0.0 : f32\n"));
                out.push_str(&format!(
                    "{pad}%p{k} = arith.cmpf olt, {val}, %z{k} : f32\n"
                ));
                out.push_str(&format!(
                    "{pad}%r{k} = arith.select %p{k}, %z{k}, {val} : f32\n"
                ));
                val = format!("%r{k}");
            }
            if s.accumulate {
                out.push_str(&format!(
                    "{pad}%old{k} = affine.load %{dst_name}{} : {dst_ty}\n",
                    fmt_subs(&s.dst_subs)
                ));
                out.push_str(&format!("{pad}%s{k} = arith.addf %old{k}, {val} : f32\n"));
                val = format!("%s{k}");
            }
            if let Some((pred, threshold)) = &s.guard {
                // Conditional store: keep the previous value unless the
                // predicate holds (if-guard expressed with cmpf + select).
                out.push_str(&format!(
                    "{pad}%t{k} = arith.constant {} : f32\n",
                    fmt_const(*threshold)
                ));
                out.push_str(&format!(
                    "{pad}%g{k} = arith.cmpf {pred}, {val}, %t{k} : f32\n"
                ));
                out.push_str(&format!(
                    "{pad}%prev{k} = affine.load %{dst_name}{} : {dst_ty}\n",
                    fmt_subs(&s.dst_subs)
                ));
                out.push_str(&format!(
                    "{pad}%w{k} = arith.select %g{k}, {val}, %prev{k} : f32\n"
                ));
                val = format!("%w{k}");
            }
            out.push_str(&format!(
                "{pad}affine.store {val}, %{dst_name}{} : {dst_ty}\n",
                fmt_subs(&s.dst_subs)
            ));
        }
    }
}

/// Emit the ops producing one operand; returns the SSA name to reference.
fn render_operand(
    bufs: &[BufShape],
    op: &Operand,
    name: &str,
    pad: &str,
    out: &mut String,
) -> String {
    match op {
        Operand::Const(v) => {
            out.push_str(&format!(
                "{pad}%{name} = arith.constant {} : f32\n",
                fmt_const(*v)
            ));
            format!("%{name}")
        }
        Operand::Load { buf, subs } => {
            let b = &bufs[*buf];
            out.push_str(&format!(
                "{pad}%{name} = affine.load %{}{} : {}\n",
                b.name,
                fmt_subs(subs),
                b.ty()
            ));
            format!("%{name}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.text, b.text, "seed {seed}");
        }
    }

    #[test]
    fn seeds_produce_distinct_kernels() {
        let cfg = GenConfig::default();
        let a = generate(1, &cfg);
        let b = generate(2, &cfg);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn generated_kernels_parse_and_verify() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let k = generate(seed, &cfg);
            let m = mlir_lite::parser::parse_module(TOP_NAME, &k.text)
                .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", k.text));
            mlir_lite::verifier::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed} does not verify: {e}\n{}", k.text));
        }
    }

    #[test]
    fn generator_covers_the_advertised_shapes() {
        let cfg = GenConfig::default();
        let mut saw_nest = false;
        let mut saw_guard = false;
        let mut saw_accumulate = false;
        let mut saw_degenerate = false;
        let mut saw_step = false;
        let mut saw_scaled = false;
        for seed in 0..300 {
            let k = generate(seed, &cfg);
            let nesting = k
                .text
                .lines()
                .filter(|l| l.trim_start().starts_with("affine.for"))
                .count();
            saw_nest |= nesting >= 2;
            saw_guard |= k.text.contains("%prev");
            saw_accumulate |= k.text.contains("%old");
            saw_degenerate |= k.text.contains("= 0 to 0") || k.text.contains("= 1 to 1");
            saw_step |= k.text.contains("step 2");
            saw_scaled |= k.text.contains("2 * %i");
        }
        assert!(saw_nest, "no multi-loop kernels in 300 seeds");
        assert!(saw_guard, "no guarded stores in 300 seeds");
        assert!(saw_accumulate, "no accumulating stores in 300 seeds");
        assert!(saw_degenerate, "no 0/1-trip loops in 300 seeds");
        assert!(saw_step, "no stride-2 loops in 300 seeds");
        assert!(saw_scaled, "no scaled subscripts in 300 seeds");
    }
}
