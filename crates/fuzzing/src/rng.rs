//! Deterministic pseudo-random numbers for the fuzzer.
//!
//! The generator is [SplitMix64]: tiny, fast, full 64-bit state, and —
//! crucially for this crate — *stable*. Corpus entries record only a seed;
//! the kernel they describe must be reconstructible bit-for-bit by any
//! future build, so the fuzzer cannot depend on a library RNG whose stream
//! might change between versions.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A seeded deterministic RNG. Cheap to copy; copies continue the same
/// stream independently.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Start a stream from `seed`. Equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for fuzzing-sized ranges (n << 2^64).
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
