//! Delta-debugging reduction of failing kernels.
//!
//! The reducer works on kernel *text*, not on the generator's tree, so it
//! can minimize anything the oracle rejects — including hand-written
//! reproducers and kernels from old corpora whose generator version is
//! gone. It repeatedly proposes structure-respecting edits:
//!
//! * **drop a unit** — a whole `affine.for { ... }` block (at any nesting
//!   depth) or a statement group (the contiguous lines feeding one
//!   `affine.store`),
//! * **shrink a loop** — lower an upper bound to make the loop 1-trip,
//!   drop a `step`, or drop a pipeline-II attribute,
//! * **replace a subexpression** — rewrite any f32-producing op line to
//!   `arith.constant 0.0 : f32`, keeping the SSA name alive,
//! * **drop a buffer** — remove a function parameter no longer referenced
//!   in the body.
//!
//! An edit is kept only when the caller's check says the candidate still
//! fails *with the same signature* — a candidate that passes, or fails
//! differently, is discarded. Greedy first-accept with restart runs to a
//! fixpoint or until the attempt budget is spent. Every accepted edit
//! strictly shrinks some measure (line count, trip count, non-constant op
//! count, parameter count), so the fixpoint terminates.

/// Bounds for one reduction run.
#[derive(Clone, Debug)]
pub struct ReduceOpts {
    /// Maximum number of candidate texts tried (oracle invocations).
    pub max_attempts: usize,
}

impl Default for ReduceOpts {
    fn default() -> ReduceOpts {
        ReduceOpts { max_attempts: 500 }
    }
}

/// What a reduction run did.
#[derive(Clone, Debug)]
pub struct ReduceResult {
    /// The minimized kernel text (equals the input if nothing shrank).
    pub text: String,
    /// Candidate texts tried against the check.
    pub attempts: usize,
    /// Edits accepted (kept because the signature was preserved).
    pub accepted: usize,
}

/// Minimize `text` while `still_fails` keeps returning true for the
/// candidate. The closure encapsulates "fails with the same signature";
/// the reducer never inspects failures itself.
pub fn reduce(
    text: &str,
    opts: &ReduceOpts,
    still_fails: &mut dyn FnMut(&str) -> bool,
) -> ReduceResult {
    let mut current = text.to_string();
    let mut attempts = 0;
    let mut accepted = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if cand == current {
                continue;
            }
            if attempts >= opts.max_attempts {
                break 'outer;
            }
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                accepted += 1;
                // Restart: the accepted edit usually unlocks bigger drops
                // (an emptied loop, a now-unused buffer).
                continue 'outer;
            }
        }
        break;
    }
    ReduceResult {
        text: current,
        attempts,
        accepted,
    }
}

/// All single-edit candidates for `text`, most aggressive first.
fn candidates(text: &str) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    // Body = everything between the `func.func ... {` line and the
    // trailing `func.return` / `}` lines. Fall back to the whole text if
    // the frame is not recognizable (reduction should degrade, not die).
    let body_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("func.func"))
        .map(|i| i + 1)
        .unwrap_or(0);
    let body_end = lines
        .iter()
        .rposition(|l| l.trim() == "func.return")
        .unwrap_or(lines.len());

    // 1. Drop whole units, outermost and largest first.
    let mut units = Vec::new();
    collect_units(&lines, body_start, body_end, &mut units);
    units.sort_by_key(|(a, b)| std::cmp::Reverse(b - a));
    for &(a, b) in &units {
        out.push(drop_lines(&lines, a, b));
    }

    // 2. Loop shrinking: 1-trip bounds, drop step, drop pipeline attr.
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("affine.for") {
            if let Some((lb, ub)) = parse_bounds(trimmed) {
                if ub > lb + 1 {
                    out.push(replace_line(
                        &lines,
                        i,
                        &line.replacen(&format!(" to {ub}"), &format!(" to {}", lb + 1), 1),
                    ));
                }
            }
            if let Some(pos) = line.find(" step ") {
                let rest = &line[pos + 6..];
                let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                if !digits.is_empty() {
                    let mut edited = line.to_string();
                    edited.replace_range(pos..pos + 6 + digits.len(), "");
                    out.push(replace_line(&lines, i, &edited));
                }
            }
        } else if trimmed.starts_with("} {") {
            // `} {hls.pipeline_ii = 2 : i32}` -> bare close brace.
            let indent = &line[..line.len() - trimmed.len()];
            out.push(replace_line(&lines, i, &format!("{indent}}}")));
        }
    }

    // 3. Per-line edits: drop a dead definition (an SSA name no other line
    //    references), else replace an f32 subexpression with a constant,
    //    preserving the name.
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('%') {
            continue;
        }
        let Some(eq) = trimmed.find(" = ") else {
            continue;
        };
        let lhs = &trimmed[..eq];
        let dead = !lines
            .iter()
            .enumerate()
            .any(|(j, l)| j != i && references(l, lhs));
        if dead {
            out.push(drop_lines(&lines, i, i + 1));
        } else if trimmed.ends_with(": f32")
            && !trimmed.contains("arith.constant")
            && !trimmed.contains("arith.cmpf")
        {
            let indent = &line[..line.len() - trimmed.len()];
            out.push(replace_line(
                &lines,
                i,
                &format!("{indent}{lhs} = arith.constant 0.0 : f32"),
            ));
        }
    }

    // 4. Drop unreferenced buffers from the signature.
    if body_start > 0 {
        let header = lines[body_start - 1];
        if let (Some(open), Some(close)) = (header.find('('), header.find(')')) {
            let params: Vec<&str> = header[open + 1..close]
                .split(", ")
                .filter(|p| !p.is_empty())
                .collect();
            let body_text = lines[body_start..body_end].join("\n");
            for (pi, param) in params.iter().enumerate() {
                let name = param.split(':').next().unwrap_or("").trim();
                if !name.is_empty() && !references(&body_text, name) {
                    let mut kept = params.clone();
                    kept.remove(pi);
                    let new_header = format!(
                        "{}({}{}",
                        &header[..open],
                        kept.join(", "),
                        &header[close..]
                    );
                    out.push(replace_line(&lines, body_start - 1, &new_header));
                }
            }
        }
    }

    out
}

/// Recursively collect droppable `(start, end_exclusive)` line ranges:
/// balanced `affine.for` blocks and statement groups ending at an
/// `affine.store`.
fn collect_units(lines: &[&str], start: usize, end: usize, out: &mut Vec<(usize, usize)>) {
    let mut i = start;
    while i < end {
        let trimmed = lines[i].trim_start();
        if trimmed.starts_with("affine.for") {
            let close = matching_close(lines, i, end);
            out.push((i, close + 1));
            collect_units(lines, i + 1, close, out);
            i = close + 1;
        } else if trimmed.starts_with('}') {
            // Unbalanced close inside our range: structural confusion,
            // stop rather than emit a brace-breaking unit.
            return;
        } else {
            let mut j = i;
            while j < end {
                let t = lines[j].trim_start();
                if t.starts_with("affine.for") || t.starts_with('}') {
                    break;
                }
                j += 1;
                if t.starts_with("affine.store") {
                    break;
                }
            }
            out.push((i, j));
            i = j;
        }
    }
}

/// Index of the line closing the block opened at `open` (which ends in
/// `{`). Falls back to `end - 1` on malformed input.
fn matching_close(lines: &[&str], open: usize, end: usize) -> usize {
    let mut depth = 1usize;
    for (i, line) in lines.iter().enumerate().take(end).skip(open + 1) {
        let t = line.trim();
        if t.starts_with('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        } else if t.ends_with('{') {
            depth += 1;
        }
    }
    end.saturating_sub(1)
}

/// Does `body` reference SSA name `name` (e.g. `%A`) with a proper
/// boundary after it? Guards against `%A` matching inside `%AB`.
fn references(body: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = body[from..].find(name) {
        let after = from + pos + name.len();
        let boundary = body[after..]
            .chars()
            .next()
            .map(|c| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(true);
        if boundary {
            return true;
        }
        from = after;
    }
    false
}

fn drop_lines(lines: &[&str], a: usize, b: usize) -> String {
    let mut kept: Vec<&str> = Vec::with_capacity(lines.len());
    kept.extend_from_slice(&lines[..a]);
    kept.extend_from_slice(&lines[b..]);
    kept.join("\n") + "\n"
}

fn replace_line(lines: &[&str], i: usize, with: &str) -> String {
    let mut v: Vec<&str> = lines.to_vec();
    v[i] = with;
    v.join("\n") + "\n"
}

/// Parse `lb` and `ub` from a trimmed `affine.for %iN = lb to ub ...` line.
fn parse_bounds(trimmed: &str) -> Option<(i64, i64)> {
    let eq = trimmed.find(" = ")?;
    let rest = &trimmed[eq + 3..];
    let to = rest.find(" to ")?;
    let lb: i64 = rest[..to].trim().parse().ok()?;
    let after = &rest[to + 4..];
    let ub_str: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    let ub: i64 = ub_str.parse().ok()?;
    Some((lb, ub))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    const SMALL: &str = "\
func.func @fuzzk(%A: memref<8xf32>, %B: memref<8xf32>) attributes {hls.top} {
  affine.for %i0 = 0 to 8 {
    %a0 = affine.load %B[%i0] : memref<8xf32>
    affine.store %a0, %A[%i0] : memref<8xf32>
  } {hls.pipeline_ii = 2 : i32}
  %a1 = arith.constant 1.0 : f32
  affine.store %a1, %A[0] : memref<8xf32>
  func.return
}
";

    #[test]
    fn reduces_to_nothing_when_anything_fails() {
        // A check that accepts every candidate minimizes all the way down.
        let r = reduce(SMALL, &ReduceOpts::default(), &mut |_| true);
        assert!(r.accepted > 0);
        assert!(r.text.len() < SMALL.len());
        // The frame survives; all units and the now-unused %B are gone.
        assert!(r.text.contains("func.func"));
        assert!(!r.text.contains("affine.for"));
        assert!(!r.text.contains("%B"));
    }

    #[test]
    fn keeps_lines_the_check_needs() {
        // Signature depends on the store to %A[0]; that unit must survive.
        let mut check = |t: &str| t.contains("affine.store %a1, %A[0]");
        let r = reduce(SMALL, &ReduceOpts::default(), &mut check);
        assert!(r.text.contains("affine.store %a1, %A[0]"));
        assert!(
            !r.text.contains("affine.for"),
            "loop should drop:\n{}",
            r.text
        );
    }

    #[test]
    fn attempt_budget_is_respected() {
        let opts = ReduceOpts { max_attempts: 3 };
        let r = reduce(SMALL, &opts, &mut |_| false);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.text, SMALL);
    }

    #[test]
    fn candidates_preserve_brace_balance() {
        for seed in 0..40 {
            let k = generate(seed, &GenConfig::default());
            for cand in candidates(&k.text) {
                let opens = cand.matches('{').count();
                let closes = cand.matches('}').count();
                assert_eq!(opens, closes, "seed {seed} candidate:\n{cand}");
            }
        }
    }

    #[test]
    fn shrunk_generated_kernels_still_parse() {
        // Reduction under an accept-all check must go through states that
        // all parse: each candidate is structure-respecting.
        for seed in [3u64, 11, 29] {
            let k = generate(seed, &GenConfig::default());
            let mut check =
                |t: &str| mlir_lite::parser::parse_module(crate::gen::TOP_NAME, t).is_ok();
            let r = reduce(&k.text, &ReduceOpts::default(), &mut check);
            assert!(
                mlir_lite::parser::parse_module(crate::gen::TOP_NAME, &r.text).is_ok(),
                "seed {seed} reduced to unparseable:\n{}",
                r.text
            );
        }
    }
}
