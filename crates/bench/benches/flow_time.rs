//! **Figure 2 (rigorous)** — Criterion measurement of flow conversion time:
//! the adaptor pipeline vs the HLS-C++ emission + re-frontend detour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use driver::{run_flow, Directives, Flow};

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_time");
    let d = Directives::pipelined(1);
    for kname in ["gemm", "fir", "jacobi2d"] {
        let k = kernels::kernel(kname).expect("kernel");
        group.bench_with_input(BenchmarkId::new("adaptor", kname), k, |b, k| {
            b.iter(|| run_flow(k, &d, Flow::Adaptor).expect("flow"));
        });
        group.bench_with_input(BenchmarkId::new("hls-cpp", kname), k, |b, k| {
            b.iter(|| run_flow(k, &d, Flow::Cpp).expect("flow"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
