//! IR infrastructure micro-benchmarks: parser round-trip, mem2reg, and the
//! adaptor pipeline in isolation.

use adaptor::AdaptorConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use driver::{flow::prepare_mlir, Directives};

fn lowered_gemm() -> llvm_lite::Module {
    let k = kernels::kernel("gemm").expect("kernel");
    let m = prepare_mlir(k, &Directives::pipelined(1)).expect("parse");
    lowering::lower(m).expect("lower")
}

fn bench_ir(c: &mut Criterion) {
    let module = lowered_gemm();
    let text = llvm_lite::printer::print_module(&module);

    c.bench_function("llvm_parse_gemm", |b| {
        b.iter(|| llvm_lite::parser::parse_module("gemm", &text).expect("parse"));
    });

    c.bench_function("llvm_print_gemm", |b| {
        b.iter(|| llvm_lite::printer::print_module(&module));
    });

    c.bench_function("adaptor_pipeline_gemm", |b| {
        b.iter_batched(
            lowered_gemm,
            |mut m| adaptor::run_adaptor(&mut m, &AdaptorConfig::default()).expect("adaptor"),
            criterion::BatchSize::SmallInput,
        );
    });

    let k = kernels::kernel("gemm").expect("kernel");
    c.bench_function("mlir_parse_gemm", |b| {
        b.iter(|| mlir_lite::parser::parse_module("gemm", k.mlir).expect("parse"));
    });

    // mem2reg over the C-frontend output (its natural workload).
    let cpp_module = {
        let m = prepare_mlir(k, &Directives::pipelined(1)).expect("parse");
        let cpp = hls_cpp::emit_cpp(&m).expect("emit");
        hls_cpp::compile_cpp("gemm", &cpp).expect("frontend")
    };
    c.bench_function("mem2reg_gemm", |b| {
        b.iter_batched(
            || cpp_module.clone(),
            |mut m| {
                use llvm_lite::transforms::ModulePass;
                llvm_lite::transforms::Mem2Reg.run(&mut m).expect("mem2reg")
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);
