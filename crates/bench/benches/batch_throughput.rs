//! **Batch throughput** — cold vs warm wall-clock of the parallel batch
//! driver over the full kernel suite, and the cache speedup between them.
//!
//! The cold pass starts from an empty cache directory and computes every
//! stage; the warm pass reruns the identical batch and must serve all
//! 3 × |suite| stage artifacts from the cache. The final line prints (and
//! asserts) the warm/cold speedup — the ISSUE 3 acceptance bar is ≥ 5×.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use driver::batch::{run_batch, BatchOptions};

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mha-batch-bench-{tag}-{}", std::process::id()))
}

fn bench_batch(c: &mut Criterion) {
    let ks = kernels::all_kernels();
    let dir = bench_dir("criterion");
    let opts = BatchOptions {
        jobs: 8,
        cache_dir: Some(dir.clone()),
        ..BatchOptions::default()
    };

    let mut group = c.benchmark_group("batch_throughput");
    group.bench_with_input(
        BenchmarkId::from_parameter("cold(empty-cache)"),
        &opts,
        |b, opts| {
            b.iter_batched(
                || {
                    let _ = std::fs::remove_dir_all(&dir);
                },
                |()| run_batch(ks, opts).expect("cold batch"),
                BatchSize::PerIteration,
            );
        },
    );
    // One priming run, then every iteration is fully warm.
    run_batch(ks, &opts).expect("priming batch");
    group.bench_with_input(
        BenchmarkId::from_parameter("warm(full-cache)"),
        &opts,
        |b, opts| {
            b.iter(|| run_batch(ks, opts).expect("warm batch"));
        },
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_speedup(c: &mut Criterion) {
    // A single paired cold/warm measurement for the recorded speedup
    // figure (EXPERIMENTS.md) and the ≥ 5× acceptance assertion.
    let _ = c;
    let ks = kernels::all_kernels();
    let dir = bench_dir("speedup");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = BatchOptions {
        jobs: 8,
        cache_dir: Some(dir.clone()),
        ..BatchOptions::default()
    };

    let t0 = Instant::now();
    let cold = run_batch(ks, &opts).expect("cold batch");
    let cold_wall = t0.elapsed();
    assert_eq!(cold.cache_hits(), 0, "cold run must start from empty cache");

    let t1 = Instant::now();
    let warm = run_batch(ks, &opts).expect("warm batch");
    let warm_wall = t1.elapsed().max(Duration::from_micros(1));
    assert_eq!(warm.cache_misses(), 0, "warm run must be fully cached");

    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64();
    println!("bench batch_throughput/cold-once                 {cold_wall:>12.3?}");
    println!("bench batch_throughput/warm-once                 {warm_wall:>12.3?}");
    println!("bench batch_throughput/speedup                   {speedup:>11.1}x");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        speedup >= 5.0,
        "warm batch ({warm_wall:?}) must be >= 5x faster than cold ({cold_wall:?}), got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_batch, bench_speedup);
criterion_main!(benches);
