//! Scheduler benchmark — csynth throughput over adapted kernels (the cost
//! of the Vitis-substitute itself, relevant for the parameter sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use driver::{run_flow, Directives, Flow};
use vitis_sim::{csynth, Target};

fn bench_csynth(c: &mut Criterion) {
    let mut group = c.benchmark_group("csynth");
    let d = Directives::pipelined(1);
    let target = Target::default();
    for kname in ["gemm", "conv2d", "seidel2d"] {
        let k = kernels::kernel(kname).expect("kernel");
        let art = run_flow(k, &d, Flow::Adaptor).expect("flow");
        group.bench_with_input(BenchmarkId::from_parameter(kname), &art.module, |b, m| {
            b.iter(|| csynth(m, &target).expect("csynth"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csynth);
criterion_main!(benches);
