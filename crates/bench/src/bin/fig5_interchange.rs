//! **Figure 5 (extension)** — the cross-layer optimization the abstract
//! motivates: interchanging a reduction loop at the *MLIR level* (where
//! loop structure is still first-class) breaks the accumulation recurrence
//! that pins the pipelined II at the LLVM/scheduling level. No LLVM-stage
//! rewrite can do this once the loops are lowered to CFG form.
//!
//! Kernels: `mvt` from the suite (perfect 2-nests) and an init-separated
//! gemm (perfect 3-nest). Both interchanges are legal and bit-exact: each
//! accumulator's update sequence keeps its original order.

use adaptor::AdaptorConfig;
use hls_bench::render_table;
use llvm_lite::interp::{Interpreter, RtVal};
use mlir_lite::passes::{InterchangeInnermost, MlirPass, PipelineInnermost};
use vitis_sim::{csynth, Target};

/// gemm with the C-initialization hoisted into its own nest, leaving the
/// accumulation as a perfect i-j-k nest (interchangeable).
const GEMM3: &str = r#"
func.func @gemm3(%A: memref<16x16xf32>, %B: memref<16x16xf32>, %C: memref<16x16xf32>) attributes {hls.top} {
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %C[%i, %j] : memref<16x16xf32>
    }
  }
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      affine.for %k = 0 to 16 {
        %a = affine.load %A[%i, %k] : memref<16x16xf32>
        %b = affine.load %B[%k, %j] : memref<16x16xf32>
        %c = affine.load %C[%i, %j] : memref<16x16xf32>
        %p = arith.mulf %a, %b : f32
        %s = arith.addf %c, %p : f32
        affine.store %s, %C[%i, %j] : memref<16x16xf32>
      }
    }
  }
  func.return
}
"#;

struct Case {
    name: &'static str,
    mlir: String,
    /// (number of f32 buffers, which are outputs) — buffers sized 16x16 or 16.
    buffers: Vec<(usize, bool)>,
}

fn cases() -> Vec<Case> {
    let mvt = kernels::kernel("mvt").unwrap();
    vec![
        Case {
            name: "gemm3",
            mlir: GEMM3.to_string(),
            buffers: vec![(256, false), (256, false), (256, true)],
        },
        Case {
            name: "mvt",
            mlir: mvt.mlir.to_string(),
            buffers: mvt.args.iter().map(|a| (a.len, a.output)).collect(),
        },
    ]
}

fn synthesize(mlir: &str, interchange: bool) -> (vitis_sim::CsynthReport, llvm_lite::Module) {
    let mut m = mlir_lite::parser::parse_module("k", mlir).expect("parse");
    if interchange {
        InterchangeInnermost::default()
            .run(&mut m)
            .expect("interchange");
    }
    PipelineInnermost { ii: 1 }.run(&mut m).expect("pipeline");
    let mut module = lowering::lower(m).expect("lower");
    adaptor::run_adaptor(&mut module, &AdaptorConfig::default()).expect("adaptor");
    let report = csynth(&module, &Target::default()).expect("csynth");
    (report, module)
}

fn run_outputs(module: &llvm_lite::Module, buffers: &[(usize, bool)]) -> Vec<Vec<f32>> {
    let mut interp = Interpreter::new(module);
    let ptrs: Vec<u64> = buffers
        .iter()
        .enumerate()
        .map(|(i, (len, _))| {
            let data: Vec<f32> = (0..*len)
                .map(|x| (((x * 7 + i * 13) % 9) as f32 - 4.0) / 4.0)
                .collect();
            interp.mem.alloc_f32(&data)
        })
        .collect();
    let args: Vec<RtVal> = ptrs.iter().map(|p| RtVal::P(*p)).collect();
    let top = module.top_function().unwrap().name.clone();
    interp.call(&top, &args).expect("run");
    buffers
        .iter()
        .zip(&ptrs)
        .filter(|((_, out), _)| *out)
        .map(|((len, _), p)| interp.mem.read_f32(*p, *len).expect("read"))
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    for case in cases() {
        let (base, base_mod) = synthesize(&case.mlir, false);
        let (swapped, swapped_mod) = synthesize(&case.mlir, true);
        // Bit-exactness of the interchange (accumulation orders preserved).
        let out_a = run_outputs(&base_mod, &case.buffers);
        let out_b = run_outputs(&swapped_mod, &case.buffers);
        let exact = out_a == out_b;
        let ii = |r: &vitis_sim::CsynthReport| {
            r.loops
                .iter()
                .filter_map(|l| l.ii_achieved)
                .max()
                .unwrap_or(0)
        };
        rows.push(vec![
            case.name.to_string(),
            ii(&base).to_string(),
            ii(&swapped).to_string(),
            base.latency.to_string(),
            swapped.latency.to_string(),
            format!(
                "{:.2}x",
                base.latency as f64 / swapped.latency.max(1) as f64
            ),
            if exact {
                "bit-exact".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    println!("Figure 5 (series data): MLIR-level loop interchange, PIPELINE II=1");
    print!(
        "{}",
        render_table(
            &[
                "kernel",
                "II before",
                "II after",
                "latency before",
                "latency after",
                "speedup",
                "outputs"
            ],
            &rows
        )
    );
    println!();
    println!("Interchange moves the reduction loop outward: the accumulator address now");
    println!("varies with the innermost IV, the carried dependence disappears, and the");
    println!("pipeline reaches its port/target floor — an optimization only expressible");
    println!("while the multi-level (loop) structure still exists.");
}
