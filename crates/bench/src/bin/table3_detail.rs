//! **Table 3** — "expression details" retained by each representation:
//! the structured information available to the backend in the adaptor flow
//! (affine maps, loop attributes, typed arrays) versus what survives the
//! C++ detour (strings the frontend must re-derive).
//!
//! Metrics per kernel:
//! * MLIR structure: affine accesses and how many carry non-identity maps;
//! * adaptor flow: structured (array-typed) GEPs in the final IR;
//! * C++ flow: structured GEPs after the frontend re-derives them, plus the
//!   frontend-introduced temporaries (extra IR the detour manufactures).

use driver::{run_flow, Directives, Flow};
use hls_bench::render_table;
use llvm_lite::{InstData, Opcode, Type};

fn structured_geps(m: &llvm_lite::Module) -> (usize, usize) {
    let mut structured = 0;
    let mut flat = 0;
    for f in &m.functions {
        if f.is_declaration {
            continue;
        }
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            if inst.opcode != Opcode::Gep {
                continue;
            }
            if let InstData::Gep { base_ty, .. } = &inst.data {
                if matches!(base_ty, Type::Array(..)) {
                    structured += 1;
                } else {
                    flat += 1;
                }
            }
        }
    }
    (structured, flat)
}

fn main() {
    let d = Directives::pipelined(1);
    let mut rows = Vec::new();
    for k in kernels::all_kernels() {
        let adaptor = run_flow(k, &d, Flow::Adaptor).expect("adaptor flow");
        let cpp = run_flow(k, &d, Flow::Cpp).expect("cpp flow");
        let s = &adaptor.mlir_stats;
        let (a_struct, a_flat) = structured_geps(&adaptor.module);
        let (c_struct, c_flat) = structured_geps(&cpp.module);
        let a_insts = adaptor
            .module
            .top_function()
            .map(|f| f.num_insts())
            .unwrap_or(0);
        let c_insts = cpp
            .module
            .top_function()
            .map(|f| f.num_insts())
            .unwrap_or(0);
        rows.push(vec![
            k.name.to_string(),
            s.affine_accesses.to_string(),
            s.structured_accesses.to_string(),
            s.directive_loops.to_string(),
            format!("{a_struct}/{a_flat}"),
            format!("{c_struct}/{c_flat}"),
            a_insts.to_string(),
            c_insts.to_string(),
        ]);
    }
    println!("Table 3: expression detail retained per representation (PIPELINE II=1)");
    println!("  acc      = affine accesses in the MLIR source");
    println!("  maps     = accesses with non-identity affine maps");
    println!("  dir      = loops carrying HLS directives");
    println!("  geps s/f = structured/flat getelementptrs in the final IR");
    print!(
        "{}",
        render_table(
            &[
                "kernel",
                "acc",
                "maps",
                "dir",
                "adaptor geps s/f",
                "cpp geps s/f",
                "adaptor insts",
                "cpp insts"
            ],
            &rows
        )
    );
    println!();
    println!("The adaptor flow carries the affine structure to the backend directly;");
    println!("the C++ flow re-derives it from source text (and only for what C array");
    println!("syntax can spell).");
}
