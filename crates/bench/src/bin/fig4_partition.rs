//! **Figure 4 (extension)** — array partitioning unlocks unroll scaling:
//! the (unroll × partition) design space of jacobi2d and gemm, showing the
//! II saturation from Figure 1 lifted by cyclic partitioning, at a BRAM
//! cost. Both flows carry the directive (pragma vs attribute) identically.

use driver::{run_experiment, Directives};
use hls_bench::render_table;
use rayon::prelude::*;
use vitis_sim::Target;

fn main() {
    let kernels = ["jacobi2d", "gemm"];
    let unrolls = [1u32, 2, 4];
    let partitions = [1u32, 2, 4];
    let mut configs: Vec<(&str, u32, u32)> = Vec::new();
    for k in kernels {
        for u in unrolls {
            for p in partitions {
                configs.push((k, u, p));
            }
        }
    }
    let results: Vec<_> = configs
        .par_iter()
        .map(|(kname, unroll, part)| {
            let k = kernels::kernel(kname).expect("kernel");
            let d = Directives {
                pipeline_ii: Some(1),
                unroll_factor: (*unroll > 1).then_some(*unroll),
                partition_factor: (*part > 1).then_some(*part),
                flatten: false,
            };
            let row = run_experiment(k, &d, &Target::default()).expect("experiment");
            (*kname, *unroll, *part, row)
        })
        .collect();

    let mut rows = Vec::new();
    for (kname, unroll, part, row) in &results {
        let ii = row
            .adaptor
            .report
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            kname.to_string(),
            unroll.to_string(),
            part.to_string(),
            ii.to_string(),
            row.adaptor.report.latency.to_string(),
            row.cpp.report.latency.to_string(),
            row.adaptor.report.resources.bram_18k.to_string(),
        ]);
    }
    println!("Figure 4 (series data): unroll x cyclic-partition sweep at PIPELINE II=1");
    print!(
        "{}",
        render_table(
            &[
                "kernel",
                "unroll",
                "partition",
                "II",
                "latency adaptor",
                "latency cpp",
                "BRAM"
            ],
            &rows
        )
    );
    println!();
    println!("Partitioning multiplies memory ports (and BRAM banks): the port-bound II");
    println!("from Figure 1 drops back toward the recurrence/target floor.");
}
