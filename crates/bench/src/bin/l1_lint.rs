//! **L1** — mha-lint findings per kernel after the adaptor flow.
//!
//! The table is the "zero defects" companion to Table 1: every kernel the
//! latency/resource comparison relies on must come out of the adaptor
//! lint-clean (no errors, no warnings). II-blocker notes are informational
//! and counted separately; the gemm accumulation recurrence is printed in
//! full as the canonical explanation.

use hls_bench::render_table;
use pass_core::Severity;

fn main() {
    let mut rows = Vec::new();
    let mut clean = true;
    let mut gemm_note: Option<String> = None;
    for k in kernels::all_kernels() {
        match driver::lint_kernel(k.name, true) {
            Ok(r) => {
                let errors = r.count(Severity::Error);
                let warnings = r.count(Severity::Warning);
                let notes = r.count(Severity::Note);
                clean &= errors == 0 && warnings == 0;
                if k.name == "gemm" {
                    gemm_note = r
                        .diagnostics
                        .iter()
                        .find(|d| d.pass == vitis_sim::II_BLOCKER_PASS)
                        .map(|d| d.to_string());
                }
                rows.push(vec![
                    k.name.to_string(),
                    errors.to_string(),
                    warnings.to_string(),
                    notes.to_string(),
                ]);
            }
            Err(e) => {
                clean = false;
                rows.push(vec![
                    k.name.to_string(),
                    "-".into(),
                    "-".into(),
                    format!("flow failed: {e}"),
                ]);
            }
        }
    }
    println!("L1: mha-lint findings per kernel (adaptor flow, HLS-ready IR)");
    print!(
        "{}",
        render_table(&["kernel", "errors", "warnings", "ii-notes"], &rows)
    );
    println!(
        "suite status: {}",
        if clean {
            "lint-clean (errors = warnings = 0 everywhere)"
        } else {
            "FINDINGS PRESENT"
        }
    );
    if let Some(note) = gemm_note {
        println!();
        println!("The canonical II blocker (gemm inner-product accumulation):");
        println!("  {note}");
    }
}
