//! **L1** — mha-lint findings per kernel after the adaptor flow.
//!
//! The table is the "zero defects" companion to Table 1: every kernel the
//! latency/resource comparison relies on must come out of the adaptor
//! lint-clean (no errors, no warnings). Notes are informational and split
//! into two columns: the vitis-sim II-blocker explainer (`ii-notes`) and
//! the `analysis::depend` dependence facts (`dep-notes`: carried
//! dependences, illegal interchanges, parallel-safe loops). The gemm
//! accumulation recurrence is printed in full as the canonical
//! explanation, alongside one dependence note showing the engine's view
//! of the same recurrence.

use analysis::lint::{LINT_CARRIED_DEP, LINT_ILLEGAL_INTERCHANGE, LINT_PARALLEL_SAFE};
use hls_bench::render_table;
use pass_core::Severity;

fn main() {
    let dep_passes = [
        LINT_CARRIED_DEP,
        LINT_ILLEGAL_INTERCHANGE,
        LINT_PARALLEL_SAFE,
    ];
    let mut rows = Vec::new();
    let mut clean = true;
    let mut gemm_ii_note: Option<String> = None;
    let mut gemm_dep_note: Option<String> = None;
    for k in kernels::all_kernels() {
        match driver::lint_kernel(k.name, true) {
            Ok(r) => {
                let errors = r.count(Severity::Error);
                let warnings = r.count(Severity::Warning);
                let dep_notes = r
                    .diagnostics
                    .iter()
                    .filter(|d| dep_passes.contains(&d.pass.as_str()))
                    .count();
                let ii_notes = r.count(Severity::Note) - dep_notes;
                clean &= errors == 0 && warnings == 0;
                if k.name == "gemm" {
                    gemm_ii_note = r
                        .diagnostics
                        .iter()
                        .find(|d| d.pass == vitis_sim::II_BLOCKER_PASS)
                        .map(|d| d.to_string());
                    gemm_dep_note = r
                        .diagnostics
                        .iter()
                        .find(|d| d.pass == LINT_CARRIED_DEP)
                        .map(|d| d.to_string());
                }
                rows.push(vec![
                    k.name.to_string(),
                    errors.to_string(),
                    warnings.to_string(),
                    ii_notes.to_string(),
                    dep_notes.to_string(),
                ]);
            }
            Err(e) => {
                clean = false;
                rows.push(vec![
                    k.name.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("flow failed: {e}"),
                ]);
            }
        }
    }
    println!("L1: mha-lint findings per kernel (adaptor flow, HLS-ready IR)");
    print!(
        "{}",
        render_table(
            &["kernel", "errors", "warnings", "ii-notes", "dep-notes"],
            &rows
        )
    );
    println!(
        "suite status: {}",
        if clean {
            "lint-clean (errors = warnings = 0 everywhere)"
        } else {
            "FINDINGS PRESENT"
        }
    );
    if let Some(note) = gemm_ii_note {
        println!();
        println!("The canonical II blocker (gemm inner-product accumulation):");
        println!("  {note}");
    }
    if let Some(note) = gemm_dep_note {
        println!();
        println!("The same recurrence as the dependence engine reports it:");
        println!("  {note}");
    }
}
