//! **Ablation A1** — what each adaptor pass contributes: disable one pass
//! at a time and record (a) whether the frontend still accepts the design,
//! (b) the synthesis latency when it does (QoR cost of losing the pass).

use adaptor::pipeline::PASS_NAMES;
use adaptor::AdaptorConfig;
use driver::{flow::prepare_mlir, Directives};
use hls_bench::render_table;
use vitis_sim::{csynth, Target};

fn run_config(kernel: &kernels::Kernel, cfg: &AdaptorConfig) -> (String, String) {
    let d = Directives::pipelined(1);
    let m = prepare_mlir(kernel, &d).expect("parse");
    let mut module = match lowering::lower(m) {
        Ok(m) => m,
        Err(e) => return ("lower-err".into(), e.to_string()),
    };
    let mut cfg = cfg.clone();
    cfg.gate = false;
    if adaptor::run_adaptor(&mut module, &cfg).is_err() {
        return ("adaptor-err".into(), "-".into());
    }
    match csynth(&module, &Target::default()) {
        Ok(r) => (r.latency.to_string(), r.resources.dsp.to_string()),
        Err(_) => ("REJECTED".into(), "-".into()),
    }
}

fn main() {
    let kernels_under_test = ["gemm", "two_mm", "jacobi2d"];
    for kname in kernels_under_test {
        let k = kernels::kernel(kname).expect("kernel");
        let mut rows = Vec::new();
        let (lat, dsp) = run_config(k, &AdaptorConfig::default());
        rows.push(vec!["(full pipeline)".to_string(), lat, dsp]);
        for pass in PASS_NAMES {
            let cfg = AdaptorConfig::default().without(pass).expect("known pass");
            let (lat, dsp) = run_config(k, &cfg);
            rows.push(vec![format!("- {pass}"), lat, dsp]);
        }
        println!("Ablation A1 — {kname}: disable one adaptor pass at a time");
        print!(
            "{}",
            render_table(&["configuration", "latency (cycles)", "DSP"], &rows)
        );
        println!();
    }
    println!("REJECTED = the HLS frontend refuses the design without that pass;");
    println!("latency inflation without recover-arrays reflects the m_axi fallback.");
}
