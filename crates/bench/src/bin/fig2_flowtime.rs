//! **Figure 2** — flow conversion time: the adaptor pipeline vs the C++
//! emission + re-frontend detour, per kernel (medians over repeated runs).
//! The Criterion bench `flow_time` measures the same thing rigorously; this
//! binary prints the series for the figure.

use driver::{run_flow, Directives, Flow};
use hls_bench::render_table;

fn median_us(kernel: &kernels::Kernel, flow: Flow, reps: usize) -> u64 {
    let d = Directives::pipelined(1);
    let mut times: Vec<u64> = (0..reps)
        .map(|_| run_flow(kernel, &d, flow).expect("flow").elapsed_us())
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let reps = 9;
    let mut rows = Vec::new();
    for k in kernels::all_kernels() {
        let a = median_us(k, Flow::Adaptor, reps);
        let c = median_us(k, Flow::Cpp, reps);
        rows.push(vec![
            k.name.to_string(),
            a.to_string(),
            c.to_string(),
            format!("{:.2}", c as f64 / a.max(1) as f64),
        ]);
    }
    println!("Figure 2 (series data): flow conversion time, median of {reps} runs (us)");
    print!(
        "{}",
        render_table(
            &["kernel", "adaptor (us)", "hls-c++ (us)", "cpp/adaptor"],
            &rows
        )
    );
}
