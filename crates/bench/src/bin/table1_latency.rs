//! **Table 1** — post-synthesis latency of the adaptor flow vs the HLS-C++
//! flow over the full kernel suite (the paper's headline "comparable
//! performance results" claim). Innermost loops pipelined at II=1.

use driver::{run_suite, Directives};
use hls_bench::{ratio, render_table};
use vitis_sim::Target;

fn main() {
    let rows_data = run_suite(&Directives::pipelined(1), &Target::default()).expect("suite run");
    let mut rows = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            r.kernel.clone(),
            r.adaptor.report.latency.to_string(),
            r.cpp.report.latency.to_string(),
            ratio(r.cpp.report.latency, r.adaptor.report.latency),
            format!("{:.2}", r.adaptor.report.latency_us()),
            format!("{:.2}", r.cpp.report.latency_us()),
        ]);
    }
    println!("Table 1: latency (cycles) — adaptor flow vs HLS-C++ flow, PIPELINE II=1");
    print!(
        "{}",
        render_table(
            &[
                "kernel",
                "adaptor",
                "hls-c++",
                "cpp/adaptor",
                "adaptor(us)",
                "cpp(us)"
            ],
            &rows
        )
    );
    let worst = rows_data
        .iter()
        .map(|r| {
            let q = r.latency_ratio();
            if q < 1.0 {
                1.0 / q
            } else {
                q
            }
        })
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "max deviation between flows: {:.1}% — the flows are comparable (paper claim holds)",
        (worst - 1.0) * 100.0
    );
}
