//! **Figure 3** — co-simulation correctness: max abs error of each flow's
//! output vs the reference implementation across seeds. Both flows must be
//! bit-exact (same operation order, same `f32` semantics).

use driver::{cosim, run_flow, Directives, Flow};
use hls_bench::render_table;

fn main() {
    let d = Directives::pipelined(1);
    let seeds = [1u64, 2026, 31337];
    let mut rows = Vec::new();
    let mut all_exact = true;
    for k in kernels::all_kernels() {
        let adaptor = run_flow(k, &d, Flow::Adaptor).expect("adaptor flow");
        let cpp = run_flow(k, &d, Flow::Cpp).expect("cpp flow");
        let mut worst_a = 0.0f32;
        let mut worst_c = 0.0f32;
        for &s in &seeds {
            worst_a = worst_a.max(cosim(&adaptor.module, k, s).expect("cosim").max_abs_err);
            worst_c = worst_c.max(cosim(&cpp.module, k, s).expect("cosim").max_abs_err);
        }
        all_exact &= worst_a == 0.0 && worst_c == 0.0;
        rows.push(vec![
            k.name.to_string(),
            format!("{worst_a:e}"),
            format!("{worst_c:e}"),
            if worst_a == 0.0 && worst_c == 0.0 {
                "exact".to_string()
            } else {
                "approx".to_string()
            },
        ]);
    }
    println!(
        "Figure 3 (series data): co-simulation max |err| vs reference over {} seeds",
        seeds.len()
    );
    print!(
        "{}",
        render_table(&["kernel", "adaptor", "hls-c++", "verdict"], &rows)
    );
    println!();
    println!(
        "all kernels bit-exact through both flows: {}",
        if all_exact { "yes" } else { "NO" }
    );
}
