//! **Table 2** — post-synthesis resource utilization (BRAM/DSP/FF/LUT) of
//! both flows over the kernel suite, PIPELINE II=1.

use driver::{run_suite, Directives};
use hls_bench::render_table;
use vitis_sim::Target;

fn main() {
    let data = run_suite(&Directives::pipelined(1), &Target::default()).expect("suite run");
    let mut rows = Vec::new();
    for r in &data {
        let a = &r.adaptor.report.resources;
        let c = &r.cpp.report.resources;
        rows.push(vec![
            r.kernel.clone(),
            format!("{}/{}", a.bram_18k, c.bram_18k),
            format!("{}/{}", a.dsp, c.dsp),
            format!("{}/{}", a.ff, c.ff),
            format!("{}/{}", a.lut, c.lut),
        ]);
    }
    println!("Table 2: resources (adaptor/hls-c++), PIPELINE II=1");
    print!(
        "{}",
        render_table(&["kernel", "BRAM_18K", "DSP", "FF", "LUT"], &rows)
    );
}
