//! **Table 4** — the "unsupported syntax" gap: HLS-frontend compatibility
//! issues in raw MLIR-lowered LLVM IR, and how many remain after each
//! adaptor pass (cumulative pipeline). The full pipeline must reach zero on
//! every kernel.

use adaptor::AdaptorConfig;
use driver::{flow::prepare_mlir, Directives};
use hls_bench::render_table;

fn main() {
    let d = Directives::pipelined(1);
    let mut rows = Vec::new();
    let mut pass_names: Vec<String> = Vec::new();
    for k in kernels::all_kernels() {
        let m = prepare_mlir(k, &d).expect("parse");
        let mut module = lowering::lower(m).expect("lower");
        let report =
            adaptor::run_adaptor(&mut module, &AdaptorConfig::measuring()).expect("adaptor");
        if pass_names.is_empty() {
            pass_names = report
                .issues_after_pass
                .iter()
                .map(|(n, _)| n.clone())
                .collect();
        }
        let mut row = vec![k.name.to_string(), report.issues_before.to_string()];
        row.extend(report.issues_after_pass.iter().map(|(_, n)| n.to_string()));
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["kernel", "raw"];
    headers.extend(pass_names.iter().map(String::as_str));
    println!("Table 4: HLS compatibility issues remaining after each adaptor pass");
    print!("{}", render_table(&headers, &rows));
    let all_zero = rows
        .iter()
        .all(|r| r.last().map(String::as_str) == Some("0"));
    println!();
    println!(
        "full pipeline clears every kernel: {}",
        if all_zero {
            "yes"
        } else {
            "NO — regression!"
        }
    );
}
