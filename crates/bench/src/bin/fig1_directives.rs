//! **Figure 1** — directive scaling: achieved II and total latency as the
//! unroll factor sweeps {1, 2, 4, 8} on pipelined innermost loops, through
//! both flows. Shows (a) directives surviving each path and (b) the memory-
//! port crossover where unrolling stops helping without array partitioning.

use driver::{run_experiment, Directives};
use hls_bench::render_table;
use rayon::prelude::*;
use vitis_sim::Target;

fn main() {
    let kernels = ["gemm", "fir", "conv2d"];
    let factors = [1u32, 2, 4, 8];
    let configs: Vec<(&str, u32)> = kernels
        .iter()
        .flat_map(|k| factors.iter().map(move |f| (*k, *f)))
        .collect();
    let results: Vec<_> = configs
        .par_iter()
        .map(|(kname, factor)| {
            let k = kernels::kernel(kname).expect("kernel");
            let d = Directives {
                pipeline_ii: Some(1),
                unroll_factor: if *factor > 1 { Some(*factor) } else { None },
                partition_factor: None,
                flatten: false,
            };
            let row = run_experiment(k, &d, &Target::default()).expect("experiment");
            (*kname, *factor, row)
        })
        .collect();

    let mut rows = Vec::new();
    for (kname, factor, row) in &results {
        let a_ii = row
            .adaptor
            .report
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .unwrap_or(0);
        let c_ii = row
            .cpp
            .report
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            kname.to_string(),
            factor.to_string(),
            a_ii.to_string(),
            c_ii.to_string(),
            row.adaptor.report.latency.to_string(),
            row.cpp.report.latency.to_string(),
        ]);
    }
    println!("Figure 1 (series data): unroll-factor sweep at PIPELINE II=1");
    print!(
        "{}",
        render_table(
            &[
                "kernel",
                "unroll",
                "II adaptor",
                "II cpp",
                "latency adaptor",
                "latency cpp"
            ],
            &rows
        )
    );
    println!();
    println!("II grows with unroll once BRAM ports saturate (ceil(u*accesses/2));");
    println!("both flows track each other because the directive survives both paths.");
}
