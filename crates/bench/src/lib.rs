//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! reconstructed evaluation (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results).

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        while line.ends_with(' ') {
            line.pop();
        }
        line.push('\n');
        line
    };
    let hcells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hcells, &widths));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a ratio with two decimals.
pub fn ratio(a: u64, b: u64) -> String {
    format!("{:.2}", a as f64 / b.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["kernel", "latency"],
            &[
                vec!["gemm".into(), "31317".into()],
                vec!["fir".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("kernel"));
        assert!(lines[2].starts_with("gemm"));
        let off = lines[0].find("latency").unwrap();
        assert_eq!(&lines[2][off..off + 5], "31317");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(100, 50), "2.00");
        assert_eq!(ratio(1, 0), "1.00"); // clamped denominator
    }
}
