//! Property tests for array recovery: for arbitrary static shapes and
//! arbitrary constant access points, the delinearized structured GEP must
//! address exactly the same element as the original flat access — checked
//! by executing both modules.

use llvm_lite::interp::{Interpreter, RtVal};
use llvm_lite::module::{Function, Param};
use llvm_lite::transforms::ModulePass;
use llvm_lite::{Inst, InstData, Module, Opcode, Type, Value};
use proptest::prelude::*;

/// Build `float f(float* "mha.shape"=… %a, i64 %i, i64 %j)` that loads
/// `a[i*d1 + j + c]` through flat pointer arithmetic, the way the memref
/// lowering emits it.
fn flat_access_module(d0: u64, d1: u64, extra: i64) -> Module {
    let mut m = Module::new("prop");
    let mut p0 = Param::new("a", Type::Float.ptr_to());
    p0.attrs
        .insert("mha.shape".into(), format!("{d0}x{d1}xf32"));
    let mut f = Function::new(
        "f",
        vec![p0, Param::new("i", Type::I64), Param::new("j", Type::I64)],
        Type::Float,
    );
    let entry = f.add_block("entry");
    let mul = f.push_inst(
        entry,
        Inst::new(
            Opcode::Mul,
            Type::I64,
            vec![Value::Arg(1), Value::i64(d1 as i64)],
        ),
    );
    let add = f.push_inst(
        entry,
        Inst::new(
            Opcode::Add,
            Type::I64,
            vec![Value::Inst(mul), Value::Arg(2)],
        ),
    );
    let lin = if extra != 0 {
        let a2 = f.push_inst(
            entry,
            Inst::new(
                Opcode::Add,
                Type::I64,
                vec![Value::Inst(add), Value::i64(extra)],
            ),
        );
        Value::Inst(a2)
    } else {
        Value::Inst(add)
    };
    let gep = f.push_inst(
        entry,
        Inst::new(Opcode::Gep, Type::Float.ptr_to(), vec![Value::Arg(0), lin]).with_data(
            InstData::Gep {
                base_ty: Type::Float,
                inbounds: true,
            },
        ),
    );
    let load = f.push_inst(
        entry,
        Inst::new(Opcode::Load, Type::Float, vec![Value::Inst(gep)])
            .with_data(InstData::Load { align: 4 }),
    );
    f.push_inst(
        entry,
        Inst::new(Opcode::Ret, Type::Void, vec![Value::Inst(load)]),
    );
    m.functions.push(f);
    m
}

fn read_at(m: &Module, data: &[f32], i: i64, j: i64) -> f32 {
    let mut interp = Interpreter::new(m);
    let p = interp.mem.alloc_f32(data);
    match interp
        .call(
            "f",
            &[RtVal::P(p), RtVal::I(i as i128), RtVal::I(j as i128)],
        )
        .unwrap()
    {
        RtVal::F(v) => v as f32,
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recovery_preserves_addresses(
        d0 in 1u64..6,
        d1 in 1u64..6,
        i_seed in 0u64..64,
        j_seed in 0u64..64,
    ) {
        let i = (i_seed % d0) as i64;
        let j = (j_seed % d1) as i64;
        let m = flat_access_module(d0, d1, 0);
        let data: Vec<f32> = (0..(d0 * d1)).map(|x| x as f32).collect();
        let before = read_at(&m, &data, i, j);

        let mut m2 = m.clone();
        let changed = adaptor::passes::RecoverArrays.run(&mut m2).unwrap();
        prop_assert!(changed, "recovery should fire on the canonical pattern");
        llvm_lite::verifier::verify_module(&m2).unwrap();
        // Parameter became the right nested array type.
        let want = Type::Float.array_of(d1).array_of(d0).ptr_to();
        prop_assert_eq!(&m2.functions[0].params[0].ty, &want);
        let after = read_at(&m2, &data, i, j);
        prop_assert_eq!(before, after);
    }

    /// With a constant offset folded into the linear index, recovery must
    /// either rewrite to the same address or leave the module alone — never
    /// silently change semantics. Indices are derived in-bounds by
    /// construction (no rejection filtering).
    #[test]
    fn recovery_with_folded_offset_is_semantics_preserving(
        d0 in 1u64..5,
        d1 in 1u64..5,
        i_seed in 0u64..64,
        j_seed in 0u64..64,
        extra_seed in 0u64..64,
    ) {
        let i = (i_seed % d0) as i64;
        let j = (j_seed % d1) as i64;
        let extra = (extra_seed % (d1 - j as u64)) as i64;
        let m = flat_access_module(d0, d1, extra);
        let data: Vec<f32> = (0..(d0 * d1)).map(|x| (x * 3) as f32).collect();
        let before = read_at(&m, &data, i, j);
        let mut m2 = m.clone();
        adaptor::passes::RecoverArrays.run(&mut m2).unwrap();
        llvm_lite::verifier::verify_module(&m2).unwrap();
        let after = read_at(&m2, &data, i, j);
        prop_assert_eq!(before, after);
    }
}
