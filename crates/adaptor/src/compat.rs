//! The Vitis-frontend compatibility model: the concrete list of
//! "unsupported syntax between different versions" the paper's abstract
//! refers to.
//!
//! [`compat_issues`] scans a module and reports every construct the (old,
//! frozen) HLS frontend would reject. It is used three ways: as the final
//! gate of the adaptor pipeline ([`VerifyCompat`]), as the Table-4 metric
//! (issues remaining after each pass), and by the Vitis simulator, which
//! refuses to schedule modules that still carry issues — mimicking the real
//! tool erroring out during IR import.

use llvm_lite::analysis::{Cfg, DomTree, LoopInfo};
use llvm_lite::transforms::ModulePass;
use llvm_lite::{InstData, Module, Opcode, Type};
use pass_core::{Diagnostic, Loc, PassResult};

/// What kind of rejection the frontend would produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IssueKind {
    /// Dynamic memory allocation (`malloc`/`free`/`new`).
    HeapAllocation,
    /// An intrinsic outside the supported whitelist.
    UnsupportedIntrinsic,
    /// A call to an undefined non-intrinsic function.
    UnresolvedCall,
    /// Interface pointer without recoverable array shape.
    UnshapedInterface,
    /// Flat pointer arithmetic on a multi-dimensional interface.
    FlattenedAccess,
    /// Symbol/label not expressible in RTL.
    IllegalName,
    /// Attribute the old frontend does not understand.
    UnknownAttribute,
    /// `!llvm.loop` metadata not attached to a loop latch.
    MisplacedLoopMetadata,
    /// `alloca` outside the entry block (dynamic stack growth).
    NonEntryAlloca,
    /// Integer type wider than 64 bits.
    OverwideInteger,
    /// Recursive call cycle.
    Recursion,
    /// Pointer round-trips through integers.
    PointerIntCast,
}

impl IssueKind {
    /// Human-readable description used in reports.
    pub fn describe(self) -> &'static str {
        match self {
            IssueKind::HeapAllocation => "dynamic allocation is not synthesizable",
            IssueKind::UnsupportedIntrinsic => "intrinsic unknown to the HLS frontend",
            IssueKind::UnresolvedCall => "call to an undefined function",
            IssueKind::UnshapedInterface => "interface pointer without array shape",
            IssueKind::FlattenedAccess => "flattened multi-dim access defeats array binding",
            IssueKind::IllegalName => "name not expressible in generated RTL",
            IssueKind::UnknownAttribute => "attribute unknown to the frozen frontend",
            IssueKind::MisplacedLoopMetadata => "loop metadata not on a loop latch",
            IssueKind::NonEntryAlloca => "alloca outside the entry block",
            IssueKind::OverwideInteger => "integer wider than 64 bits",
            IssueKind::Recursion => "recursion is not synthesizable",
            IssueKind::PointerIntCast => "pointer/integer casts defeat memory binding",
        }
    }
}

/// One rejection the frontend would produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompatIssue {
    /// Category.
    pub kind: IssueKind,
    /// Function it occurs in (empty for module-level issues).
    pub function: String,
    /// Free-form location/detail.
    pub detail: String,
}

impl CompatIssue {
    /// Render as a located [`Diagnostic`], e.g.
    /// `error[verify-compat] @f:call @malloc: dynamic allocation is not
    /// synthesizable`.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error("verify-compat", self.kind.describe())
            .with_loc(Loc::function(&self.function).at_inst(&self.detail))
    }
}

/// Intrinsics the frozen frontend understands.
fn intrinsic_whitelisted(name: &str) -> bool {
    const WHITELIST: &[&str] = &[
        "llvm.sqrt.f32",
        "llvm.sqrt.f64",
        "llvm.fabs.f32",
        "llvm.fabs.f64",
        "llvm.exp.f32",
        "llvm.exp.f64",
        "llvm.maxnum.f32",
        "llvm.maxnum.f64",
        "llvm.minnum.f32",
        "llvm.minnum.f64",
    ];
    WHITELIST.contains(&name)
}

/// Attributes the frontend accepts (everything else must be scrubbed).
fn attr_whitelisted(key: &str) -> bool {
    key == "hls.top" || key == "hls.array_partition" || key.starts_with("hls.interface")
}

fn name_is_legal(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false; // empty symbol: nothing to name the RTL object with
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Scan a module and produce every compatibility issue.
pub fn compat_issues(m: &Module) -> Vec<CompatIssue> {
    let mut issues = Vec::new();
    let mut push = |kind: IssueKind, function: &str, detail: String| {
        issues.push(CompatIssue {
            kind,
            function: function.to_string(),
            detail,
        });
    };

    for f in &m.functions {
        if f.is_declaration {
            continue;
        }
        if !name_is_legal(&f.name) {
            push(
                IssueKind::IllegalName,
                &f.name,
                format!("function @{}", f.name),
            );
        }
        for k in f.attrs.keys() {
            if !attr_whitelisted(k) {
                push(
                    IssueKind::UnknownAttribute,
                    &f.name,
                    format!("function attribute '{k}'"),
                );
            }
        }
        for p in &f.params {
            if !name_is_legal(&p.name) {
                push(
                    IssueKind::IllegalName,
                    &f.name,
                    format!("parameter %{}", p.name),
                );
            }
            for k in p.attrs.keys() {
                if !attr_whitelisted(k) {
                    push(
                        IssueKind::UnknownAttribute,
                        &f.name,
                        format!("parameter attribute '{k}' on %{}", p.name),
                    );
                }
            }
            // Interface pointers must present an array shape (either the
            // pointee is an array type, or the scalar pointer carries an
            // explicit interface binding).
            if let Type::Ptr(pointee) = &p.ty {
                let has_shape = matches!(**pointee, Type::Array(..));
                let has_iface = p.attrs.contains_key("hls.interface");
                if !has_shape && !has_iface {
                    push(
                        IssueKind::UnshapedInterface,
                        &f.name,
                        format!("pointer parameter %{}", p.name),
                    );
                }
            }
        }
        for &b in &f.block_order {
            if !name_is_legal(&f.block(b).name) && !f.block(b).name.contains('.') {
                push(
                    IssueKind::IllegalName,
                    &f.name,
                    format!("label {}", f.block(b).name),
                );
            }
            // Vitis tolerates dots in labels (it renames them), so only
            // reject genuinely hostile labels.
            if f.block(b)
                .name
                .chars()
                .any(|c| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
            {
                push(
                    IssueKind::IllegalName,
                    &f.name,
                    format!("label {}", f.block(b).name),
                );
            }
        }
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let loops = LoopInfo::build(f, &cfg, &dom);
        for (b, id) in f.inst_ids() {
            let inst = f.inst(id);
            match inst.opcode {
                Opcode::Call => {
                    let InstData::Call { callee } = &inst.data else {
                        continue;
                    };
                    if callee == "malloc" || callee == "free" {
                        push(
                            IssueKind::HeapAllocation,
                            &f.name,
                            format!("call @{callee}"),
                        );
                    } else if callee.starts_with("llvm.") {
                        if !intrinsic_whitelisted(callee) {
                            push(
                                IssueKind::UnsupportedIntrinsic,
                                &f.name,
                                format!("call @{callee}"),
                            );
                        }
                    } else {
                        match m.function(callee) {
                            None => push(
                                IssueKind::UnresolvedCall,
                                &f.name,
                                format!("call @{callee}"),
                            ),
                            Some(target) if target.is_declaration => push(
                                IssueKind::UnresolvedCall,
                                &f.name,
                                format!("call @{callee} (declaration only)"),
                            ),
                            Some(_) => {}
                        }
                    }
                }
                Opcode::Alloca if b != f.entry() => {
                    push(
                        IssueKind::NonEntryAlloca,
                        &f.name,
                        format!("alloca %{id} in block {}", f.block(b).name),
                    );
                }
                Opcode::PtrToInt | Opcode::IntToPtr => {
                    push(
                        IssueKind::PointerIntCast,
                        &f.name,
                        format!("{} %{id}", inst.opcode.mnemonic()),
                    );
                }
                _ => {}
            }
            if let Type::Int(w) = inst.ty {
                if w > 64 {
                    push(IssueKind::OverwideInteger, &f.name, format!("i{w} %{id}"));
                }
            }
            if inst.loop_md.is_some() {
                // Must be the latch of a natural loop (a back edge source).
                let is_latch = loops
                    .loops
                    .iter()
                    .any(|l| l.latches.contains(&b) && f.terminator(b) == Some(id));
                if !is_latch {
                    push(
                        IssueKind::MisplacedLoopMetadata,
                        &f.name,
                        format!("!llvm.loop on %{id}"),
                    );
                }
            }
            // Flattened multi-dim accesses: a single-index GEP whose base is
            // a parameter annotated with a rank>=2 shape means array
            // recovery has not run (or failed).
            if inst.opcode == Opcode::Gep {
                // Resolve through bitcasts/phis/selects with the shared
                // points-to analysis, not just a direct-argument match.
                if let analysis::MemObject::Param(arg) =
                    analysis::resolve_base(f, &inst.operands[0])
                {
                    let p = &f.params[arg as usize];
                    if let Some(shape) = p.attrs.get("mha.shape") {
                        let rank = shape.matches('x').count();
                        if rank >= 2 && inst.operands.len() == 2 {
                            push(
                                IssueKind::FlattenedAccess,
                                &f.name,
                                format!("gep %{id} on %{}", p.name),
                            );
                        }
                    }
                }
            }
        }
    }
    // Recursion: direct or mutual cycles over defined functions.
    issues.extend(find_recursion(m));
    issues
}

fn find_recursion(m: &Module) -> Vec<CompatIssue> {
    // Tarjan SCCs over the shared call graph: one issue per cycle, with the
    // closing callee named (for self-recursion that is the function itself).
    analysis::callgraph::CallGraph::build(m)
        .recursive_cycles()
        .into_iter()
        .map(|cycle| CompatIssue {
            kind: IssueKind::Recursion,
            function: cycle[0].clone(),
            detail: format!("cycle through @{}", cycle.last().expect("nonempty cycle")),
        })
        .collect()
}

/// The compat gate as a pass: errors if any issue remains.
pub struct VerifyCompat;

impl ModulePass<Module> for VerifyCompat {
    fn name(&self) -> &'static str {
        "verify-compat"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let issues = compat_issues(m);
        if issues.is_empty() {
            Ok(false)
        } else {
            let mut msg = format!("{} HLS compatibility issue(s):", issues.len());
            for i in issues.iter().take(8) {
                msg.push_str(&format!("\n  {}", i.to_diagnostic()));
            }
            // The summary diagnostic points at the first offender; the full
            // list is in the message body.
            Err(Diagnostic::error("verify-compat", msg)
                .with_loc(Loc::function(&issues[0].function).at_inst(&issues[0].detail)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn issues_of(src: &str) -> Vec<IssueKind> {
        let m = parse_module("m", src).unwrap();
        let mut kinds: Vec<IssueKind> = compat_issues(&m).into_iter().map(|i| i.kind).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    #[test]
    fn clean_module_has_no_issues() {
        let src = r#"
define void @top([8 x float]* %a) "hls.top"="1" {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  ret void
}
"#;
        assert!(issues_of(src).is_empty());
    }

    #[test]
    fn detects_heap_allocation() {
        let src = r#"
declare i8* @malloc(i64 %n)

define void @f() {
entry:
  %p = call i8* @malloc(i64 64)
  ret void
}
"#;
        assert!(issues_of(src).contains(&IssueKind::HeapAllocation));
    }

    #[test]
    fn detects_unsupported_intrinsic_but_allows_sqrt() {
        let src = r#"
declare void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 %n, i1 %v)
declare float @llvm.sqrt.f32(float %x)

define float @f(i8* "hls.interface"="m_axi" %d, i8* "hls.interface"="m_axi" %s) {
entry:
  call void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 8, i1 false)
  %r = call float @llvm.sqrt.f32(float 0x0000000000000000)
  ret float %r
}
"#;
        let kinds = issues_of(src);
        assert!(kinds.contains(&IssueKind::UnsupportedIntrinsic));
        // sqrt alone must not trigger: filter by counting occurrences.
        let m = parse_module("m", src).unwrap();
        let memcpy_issues: Vec<_> = compat_issues(&m)
            .into_iter()
            .filter(|i| i.kind == IssueKind::UnsupportedIntrinsic)
            .collect();
        assert_eq!(memcpy_issues.len(), 1);
        assert!(memcpy_issues[0].detail.contains("memcpy"));
    }

    #[test]
    fn detects_unshaped_interface_pointer() {
        let src = r#"
define void @f(float* %a) {
entry:
  ret void
}
"#;
        assert!(issues_of(src).contains(&IssueKind::UnshapedInterface));
    }

    #[test]
    fn detects_flattened_multidim_access() {
        let src = r#"
define void @f(float* "mha.shape"="4x4xf32" %a, i64 %i) {
entry:
  %p = getelementptr inbounds float, float* %a, i64 %i
  %v = load float, float* %p, align 4
  ret void
}
"#;
        let kinds = issues_of(src);
        assert!(kinds.contains(&IssueKind::FlattenedAccess));
        // mha.shape itself is a foreign attribute too.
        assert!(kinds.contains(&IssueKind::UnknownAttribute));
    }

    #[test]
    fn detects_non_entry_alloca() {
        let src = r#"
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  %x = alloca i32, align 4
  br label %b

b:
  ret void
}
"#;
        assert!(issues_of(src).contains(&IssueKind::NonEntryAlloca));
    }

    #[test]
    fn detects_recursion() {
        let src = r#"
define void @f() {
entry:
  call void @f()
  ret void
}
"#;
        assert!(issues_of(src).contains(&IssueKind::Recursion));
    }

    #[test]
    fn detects_mutual_recursion_naming_the_cycle() {
        let src = r#"
define void @a() {
entry:
  call void @b()
  ret void
}

define void @b() {
entry:
  call void @a()
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let issues: Vec<_> = compat_issues(&m)
            .into_iter()
            .filter(|i| i.kind == IssueKind::Recursion)
            .collect();
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].function, "a");
        assert_eq!(issues[0].detail, "cycle through @b");
    }

    #[test]
    fn empty_symbol_names_are_reported_not_panicked() {
        let src = r#"
define void @f(float* "hls.interface"="m_axi" %a) {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        // Symbols can arrive empty from a degenerate producer; the gate must
        // report them as illegal, not crash.
        m.functions[0].params[0].name = String::new();
        let issues = compat_issues(&m);
        assert!(issues
            .iter()
            .any(|i| i.kind == IssueKind::IllegalName && i.detail == "parameter %"));
    }

    #[test]
    fn flattened_access_is_found_through_a_bitcast() {
        let src = r#"
define void @f(float* "mha.shape"="4x4xf32" %a, i64 %i) {
entry:
  %b = bitcast float* %a to float*
  %p = getelementptr inbounds float, float* %b, i64 %i
  %v = load float, float* %p, align 4
  ret void
}
"#;
        assert!(issues_of(src).contains(&IssueKind::FlattenedAccess));
    }

    #[test]
    fn detects_misplaced_loop_metadata() {
        let src = r#"
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %b, !llvm.loop !0

b:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;
        assert!(issues_of(src).contains(&IssueKind::MisplacedLoopMetadata));
    }

    #[test]
    fn correctly_placed_metadata_is_accepted() {
        let src = r#"
define void @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %header, label %exit, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;
        assert!(!issues_of(src).contains(&IssueKind::MisplacedLoopMetadata));
    }

    #[test]
    fn detects_pointer_int_casts_and_wide_ints() {
        let src = r#"
define void @f(float* "hls.interface"="ap_memory" %a) {
entry:
  %x = ptrtoint float* %a to i64
  %w = add i128 0, 1
  ret void
}
"#;
        let kinds = issues_of(src);
        assert!(kinds.contains(&IssueKind::PointerIntCast));
        assert!(kinds.contains(&IssueKind::OverwideInteger));
    }

    #[test]
    fn verify_compat_pass_gates() {
        let src = r#"
declare i8* @malloc(i64 %n)

define void @f() {
entry:
  %p = call i8* @malloc(i64 64)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let e = VerifyCompat.run(&mut m).unwrap_err();
        assert!(e.to_string().contains("HLS compatibility"));
        // The gate's summary diagnostic carries the first offender's
        // function + instruction context.
        assert_eq!(e.loc.function.as_deref(), Some("f"));
        assert_eq!(e.loc.inst.as_deref(), Some("call @malloc"));
    }

    #[test]
    fn issue_diagnostics_render_with_location() {
        let issue = CompatIssue {
            kind: IssueKind::HeapAllocation,
            function: "f".into(),
            detail: "call @malloc".into(),
        };
        assert_eq!(
            issue.to_diagnostic().to_string(),
            "error[verify-compat] @f:call @malloc: dynamic allocation is not synthesizable"
        );
    }
}
