//! The **MLIR HLS adaptor for LLVM IR** — the paper's core contribution.
//!
//! MLIR's LLVM lowering produces IR a modern LLVM accepts, but a commercial
//! HLS frontend (Vitis HLS embeds a frozen, years-old clang/LLVM) rejects:
//! heap allocation, flattened pointer arithmetic where it expects array
//! subscripts, intrinsics it never learned, attribute spellings from the
//! wrong decade, and names its RTL generator cannot emit. The adaptor is a
//! pipeline of LLVM-IR-to-LLVM-IR passes that rewrites MLIR-generated IR
//! into the dialect the HLS backend understands, *without* detouring through
//! generated C++ — keeping loop metadata and access structure intact.
//!
//! Pipeline order (each pass builds on the previous one's postconditions):
//!
//! 1. [`passes::LegalizeIntrinsics`] — expand `llvm.memcpy`/`llvm.memset`
//!    into loops, drop `llvm.lifetime.*`/`llvm.assume`, rewrite
//!    `llvm.smax`-family intrinsics into compare+select.
//! 2. [`passes::DemoteMalloc`] — turn constant-size `@malloc`/`@free` pairs
//!    into entry-block allocas (on-chip buffers).
//! 3. [`passes::RecoverArrays`] — undo bare-pointer linearization: rebuild
//!    multi-dimensional array types on interface pointers and structured
//!    `getelementptr` subscripts from `i*D + j` chains.
//! 4. [`passes::NormalizeLoopMetadata`] — pin `!llvm.loop` nodes to loop
//!    latches and add constant trip-count hints.
//! 5. [`passes::SynthesizeInterface`] — assign HLS port bindings
//!    (`ap_memory` for arrays, `s_axilite` for scalars) on the top function.
//! 6. [`passes::LegalizeNames`] — make every symbol/label RTL-legal.
//! 7. [`passes::ScrubAttributes`] — drop attributes outside the accepted
//!    whitelist.
//! 8. [`compat::VerifyCompat`] — the acceptance gate: fails if any
//!    "unsupported syntax" remains.

pub mod compat;
pub mod passes;
pub mod pipeline;

pub use compat::{compat_issues, CompatIssue, IssueKind};
pub use pipeline::{
    registry, run_adaptor, run_adaptor_budgeted, AdaptorConfig, AdaptorReport, HlsAdaptor,
};

/// Errors are llvm-lite errors (the adaptor is an LLVM-level component).
pub type Error = llvm_lite::Error;
/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
