//! The assembled adaptor pipeline and its report.

use llvm_lite::transforms::{ModulePass, PassManager, PassRegistry};
use llvm_lite::Module;
use pass_core::{Diagnostic, PassResult, PipelineReport};

use crate::compat::{compat_issues, VerifyCompat};
use crate::passes::{
    DemoteMalloc, LegalizeIntrinsics, LegalizeNames, NormalizeLoopMetadata, RecoverArrays,
    ScrubAttributes, SynthesizeInterface,
};
use crate::Result;

/// The adaptor's pass names, in pipeline order (the `without` ablation
/// vocabulary).
pub const PASS_NAMES: &[&str] = &[
    "legalize-intrinsics",
    "demote-malloc",
    "recover-arrays",
    "normalize-loop-metadata",
    "synthesize-interface",
    "legalize-names",
    "scrub-attributes",
];

/// Which passes run — every field defaults to `true`; the ablation bench
/// flips them one at a time.
#[derive(Clone, Debug)]
pub struct AdaptorConfig {
    /// Expand/drop unsupported intrinsics.
    pub legalize_intrinsics: bool,
    /// Demote constant-size heap allocation.
    pub demote_malloc: bool,
    /// Recover array shapes and structured subscripts.
    pub recover_arrays: bool,
    /// Re-pin loop metadata and add trip counts.
    pub normalize_metadata: bool,
    /// Bind top-function ports.
    pub synthesize_interface: bool,
    /// Legalize RTL names.
    pub legalize_names: bool,
    /// Scrub foreign attributes.
    pub scrub_attrs: bool,
    /// Fail if compat issues remain (turn off to *measure* remaining
    /// issues instead).
    pub gate: bool,
}

impl Default for AdaptorConfig {
    fn default() -> AdaptorConfig {
        AdaptorConfig {
            legalize_intrinsics: true,
            demote_malloc: true,
            recover_arrays: true,
            normalize_metadata: true,
            synthesize_interface: true,
            legalize_names: true,
            scrub_attrs: true,
            gate: true,
        }
    }
}

impl AdaptorConfig {
    /// A config measuring issues without failing on them.
    pub fn measuring() -> AdaptorConfig {
        AdaptorConfig {
            gate: false,
            ..AdaptorConfig::default()
        }
    }

    /// Disable one pass by its name (for ablations). Unknown names produce
    /// a [`Diagnostic`] listing the valid names.
    pub fn without(mut self, pass: &str) -> std::result::Result<AdaptorConfig, Diagnostic> {
        match pass {
            "legalize-intrinsics" => self.legalize_intrinsics = false,
            "demote-malloc" => self.demote_malloc = false,
            "recover-arrays" => self.recover_arrays = false,
            "normalize-loop-metadata" => self.normalize_metadata = false,
            "synthesize-interface" => self.synthesize_interface = false,
            "legalize-names" => self.legalize_names = false,
            "scrub-attributes" => self.scrub_attrs = false,
            other => {
                return Err(Diagnostic::error(
                    "adaptor",
                    format!(
                        "unknown adaptor pass '{other}'; valid passes: {}",
                        PASS_NAMES.join(", ")
                    ),
                ))
            }
        }
        Ok(self)
    }
}

/// What happened during an adaptor run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptorReport {
    /// Compat issues in the input module.
    pub issues_before: usize,
    /// `(pass name, issues remaining after it ran)`.
    pub issues_after_pass: Vec<(String, usize)>,
    /// Compat issues in the output module.
    pub issues_after: usize,
    /// Names of passes that changed the IR.
    pub changed_passes: Vec<String>,
    /// The instrumented per-pass execution report (timing, size deltas).
    pub pipeline: PipelineReport,
}

/// Build the configured pipeline (without the gate).
fn build_pipeline(cfg: &AdaptorConfig) -> PassManager {
    let mut pm = PassManager::with_label("hls-adaptor");
    if cfg.legalize_intrinsics {
        pm.add(LegalizeIntrinsics);
    }
    if cfg.demote_malloc {
        pm.add(DemoteMalloc);
    }
    if cfg.recover_arrays {
        pm.add(RecoverArrays);
    }
    if cfg.normalize_metadata {
        pm.add(NormalizeLoopMetadata);
    }
    if cfg.synthesize_interface {
        pm.add(SynthesizeInterface);
    }
    if cfg.legalize_names {
        pm.add(LegalizeNames);
    }
    if cfg.scrub_attrs {
        pm.add(ScrubAttributes);
    }
    pm
}

/// Run the adaptor pipeline over a module.
pub fn run_adaptor(m: &mut Module, cfg: &AdaptorConfig) -> Result<AdaptorReport> {
    run_adaptor_budgeted(m, cfg, &pass_core::Budget::unlimited())
}

/// [`run_adaptor`] under a [`pass_core::Budget`]: each legalization pass
/// (and the compat gate) charges one fuel unit and checks the deadline, so
/// a budgeted caller gets a structured trip (the `budget` diagnostic,
/// recoverable with `BudgetError::from_rendered`) instead of an unbounded
/// pipeline run.
pub fn run_adaptor_budgeted(
    m: &mut Module,
    cfg: &AdaptorConfig,
    budget: &pass_core::Budget,
) -> Result<AdaptorReport> {
    let mut report = AdaptorReport {
        issues_before: compat_issues(m).len(),
        ..AdaptorReport::default()
    };
    // One instrumented pipeline; the observer samples the compat-issue
    // count after each pass (the Table-4 metric) while pass-core handles
    // verification, timing, and change tracking.
    let pm = build_pipeline(cfg);
    let pipeline = pm
        .run_observed_budgeted(
            m,
            &mut |ir, rec| {
                report
                    .issues_after_pass
                    .push((rec.pass.clone(), compat_issues(ir).len()));
            },
            budget,
        )
        .map_err(llvm_lite::Error::from)?;
    report.changed_passes = pipeline
        .changed_passes()
        .into_iter()
        .map(str::to_string)
        .collect();
    report.pipeline = pipeline;
    report.issues_after = compat_issues(m).len();
    if cfg.gate {
        let mut pm = PassManager::with_label("compat-gate");
        pm.add(VerifyCompat);
        pm.run_budgeted(m, budget).map_err(llvm_lite::Error::from)?;
    }
    Ok(report)
}

/// The whole adaptor as one registerable pass (default config), so drivers
/// can splice it into `--passes` pipelines by name.
pub struct HlsAdaptor;

impl ModulePass<Module> for HlsAdaptor {
    fn name(&self) -> &'static str {
        "hls-adaptor"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let report = run_adaptor(m, &AdaptorConfig::default())?;
        Ok(!report.changed_passes.is_empty())
    }
}

/// Registry of the adaptor's passes (individually, plus the assembled
/// `hls-adaptor` pipeline and the `verify-compat` gate), keyed by name.
pub fn registry() -> PassRegistry<Module> {
    let mut r = PassRegistry::new();
    r.register("legalize-intrinsics", || Box::new(LegalizeIntrinsics))
        .register("demote-malloc", || Box::new(DemoteMalloc))
        .register("recover-arrays", || Box::new(RecoverArrays))
        .register("normalize-loop-metadata", || {
            Box::new(NormalizeLoopMetadata)
        })
        .register("synthesize-interface", || Box::new(SynthesizeInterface))
        .register("legalize-names", || Box::new(LegalizeNames))
        .register("scrub-attributes", || Box::new(ScrubAttributes))
        .register("verify-compat", || Box::new(VerifyCompat))
        .register("hls-adaptor", || Box::new(HlsAdaptor));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::interp::{Interpreter, RtVal};
    use mlir_lite::parser::parse_module as parse_mlir;

    /// The canonical end-to-end fixture: gemm through the real lowering,
    /// then through the adaptor.
    fn lowered_gemm() -> Module {
        let src = r#"
func.func @gemm(%A: memref<4x4xf32>, %B: memref<4x4xf32>, %C: memref<4x4xf32>) attributes {hls.top} {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %C[%i, %j] : memref<4x4xf32>
      affine.for %k = 0 to 4 {
        %a = affine.load %A[%i, %k] : memref<4x4xf32>
        %b = affine.load %B[%k, %j] : memref<4x4xf32>
        %c = affine.load %C[%i, %j] : memref<4x4xf32>
        %p = arith.mulf %a, %b : f32
        %s = arith.addf %c, %p : f32
        affine.store %s, %C[%i, %j] : memref<4x4xf32>
      } {hls.pipeline_ii = 1 : i32}
    }
  }
  func.return
}
"#;
        lowering::lower(parse_mlir("gemm", src).unwrap()).unwrap()
    }

    #[test]
    fn full_pipeline_clears_all_issues_on_gemm() {
        let mut m = lowered_gemm();
        let report = run_adaptor(&mut m, &AdaptorConfig::default()).unwrap();
        assert!(report.issues_before > 0, "raw lowering must be non-compat");
        assert_eq!(report.issues_after, 0);
        // Issue count decreases monotonically... not strictly required, but
        // the final count must be the minimum.
        let min = report
            .issues_after_pass
            .iter()
            .map(|(_, n)| *n)
            .min()
            .unwrap();
        assert_eq!(min, 0);
    }

    #[test]
    fn adapted_gemm_is_structurally_hls_ready() {
        let mut m = lowered_gemm();
        run_adaptor(&mut m, &AdaptorConfig::default()).unwrap();
        let f = m.function("gemm").unwrap();
        // Interfaces recovered to 2-D arrays.
        for p in &f.params {
            assert_eq!(
                p.ty,
                llvm_lite::Type::Float.array_of(4).array_of(4).ptr_to(),
                "param %{} should be [4 x [4 x float]]*",
                p.name
            );
            assert_eq!(
                p.attrs.get("hls.interface").map(String::as_str),
                Some("ap_memory")
            );
        }
        // Pipeline metadata survived, now with a trip count.
        assert!(m
            .loop_mds
            .iter()
            .any(|md| md.pipeline_ii == Some(1) && md.tripcount == Some((4, 4))));
    }

    #[test]
    fn adapted_gemm_still_computes_gemm() {
        let mut m = lowered_gemm();
        run_adaptor(&mut m, &AdaptorConfig::default()).unwrap();
        let mut interp = Interpreter::new(&m);
        let a: Vec<f32> = (0..16).map(|x| (x % 5) as f32).collect();
        let b: Vec<f32> = (0..16).map(|x| (x % 7) as f32).collect();
        let pa = interp.mem.alloc_f32(&a);
        let pb = interp.mem.alloc_f32(&b);
        let pc = interp.mem.alloc_f32(&[0.0; 16]);
        interp
            .call("gemm", &[RtVal::P(pa), RtVal::P(pb), RtVal::P(pc)])
            .unwrap();
        let c = interp.mem.read_f32(pc, 16).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..4 {
                    acc += a[i * 4 + k] * b[k * 4 + j];
                }
                assert_eq!(c[i * 4 + j], acc);
            }
        }
    }

    #[test]
    fn without_recovery_interfaces_degrade_to_m_axi() {
        // Skipping array recovery is not a compat failure — the interface
        // pass falls back to bus-master pointers — but the QoR-relevant
        // array structure is lost. This is the A1 ablation's mechanism.
        let mut m = lowered_gemm();
        let cfg = AdaptorConfig::default().without("recover-arrays").unwrap();
        run_adaptor(&mut m, &cfg).unwrap();
        let f = m.function("gemm").unwrap();
        for p in &f.params {
            assert_eq!(p.ty, llvm_lite::Type::Float.ptr_to());
            assert_eq!(
                p.attrs.get("hls.interface").map(String::as_str),
                Some("m_axi")
            );
        }
    }

    #[test]
    fn gate_fails_when_interface_synthesis_disabled() {
        let mut m = lowered_gemm();
        let cfg = AdaptorConfig::default()
            .without("synthesize-interface")
            .unwrap()
            .without("recover-arrays")
            .unwrap();
        // Flat pointers with no binding: UnshapedInterface remains.
        let result = run_adaptor(&mut m, &cfg);
        assert!(result.is_err());
    }

    #[test]
    fn measuring_config_reports_instead_of_failing() {
        let mut m = lowered_gemm();
        let cfg = AdaptorConfig {
            gate: false,
            ..AdaptorConfig::default()
        }
        .without("synthesize-interface")
        .unwrap()
        .without("recover-arrays")
        .unwrap();
        let report = run_adaptor(&mut m, &cfg).unwrap();
        assert!(report.issues_after > 0);
    }

    #[test]
    fn unknown_ablation_name_lists_valid_names() {
        let e = AdaptorConfig::default().without("nonsense").unwrap_err();
        assert!(e.message.contains("unknown adaptor pass 'nonsense'"));
        for name in PASS_NAMES {
            assert!(e.message.contains(name), "error should list '{name}'");
        }
    }

    #[test]
    fn report_carries_instrumented_pipeline() {
        let mut m = lowered_gemm();
        let report = run_adaptor(&mut m, &AdaptorConfig::default()).unwrap();
        assert_eq!(report.pipeline.label, "hls-adaptor");
        assert_eq!(report.pipeline.passes.len(), 7);
        // Issue samples line up 1:1 with executed passes.
        assert_eq!(report.issues_after_pass.len(), 7);
        for (rec, (name, _)) in report.pipeline.passes.iter().zip(&report.issues_after_pass) {
            assert_eq!(&rec.pass, name);
        }
        assert!(report.pipeline.passes.iter().all(|p| p.size_after > 0));
    }

    #[test]
    fn fuel_budget_trips_adaptor_with_recoverable_error() {
        let mut m = lowered_gemm();
        let budget = pass_core::Budget::unlimited().with_fuel(2);
        let err = run_adaptor_budgeted(&mut m, &AdaptorConfig::default(), &budget).unwrap_err();
        let trip = pass_core::BudgetError::from_rendered(&err.to_string())
            .expect("budget trip survives the llvm-lite error channel");
        assert_eq!(trip.kind, pass_core::BudgetKind::Fuel);
        // Two fuel units ran exactly the first two passes before tripping.
        assert_eq!(trip.stage, PASS_NAMES[2]);
        // An unlimited budget matches the plain entry point.
        let mut m2 = lowered_gemm();
        let r =
            run_adaptor_budgeted(&mut m2, &AdaptorConfig::default(), &Default::default()).unwrap();
        assert_eq!(r.issues_after, 0);
    }

    #[test]
    fn registry_round_trips_every_pass() {
        let r = registry();
        for name in r.names() {
            assert_eq!(r.create(name).unwrap().name(), name);
        }
        assert!(r.contains("hls-adaptor") && r.contains("verify-compat"));
    }
}
