//! Intrinsic legalization.
//!
//! The frozen HLS frontend predates most of modern LLVM's intrinsic set.
//! This pass removes or expands everything outside the whitelist:
//!
//! * `llvm.lifetime.start/end`, `llvm.assume` — deleted (pure hints).
//! * `llvm.smax/smin/umax/umin` — expanded into `icmp` + `select`.
//! * `llvm.memset`/`llvm.memcpy` with constant length — expanded into
//!   explicit element loops (byte-wise), which the scheduler then treats
//!   like any other loop.

use llvm_lite::transforms::ModulePass;
use llvm_lite::{Function, Inst, InstData, IntPred, Module, Opcode, Type, Value};

use crate::Result;
use pass_core::PassResult;

/// The intrinsic-legalization pass.
pub struct LegalizeIntrinsics;

impl ModulePass<Module> for LegalizeIntrinsics {
    fn name(&self) -> &'static str {
        "legalize-intrinsics"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for fi in 0..m.functions.len() {
            if m.functions[fi].is_declaration {
                continue;
            }
            while let Some((block, id)) = find_target(&m.functions[fi]) {
                rewrite(&mut m.functions[fi], block, id)?;
                changed = true;
            }
        }
        if changed {
            // Unused intrinsic declarations would trip the compat verifier's
            // reviewers; drop any declaration that lost its last caller.
            drop_unused_declarations(m);
        }
        Ok(changed)
    }
}

fn intrinsic_kind(callee: &str) -> Option<&'static str> {
    if callee.starts_with("llvm.lifetime.") || callee == "llvm.assume" {
        return Some("drop");
    }
    if callee.starts_with("llvm.smax.") || callee.starts_with("llvm.smin.") {
        return Some("minmax");
    }
    if callee.starts_with("llvm.memset.") {
        return Some("memset");
    }
    if callee.starts_with("llvm.memcpy.") {
        return Some("memcpy");
    }
    None
}

fn find_target(f: &Function) -> Option<(llvm_lite::BlockId, llvm_lite::InstId)> {
    for (b, id) in f.inst_ids() {
        if let InstData::Call { callee } = &f.inst(id).data {
            if intrinsic_kind(callee).is_some() {
                return Some((b, id));
            }
        }
    }
    None
}

fn rewrite(f: &mut Function, block: llvm_lite::BlockId, id: llvm_lite::InstId) -> Result<()> {
    let inst = f.inst(id).clone();
    let InstData::Call { callee } = &inst.data else {
        unreachable!()
    };
    match intrinsic_kind(callee).expect("filtered") {
        "drop" => f.remove_inst(id),
        "minmax" => {
            let pred = if callee.starts_with("llvm.smax.") {
                IntPred::Sgt
            } else {
                IntPred::Slt
            };
            let pos = f.block(block).insts.iter().position(|&x| x == id).unwrap();
            let cmp = f.insert_inst(
                block,
                pos,
                Inst::new(
                    Opcode::ICmp,
                    Type::I1,
                    vec![inst.operands[0].clone(), inst.operands[1].clone()],
                )
                .with_data(InstData::ICmp(pred)),
            );
            let sel = f.insert_inst(
                block,
                pos + 1,
                Inst::new(
                    Opcode::Select,
                    inst.ty.clone(),
                    vec![
                        Value::Inst(cmp),
                        inst.operands[0].clone(),
                        inst.operands[1].clone(),
                    ],
                ),
            );
            f.replace_all_uses(&Value::Inst(id), &Value::Inst(sel));
            f.remove_inst(id);
        }
        kind @ ("memset" | "memcpy") => {
            let Some(len) = inst.operands[2].int_value() else {
                return Err(llvm_lite::Error::Transform(format!(
                    "@{callee} with non-constant length cannot be legalized"
                )));
            };
            expand_mem_loop(f, block, id, kind == "memcpy", len as u64)?;
        }
        _ => unreachable!(),
    }
    Ok(())
}

/// Replace a memcpy/memset call with a fresh byte loop:
///
/// ```text
///   <block>: ... ; up to the call
///   br %mem.header
/// mem.header: %i = phi [0, block], [%i.next, mem.body]
///   %c = icmp ult %i, len ; br %c, body, cont
/// mem.body: <byte move> ; %i.next = add %i, 1 ; br header
/// mem.cont: ... ; rest of the original block
/// ```
fn expand_mem_loop(
    f: &mut Function,
    block: llvm_lite::BlockId,
    id: llvm_lite::InstId,
    is_copy: bool,
    len: u64,
) -> Result<()> {
    let inst = f.inst(id).clone();
    let pos = f.block(block).insts.iter().position(|&x| x == id).unwrap();

    // Split the block after the call.
    let tail: Vec<llvm_lite::InstId> = f.block(block).insts[pos + 1..].to_vec();
    f.block_mut(block).insts.truncate(pos); // drops the call from layout
    f.inst_removed[id as usize] = true;

    let n = f.blocks.len();
    let header = f.add_block(format!("mem.header{n}"));
    let body = f.add_block(format!("mem.body{n}"));
    let cont = f.add_block(format!("mem.cont{n}"));
    f.block_mut(cont).insts = tail;

    // Successor phis that referenced `block` now come from `cont`.
    if let Some(&last) = f.block(cont).insts.last() {
        for s in f.insts[last as usize].successors() {
            f.replace_phi_incoming(s, block, cont);
        }
    }

    // block: br header
    f.push_inst(
        block,
        Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest: header }),
    );
    // header: phi, cmp, condbr
    let phi = f.push_inst(
        header,
        Inst::new(Opcode::Phi, Type::I64, vec![])
            .with_data(InstData::Phi { incoming: vec![] })
            .with_name("mem.i"),
    );
    let cmp = f.push_inst(
        header,
        Inst::new(
            Opcode::ICmp,
            Type::I1,
            vec![Value::Inst(phi), Value::i64(len as i64)],
        )
        .with_data(InstData::ICmp(IntPred::Ult)),
    );
    f.push_inst(
        header,
        Inst::new(Opcode::CondBr, Type::Void, vec![Value::Inst(cmp)]).with_data(InstData::CondBr {
            on_true: body,
            on_false: cont,
        }),
    );
    // body
    let dst_gep = f.push_inst(
        body,
        Inst::new(
            Opcode::Gep,
            Type::I8.ptr_to(),
            vec![inst.operands[0].clone(), Value::Inst(phi)],
        )
        .with_data(InstData::Gep {
            base_ty: Type::I8,
            inbounds: true,
        }),
    );
    let byte: Value = if is_copy {
        let src_gep = f.push_inst(
            body,
            Inst::new(
                Opcode::Gep,
                Type::I8.ptr_to(),
                vec![inst.operands[1].clone(), Value::Inst(phi)],
            )
            .with_data(InstData::Gep {
                base_ty: Type::I8,
                inbounds: true,
            }),
        );
        Value::Inst(
            f.push_inst(
                body,
                Inst::new(Opcode::Load, Type::I8, vec![Value::Inst(src_gep)])
                    .with_data(InstData::Load { align: 1 }),
            ),
        )
    } else {
        // memset: the byte value operand (i8).
        inst.operands[1].clone()
    };
    f.push_inst(
        body,
        Inst::new(Opcode::Store, Type::Void, vec![byte, Value::Inst(dst_gep)])
            .with_data(InstData::Store { align: 1 }),
    );
    let next = f.push_inst(
        body,
        Inst::new(
            Opcode::Add,
            Type::I64,
            vec![Value::Inst(phi), Value::i64(1)],
        ),
    );
    f.push_inst(
        body,
        Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest: header }),
    );
    // Wire the phi.
    {
        let p = f.inst_mut(phi);
        p.operands = vec![Value::i64(0), Value::Inst(next)];
        p.data = InstData::Phi {
            incoming: vec![block, body],
        };
    }
    Ok(())
}

fn drop_unused_declarations(m: &mut Module) {
    let mut used = std::collections::HashSet::new();
    for f in &m.functions {
        if f.is_declaration {
            continue;
        }
        for (_, id) in f.inst_ids() {
            if let InstData::Call { callee } = &f.inst(id).data {
                used.insert(callee.clone());
            }
        }
    }
    m.functions
        .retain(|f| !f.is_declaration || used.contains(&f.name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::interp::{Interpreter, RtVal};
    use llvm_lite::parser::parse_module;
    use llvm_lite::verifier::verify_module;

    #[test]
    fn drops_lifetime_and_assume() {
        let src = r#"
declare void @llvm.lifetime.start.p0i8(i64 %n, i8* %p)
declare void @llvm.assume(i1 %c)

define void @f(i8* "hls.interface"="ap_memory" %p) {
entry:
  call void @llvm.lifetime.start.p0i8(i64 4, i8* %p)
  call void @llvm.assume(i1 true)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeIntrinsics.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Call), 0);
        // Declarations dropped too.
        assert!(m.function("llvm.assume").is_none());
    }

    #[test]
    fn expands_minmax() {
        let src = r#"
declare i32 @llvm.smax.i32(i32 %a, i32 %b)

define i32 @f(i32 %a, i32 %b) {
entry:
  %m = call i32 @llvm.smax.i32(i32 %a, i32 %b)
  ret i32 %m
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeIntrinsics.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Select), 1);
        let mut i = Interpreter::new(&m);
        assert_eq!(
            i.call("f", &[RtVal::I(3), RtVal::I(9)]).unwrap(),
            RtVal::I(9)
        );
        let mut i2 = Interpreter::new(&m);
        assert_eq!(
            i2.call("f", &[RtVal::I(-3), RtVal::I(-9)]).unwrap(),
            RtVal::I(-3)
        );
    }

    #[test]
    fn expands_memset_into_loop() {
        let src = r#"
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %v, i64 %n, i1 %vol)

define void @f(i8* "hls.interface"="ap_memory" %d) {
entry:
  call void @llvm.memset.p0i8.i64(i8* %d, i8 7, i64 16, i1 false)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeIntrinsics.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Call), 0);
        assert_eq!(f.count_opcode(Opcode::Phi), 1);
        // Behaviour preserved.
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc(16);
        i.call("f", &[RtVal::P(p)]).unwrap();
        assert_eq!(i.mem.read_i32(p, 4).unwrap(), vec![0x07070707; 4]);
    }

    #[test]
    fn expands_memcpy_into_loop() {
        let src = r#"
declare void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 %n, i1 %vol)

define void @f(i8* "hls.interface"="ap_memory" %d, i8* "hls.interface"="ap_memory" %s) {
entry:
  call void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 8, i1 false)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeIntrinsics.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let mut i = Interpreter::new(&m);
        let s = i.mem.alloc_i32(&[11, 22]);
        let d = i.mem.alloc(8);
        i.call("f", &[RtVal::P(d), RtVal::P(s)]).unwrap();
        assert_eq!(i.mem.read_i32(d, 2).unwrap(), vec![11, 22]);
    }

    #[test]
    fn memcpy_after_which_code_continues() {
        // The split-block rewrite must preserve instructions after the call.
        let src = r#"
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %v, i64 %n, i1 %vol)

define i32 @f(i8* "hls.interface"="ap_memory" %d, i32 %x) {
entry:
  call void @llvm.memset.p0i8.i64(i8* %d, i8 0, i64 4, i1 false)
  %y = add i32 %x, 1
  ret i32 %y
}
"#;
        let mut m = parse_module("m", src).unwrap();
        LegalizeIntrinsics.run(&mut m).unwrap();
        verify_module(&m).unwrap();
        let mut i = Interpreter::new(&m);
        let d = i.mem.alloc(4);
        assert_eq!(
            i.call("f", &[RtVal::P(d), RtVal::I(41)]).unwrap(),
            RtVal::I(42)
        );
    }

    #[test]
    fn non_constant_length_is_an_error() {
        let src = r#"
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %v, i64 %n, i1 %vol)

define void @f(i8* "hls.interface"="ap_memory" %d, i64 %n) {
entry:
  call void @llvm.memset.p0i8.i64(i8* %d, i8 0, i64 %n, i1 false)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeIntrinsics.run(&mut m).is_err());
    }

    #[test]
    fn idempotent_on_clean_module() {
        let src = "define void @f() {\nentry:\n  ret void\n}\n";
        let mut m = parse_module("m", src).unwrap();
        assert!(!LegalizeIntrinsics.run(&mut m).unwrap());
    }
}
