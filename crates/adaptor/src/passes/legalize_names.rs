//! RTL name legalization.
//!
//! Generated RTL identifiers must match `[A-Za-z_][A-Za-z0-9_]*`. MLIR
//! symbol names are far looser (dots from nested symbol tables, dashes from
//! file names, `$` from mangling). The pass rewrites function names,
//! parameter names, block labels and value name hints into legal, unique
//! identifiers, and patches call sites for renamed functions.

use std::collections::{HashMap, HashSet};

use llvm_lite::transforms::ModulePass;
use llvm_lite::{InstData, Module};

use pass_core::PassResult;

/// The name-legalization pass.
pub struct LegalizeNames;

impl ModulePass<Module> for LegalizeNames {
    fn name(&self) -> &'static str {
        "legalize-names"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;

        // Functions (and call sites).
        let mut taken: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        let mut renames: HashMap<String, String> = HashMap::new();
        for f in &mut m.functions {
            if f.name.starts_with("llvm.") {
                continue; // intrinsic names are resolved, not emitted as RTL
            }
            let fixed = legalize(&f.name);
            if fixed != f.name {
                let unique = uniquify(&fixed, &mut taken);
                renames.insert(f.name.clone(), unique.clone());
                f.name = unique;
                changed = true;
            }
        }
        if !renames.is_empty() {
            for f in &mut m.functions {
                for i in 0..f.insts.len() {
                    if f.inst_removed[i] {
                        continue;
                    }
                    if let InstData::Call { callee } = &mut f.insts[i].data {
                        if let Some(n) = renames.get(callee) {
                            *callee = n.clone();
                        }
                    }
                }
            }
        }

        // Params, labels, value hints.
        for f in &mut m.functions {
            let mut local: HashSet<String> = HashSet::new();
            for p in &mut f.params {
                let fixed = legalize(&p.name);
                let unique = uniquify(&fixed, &mut local);
                if unique != p.name {
                    p.name = unique;
                    changed = true;
                }
            }
            let mut labels: HashSet<String> = HashSet::new();
            for b in &mut f.blocks {
                if b.removed {
                    continue;
                }
                let fixed = legalize(&b.name);
                let unique = uniquify(&fixed, &mut labels);
                if unique != b.name {
                    b.name = unique;
                    changed = true;
                }
            }
            for i in 0..f.insts.len() {
                if f.inst_removed[i] || f.insts[i].name.is_empty() {
                    continue;
                }
                let fixed = legalize(&f.insts[i].name);
                if fixed != f.insts[i].name {
                    f.insts[i].name = fixed;
                    changed = true;
                }
            }
        }
        Ok(changed)
    }
}

/// Rewrite into `[A-Za-z_][A-Za-z0-9_]*`.
pub fn legalize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('v');
    }
    if out.chars().next().unwrap().is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

fn uniquify(base: &str, taken: &mut HashSet<String>) -> String {
    if taken.insert(base.to_string()) {
        return base.to_string();
    }
    let mut n = 1;
    loop {
        let candidate = format!("{base}_{n}");
        if taken.insert(candidate.clone()) {
            return candidate;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;
    use llvm_lite::verifier::verify_module;

    #[test]
    fn legalize_rules() {
        assert_eq!(legalize("loop.header"), "loop_header");
        assert_eq!(legalize("a-b$c"), "a_b_c");
        assert_eq!(legalize("2fast"), "_2fast");
        assert_eq!(legalize(""), "v");
        assert_eq!(legalize("fine_name"), "fine_name");
    }

    #[test]
    fn renames_labels_and_keeps_structure() {
        let src = r#"
define void @f(i32 %n) {
entry:
  br label %loop.header

loop.header:
  %i = phi i32 [ 0, %entry ], [ %next, %loop.header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %loop.header, label %exit.block

exit.block:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeNames.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert!(f.block_by_name("loop_header").is_some());
        assert!(f.block_by_name("exit_block").is_some());
    }

    #[test]
    fn renames_functions_and_call_sites() {
        let src = r#"
define void @"my.helper"() {
entry:
  ret void
}

define void @top() "hls.top"="1" {
entry:
  call void @"my.helper"()
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(LegalizeNames.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        assert!(m.function("my_helper").is_some());
        let text = llvm_lite::printer::print_module(&m);
        assert!(text.contains("call void @my_helper()"));
    }

    #[test]
    fn collisions_are_uniquified() {
        let src = r#"
define void @f() {
a.b:
  br label %a_b

a_b:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        LegalizeNames.run(&mut m).unwrap();
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        let names: Vec<&str> = f
            .block_order
            .iter()
            .map(|&b| f.block(b).name.as_str())
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn intrinsic_declarations_are_untouched() {
        let src = r#"
declare float @llvm.sqrt.f32(float %x)

define float @f(float %x) {
entry:
  %r = call float @llvm.sqrt.f32(float %x)
  ret float %r
}
"#;
        let mut m = parse_module("m", src).unwrap();
        LegalizeNames.run(&mut m).unwrap();
        assert!(m.function("llvm.sqrt.f32").is_some());
    }

    #[test]
    fn clean_module_unchanged() {
        let src = "define void @fine() {\nentry:\n  ret void\n}\n";
        let mut m = parse_module("m", src).unwrap();
        assert!(!LegalizeNames.run(&mut m).unwrap());
    }
}
