//! Attribute scrubbing.
//!
//! The frozen frontend chokes on attributes minted after its LLVM snapshot.
//! Everything outside the accepted set (`hls.top`, `hls.interface*`) is
//! removed — including the adaptor's own `mha.shape` working notes, which
//! have served their purpose once array recovery and interface synthesis
//! have run.

use llvm_lite::transforms::ModulePass;
use llvm_lite::Module;

use pass_core::PassResult;

/// The attribute-scrubbing pass.
pub struct ScrubAttributes;

fn keep(key: &str) -> bool {
    key == "hls.top" || key == "hls.array_partition" || key.starts_with("hls.interface")
}

impl ModulePass<Module> for ScrubAttributes {
    fn name(&self) -> &'static str {
        "scrub-attributes"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            let before = f.attrs.len();
            f.attrs.retain(|k, _| keep(k));
            changed |= f.attrs.len() != before;
            for p in &mut f.params {
                let before = p.attrs.len();
                p.attrs.retain(|k, _| keep(k));
                changed |= p.attrs.len() != before;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn removes_foreign_attributes_keeps_hls() {
        let src = r#"
define void @top(float* "mha.shape"="8xf32" "hls.interface"="ap_memory" %a) "hls.top"="1" "frame-pointer"="all" {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(ScrubAttributes.run(&mut m).unwrap());
        let f = m.function("top").unwrap();
        assert!(f.attrs.contains_key("hls.top"));
        assert!(!f.attrs.contains_key("frame-pointer"));
        assert!(f.params[0].attrs.contains_key("hls.interface"));
        assert!(!f.params[0].attrs.contains_key("mha.shape"));
        // Compat: no unknown attributes remain.
        assert!(!crate::compat_issues(&m)
            .iter()
            .any(|i| i.kind == crate::IssueKind::UnknownAttribute));
    }

    #[test]
    fn idempotent() {
        let src = r#"
define void @top() "hls.top"="1" {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(!ScrubAttributes.run(&mut m).unwrap());
    }
}
