//! Heap-to-stack demotion.
//!
//! `memref.alloc` lowers to `@malloc` + `bitcast`; HLS has no heap. When
//! the allocation size is a compile-time constant, the buffer is exactly an
//! on-chip memory: the pass rewrites the pattern into an entry-block
//! `alloca [N x T]` (plus the decay GEP) and deletes the matching `@free`.
//!
//! Non-constant sizes are a hard error — there is no synthesizable
//! equivalent, and failing loudly here is precisely the adaptor's value
//! over letting the Vitis frontend crash later.

use llvm_lite::transforms::ModulePass;
use llvm_lite::{Inst, InstData, Module, Opcode, Type, Value};

use crate::Result;
use pass_core::PassResult;

/// The malloc-demotion pass.
pub struct DemoteMalloc;

impl ModulePass<Module> for DemoteMalloc {
    fn name(&self) -> &'static str {
        "demote-malloc"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            // Collect malloc calls.
            let mallocs: Vec<llvm_lite::InstId> = f
                .inst_ids()
                .into_iter()
                .filter_map(|(_, id)| {
                    matches!(&f.inst(id).data, InstData::Call { callee } if callee == "malloc")
                        .then_some(id)
                })
                .collect();
            for id in mallocs {
                demote_one(f, id)?;
                changed = true;
            }
            // Delete frees (their buffers are allocas now; the bitcast
            // feeding them dies with DCE).
            let frees: Vec<llvm_lite::InstId> = f
                .inst_ids()
                .into_iter()
                .filter_map(|(_, id)| {
                    matches!(&f.inst(id).data, InstData::Call { callee } if callee == "free")
                        .then_some(id)
                })
                .collect();
            for id in frees {
                f.remove_inst(id);
                changed = true;
            }
        }
        if changed {
            m.functions
                .retain(|f| !f.is_declaration || (f.name != "malloc" && f.name != "free"));
            // The demotion leaves dead bitcasts behind.
            llvm_lite::transforms::Dce.run(m)?;
        }
        Ok(changed)
    }
}

fn demote_one(f: &mut llvm_lite::Function, id: llvm_lite::InstId) -> Result<()> {
    let size = f.inst(id).operands.first().and_then(Value::int_value);
    let Some(bytes) = size else {
        return Err(llvm_lite::Error::Transform(
            "@malloc with non-constant size cannot be demoted for HLS".into(),
        ));
    };
    // The element type comes from the (single) bitcast user; default i8.
    let mut elem = Type::I8;
    let mut casts = Vec::new();
    for (_, uid) in f.inst_ids() {
        let user = f.inst(uid);
        if user.opcode == Opcode::BitCast && user.operands[0] == Value::Inst(id) {
            if let Some(p) = user.ty.pointee() {
                elem = p.clone();
            }
            casts.push(uid);
        }
    }
    let n = (bytes as u64) / elem.size_in_bytes().max(1);
    let arr = elem.array_of(n);

    // Entry-block alloca + decay GEP.
    let entry = f.entry();
    let alloca = f.insert_inst(
        entry,
        0,
        Inst::new(Opcode::Alloca, arr.ptr_to(), vec![])
            .with_data(InstData::Alloca {
                align: elem.align_in_bytes() as u32,
                allocated: arr.clone(),
            })
            .with_name("heapbuf"),
    );
    let gep = f.insert_inst(
        entry,
        1,
        Inst::new(
            Opcode::Gep,
            elem.ptr_to(),
            vec![Value::Inst(alloca), Value::i64(0), Value::i64(0)],
        )
        .with_data(InstData::Gep {
            base_ty: arr,
            inbounds: true,
        }),
    );
    for c in casts {
        f.replace_all_uses(&Value::Inst(c), &Value::Inst(gep));
        f.remove_inst(c);
    }
    // Raw i8* uses of the malloc (e.g. the free bitcast path) see the
    // buffer as i8* via a cast from the decay pointer.
    let raw = f.insert_inst(
        entry,
        2,
        Inst::new(Opcode::BitCast, Type::I8.ptr_to(), vec![Value::Inst(gep)]),
    );
    f.replace_all_uses(&Value::Inst(id), &Value::Inst(raw));
    f.remove_inst(id);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::interp::{Interpreter, RtVal};
    use llvm_lite::parser::parse_module;
    use llvm_lite::verifier::verify_module;

    const HEAP: &str = r#"
declare i8* @malloc(i64 %n)
declare void @free(i8* %p)

define float @f(float* "hls.interface"="ap_memory" %in) {
entry:
  %raw = call i8* @malloc(i64 16)
  %buf = bitcast i8* %raw to float*
  %v = load float, float* %in, align 4
  store float %v, float* %buf, align 4
  %r = load float, float* %buf, align 4
  call void @free(i8* %raw)
  ret float %r
}
"#;

    #[test]
    fn demotes_constant_malloc() {
        let mut m = parse_module("m", HEAP).unwrap();
        assert!(DemoteMalloc.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Call), 0);
        assert_eq!(f.count_opcode(Opcode::Alloca), 1);
        // Declarations removed.
        assert!(m.function("malloc").is_none());
        assert!(m.function("free").is_none());
        // Alloca is a [4 x float].
        let (_, a) = f
            .inst_ids()
            .into_iter()
            .find(|(_, i)| f.inst(*i).opcode == Opcode::Alloca)
            .unwrap();
        match &f.inst(a).data {
            InstData::Alloca { allocated, .. } => {
                assert_eq!(*allocated, Type::Float.array_of(4));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn behaviour_is_preserved() {
        let mut m = parse_module("m", HEAP).unwrap();
        DemoteMalloc.run(&mut m).unwrap();
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc_f32(&[42.5]);
        assert_eq!(i.call("f", &[RtVal::P(p)]).unwrap(), RtVal::F(42.5));
    }

    #[test]
    fn non_constant_size_errors() {
        let src = r#"
declare i8* @malloc(i64 %n)

define void @f(i64 %n) {
entry:
  %raw = call i8* @malloc(i64 %n)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let e = DemoteMalloc.run(&mut m).unwrap_err();
        assert!(e.to_string().contains("non-constant"));
    }

    #[test]
    fn no_change_without_heap() {
        let src = "define void @f() {\nentry:\n  ret void\n}\n";
        let mut m = parse_module("m", src).unwrap();
        assert!(!DemoteMalloc.run(&mut m).unwrap());
    }

    #[test]
    fn compat_issues_resolved() {
        let mut m = parse_module("m", HEAP).unwrap();
        let before = crate::compat_issues(&m)
            .iter()
            .filter(|i| i.kind == crate::IssueKind::HeapAllocation)
            .count();
        assert!(before >= 2);
        DemoteMalloc.run(&mut m).unwrap();
        let after = crate::compat_issues(&m)
            .iter()
            .filter(|i| i.kind == crate::IssueKind::HeapAllocation)
            .count();
        assert_eq!(after, 0);
    }
}
