//! The adaptor's rewriting passes.

pub mod demote_malloc;
pub mod interface;
pub mod legalize_intrinsics;
pub mod legalize_names;
pub mod metadata;
pub mod recover_arrays;
pub mod scrub_attrs;

pub use demote_malloc::DemoteMalloc;
pub use interface::SynthesizeInterface;
pub use legalize_intrinsics::LegalizeIntrinsics;
pub use legalize_names::LegalizeNames;
pub use metadata::NormalizeLoopMetadata;
pub use recover_arrays::RecoverArrays;
pub use scrub_attrs::ScrubAttributes;
