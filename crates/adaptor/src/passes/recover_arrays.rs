//! Array-structure recovery — the adaptor's signature rewrite.
//!
//! MLIR's bare-pointer memref lowering erases array shapes: a
//! `memref<32x32xf32>` parameter arrives as `float*` plus linearized index
//! arithmetic (`i*32 + j`). The HLS frontend, however, binds on-chip
//! memories from *array types* and *structured subscripts*; flat pointer
//! arithmetic defeats both array partitioning and port analysis.
//!
//! This pass reconstructs the shape. For each pointer parameter carrying the
//! `mha.shape` annotation (recorded by the lowering from the MLIR function
//! type), it:
//!
//! 1. retypes the parameter to a pointer-to-N-d-array
//!    (`[32 x [32 x float]]*`);
//! 2. pattern-matches every linearized GEP index against the shape
//!    (`((i0*d1)+i1)*d2+i2` chains, tolerating constant folding) and
//!    rewrites it into a structured GEP `[0, i0, i1, i2]`.
//!
//! A parameter whose accesses cannot all be delinearized is left untouched
//! (and will be reported by the compat verifier as [`FlattenedAccess`] for
//! rank ≥ 2) — partial recovery would change aliasing assumptions.
//!
//! [`FlattenedAccess`]: crate::IssueKind::FlattenedAccess
//!
//! As a second phase, accesses to local buffers that went through a
//! "decay" GEP (`[0, 0]`) are folded back into direct array subscripts.

use llvm_lite::transforms::ModulePass;
use llvm_lite::{Function, InstData, Module, Opcode, Type, Value};

use pass_core::PassResult;

/// The array-recovery pass.
pub struct RecoverArrays;

impl ModulePass<Module> for RecoverArrays {
    fn name(&self) -> &'static str {
        "recover-arrays"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            changed |= recover_params(f);
            changed |= fold_decay_geps(f);
        }
        if changed {
            // The rewritten GEPs orphan their linearization arithmetic;
            // leaving it behind would distort downstream area estimates.
            llvm_lite::transforms::Dce.run(m)?;
        }
        Ok(changed)
    }
}

/// Parse `4x8xf32` into `(dims, elem)`. Dimensions are the leading `<n>x`
/// prefixes; the remainder is the element spelling (which may contain an
/// `x`, e.g. `index`). Dynamic (`?x`) shapes are not recoverable.
pub fn parse_shape(s: &str) -> Option<(Vec<u64>, Type)> {
    let mut rest = s;
    let mut dims = Vec::new();
    loop {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with('x') {
            dims.push(digits.parse::<u64>().ok()?);
            rest = &rest[digits.len() + 1..];
            continue;
        }
        break;
    }
    let elem = match rest {
        "f32" => Type::Float,
        "f64" => Type::Double,
        "index" => Type::I64,
        w if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => {
            Type::Int(w[1..].parse().ok()?)
        }
        _ => return None,
    };
    Some((dims, elem))
}

fn nested_array(dims: &[u64], elem: &Type) -> Type {
    let mut t = elem.clone();
    for &d in dims.iter().rev() {
        t = t.array_of(d);
    }
    t
}

fn recover_params(f: &mut Function) -> bool {
    let mut changed = false;
    for pi in 0..f.params.len() {
        let Some(shape_str) = f.params[pi].attrs.get("mha.shape").cloned() else {
            continue;
        };
        let Some((dims, elem)) = parse_shape(&shape_str) else {
            continue;
        };
        if dims.is_empty() || !matches!(f.params[pi].ty, Type::Ptr(_)) {
            continue;
        }
        let arg = Value::Arg(pi as u32);

        // Every use must be a single-index GEP we can delinearize.
        let mut rewrites: Vec<(llvm_lite::InstId, Vec<Value>)> = Vec::new();
        let mut ok = true;
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            let uses_arg = inst.operands.contains(&arg);
            if !uses_arg {
                continue;
            }
            if inst.opcode == Opcode::Gep && inst.operands[0] == arg && inst.operands.len() == 2 {
                match delinearize(f, &inst.operands[1], &dims) {
                    Some(indices) => rewrites.push((id, indices)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            } else {
                ok = false;
                break;
            }
        }
        if !ok || rewrites.is_empty() {
            continue;
        }

        let arr = nested_array(&dims, &elem);
        f.params[pi].ty = arr.ptr_to();
        for (id, indices) in rewrites {
            let inst = f.inst_mut(id);
            let mut ops = vec![arg.clone(), Value::i64(0)];
            ops.extend(indices);
            inst.operands = ops;
            inst.data = InstData::Gep {
                base_ty: arr.clone(),
                inbounds: true,
            };
            // Result type (elem*) is unchanged by construction.
        }
        changed = true;
    }
    changed
}

/// Match `v` as a linearized index over `dims`; returns one index value per
/// dimension. Handles the canonical `((i0*d1 + i1)*d2 + i2)` chain, operand
/// commutation, partially and fully constant-folded forms.
fn delinearize(f: &Function, v: &Value, dims: &[u64]) -> Option<Vec<Value>> {
    if dims.len() == 1 {
        return Some(vec![v.clone()]);
    }
    let d_last = *dims.last().unwrap() as i128;
    let outer = &dims[..dims.len() - 1];

    // Fully constant: divide out.
    if let Some(c) = v.int_value() {
        let last = c.rem_euclid(d_last);
        let prefix = c.div_euclid(d_last);
        let mut idx = delinearize(f, &Value::i64(prefix as i64), outer)?;
        idx.push(Value::i64(last as i64));
        return Some(idx);
    }

    let Value::Inst(id) = v else {
        // A bare value as a rank>=2 index only works if all outer dims are
        // zero — same address either way, accept it.
        let mut idx = vec![Value::i64(0); outer.len()];
        idx.push(v.clone());
        return Some(idx);
    };
    let inst = f.inst(*id);
    match inst.opcode {
        Opcode::Add => {
            let (a, b) = (&inst.operands[0], &inst.operands[1]);
            for (mul_side, idx_side) in [(a, b), (b, a)] {
                if let Some(prefix) = match_mul(f, mul_side, d_last) {
                    if let Some(mut idx) = delinearize(f, &prefix, outer) {
                        idx.push(idx_side.clone());
                        return Some(idx);
                    }
                }
            }
            None
        }
        Opcode::Mul => {
            // `prefix * d_last` with a zero last index (folded away).
            let prefix = match_mul(f, v, d_last)?;
            let mut idx = delinearize(f, &prefix, outer)?;
            idx.push(Value::i64(0));
            Some(idx)
        }
        _ => {
            // Single SSA value as the whole index: outer dims zero.
            let mut idx = vec![Value::i64(0); outer.len()];
            idx.push(v.clone());
            Some(idx)
        }
    }
}

/// Match `v` as `x * d` (either operand order, or a constant divisible by
/// `d`); returns `x`.
fn match_mul(f: &Function, v: &Value, d: i128) -> Option<Value> {
    if let Some(c) = v.int_value() {
        if c % d == 0 {
            return Some(Value::i64((c / d) as i64));
        }
        return None;
    }
    let Value::Inst(id) = v else { return None };
    let inst = f.inst(*id);
    if inst.opcode != Opcode::Mul {
        return None;
    }
    let (a, b) = (&inst.operands[0], &inst.operands[1]);
    if b.int_value() == Some(d) {
        return Some(a.clone());
    }
    if a.int_value() == Some(d) {
        return Some(b.clone());
    }
    None
}

/// Fold `gep elem, (gep [N x T], buf, 0, 0), i` into
/// `gep [N x T], buf, 0, i` — re-attaching local-buffer accesses to their
/// array object.
fn fold_decay_geps(f: &mut Function) -> bool {
    let mut changed = false;
    // Find decay geps: base is an alloca result, indices [0, 0].
    let mut decays: Vec<(llvm_lite::InstId, Value, Type)> = Vec::new();
    for (_, id) in f.inst_ids() {
        let inst = f.inst(id);
        if inst.opcode != Opcode::Gep || inst.operands.len() != 3 {
            continue;
        }
        let InstData::Gep { base_ty, .. } = &inst.data else {
            continue;
        };
        if !matches!(base_ty, Type::Array(..)) {
            continue;
        }
        if inst.operands[1].int_value() != Some(0) || inst.operands[2].int_value() != Some(0) {
            continue;
        }
        decays.push((id, inst.operands[0].clone(), base_ty.clone()));
    }
    for (decay, base, arr) in decays {
        let users: Vec<llvm_lite::InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|(_, id)| f.inst(*id).operands.contains(&Value::Inst(decay)))
            .map(|(_, id)| id)
            .collect();
        let mut all_flat_geps = true;
        for &u in &users {
            let inst = f.inst(u);
            if !(inst.opcode == Opcode::Gep
                && inst.operands[0] == Value::Inst(decay)
                && inst.operands.len() == 2)
            {
                all_flat_geps = false;
            }
        }
        if !all_flat_geps || users.is_empty() {
            continue;
        }
        for u in users {
            let inst = f.inst_mut(u);
            let lin = inst.operands[1].clone();
            inst.operands = vec![base.clone(), Value::i64(0), lin];
            inst.data = InstData::Gep {
                base_ty: arr.clone(),
                inbounds: true,
            };
        }
        f.remove_inst(decay);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::interp::{Interpreter, RtVal};
    use llvm_lite::parser::parse_module;
    use llvm_lite::printer::print_module;
    use llvm_lite::verifier::verify_module;

    #[test]
    fn parse_shape_forms() {
        assert_eq!(parse_shape("4x8xf32"), Some((vec![4, 8], Type::Float)));
        assert_eq!(parse_shape("16xi32"), Some((vec![16], Type::I32)));
        assert_eq!(parse_shape("f64"), Some((vec![], Type::Double)));
        assert_eq!(parse_shape("?x4xf32"), None);
    }

    /// Transpose-like kernel over a 2-D interface, written the way the
    /// lowering emits it.
    const FLAT2D: &str = r#"
define void @t(float* "mha.shape"="4x8xf32" %a, i64 %i, i64 %j) {
entry:
  %m = mul i64 %i, 8
  %lin = add i64 %m, %j
  %p = getelementptr inbounds float, float* %a, i64 %lin
  %v = load float, float* %p, align 4
  %w = fmul float %v, %v
  store float %w, float* %p, align 4
  ret void
}
"#;

    #[test]
    fn recovers_two_d_interface() {
        let mut m = parse_module("m", FLAT2D).unwrap();
        assert!(RecoverArrays.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let text = print_module(&m);
        assert!(text.contains("[4 x [8 x float]]* \"mha.shape\"=\"4x8xf32\" %a"));
        assert!(
            text.contains("getelementptr inbounds [4 x [8 x float]], [4 x [8 x float]]* %a, i64 0, i64 %i, i64 %j"),
            "structured gep missing:\n{text}"
        );
    }

    #[test]
    fn recovery_preserves_behaviour() {
        let mut m = parse_module("m", FLAT2D).unwrap();
        let m_before = m.clone();
        RecoverArrays.run(&mut m).unwrap();
        let run = |module: &Module| {
            let mut i = Interpreter::new(module);
            let data: Vec<f32> = (0..32).map(|x| x as f32).collect();
            let p = i.mem.alloc_f32(&data);
            i.call("t", &[RtVal::P(p), RtVal::I(2), RtVal::I(5)])
                .unwrap();
            i.mem.read_f32(p, 32).unwrap()
        };
        assert_eq!(run(&m_before), run(&m));
    }

    #[test]
    fn handles_constant_folded_rows() {
        // After constant folding, `2*8 + j` arrives as `add 16, %j`.
        let src = r#"
define float @g(float* "mha.shape"="4x8xf32" %a, i64 %j) {
entry:
  %lin = add i64 16, %j
  %p = getelementptr inbounds float, float* %a, i64 %lin
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(RecoverArrays.run(&mut m).unwrap());
        let text = print_module(&m);
        assert!(text.contains("i64 0, i64 2, i64 %j"), "{text}");
    }

    #[test]
    fn handles_fully_constant_index() {
        let src = r#"
define float @g(float* "mha.shape"="4x8xf32" %a) {
entry:
  %p = getelementptr inbounds float, float* %a, i64 21
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(RecoverArrays.run(&mut m).unwrap());
        let text = print_module(&m);
        assert!(text.contains("i64 0, i64 2, i64 5"), "{text}");
    }

    #[test]
    fn one_d_interfaces_get_array_types() {
        let src = r#"
define void @s(float* "mha.shape"="16xf32" %a, i64 %i) {
entry:
  %p = getelementptr inbounds float, float* %a, i64 %i
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(RecoverArrays.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let text = print_module(&m);
        assert!(text.contains("[16 x float]*"));
        assert!(text.contains("i64 0, i64 %i"));
    }

    #[test]
    fn unmatchable_access_leaves_param_flat() {
        // Index arithmetic that is not row-major over the declared shape.
        let src = r#"
define float @g(float* "mha.shape"="4x8xf32" %a, i64 %i, i64 %j) {
entry:
  %m = mul i64 %i, 7
  %lin = add i64 %m, %j
  %p = getelementptr inbounds float, float* %a, i64 %lin
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        RecoverArrays.run(&mut m).unwrap();
        let f = m.function("g").unwrap();
        assert_eq!(f.params[0].ty, Type::Float.ptr_to());
        // Compat verifier still reports the flattened access.
        assert!(crate::compat_issues(&m)
            .iter()
            .any(|i| i.kind == crate::IssueKind::FlattenedAccess));
    }

    #[test]
    fn escaping_pointer_blocks_recovery() {
        let src = r#"
declare void @sink(float* %p)

define void @g(float* "mha.shape"="8xf32" %a) {
entry:
  call void @sink(float* %a)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let changed = RecoverArrays.run(&mut m).unwrap();
        assert!(!changed);
        assert_eq!(m.function("g").unwrap().params[0].ty, Type::Float.ptr_to());
    }

    #[test]
    fn local_decay_geps_are_folded() {
        let src = r#"
define float @g(i64 %i) {
entry:
  %buf = alloca [8 x float], align 4
  %decay = getelementptr inbounds [8 x float], [8 x float]* %buf, i64 0, i64 0
  %p = getelementptr inbounds float, float* %decay, i64 %i
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(RecoverArrays.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let text = print_module(&m);
        assert!(
            text.contains("getelementptr inbounds [8 x float], [8 x float]* %buf, i64 0, i64 %i")
        );
        // The decay gep is gone.
        assert_eq!(m.function("g").unwrap().count_opcode(Opcode::Gep), 1);
    }
}
