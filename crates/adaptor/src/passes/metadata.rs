//! Loop-metadata normalization.
//!
//! Two jobs:
//!
//! 1. **Placement** — `!llvm.loop` must sit on the latch branch of a natural
//!    loop for the HLS frontend to see it. Metadata that landed anywhere
//!    else (e.g. a guard branch after an optimization moved it) is re-pinned
//!    to the latch of the innermost loop containing it, or dropped when no
//!    loop exists.
//! 2. **Trip-count hints** — for counted loops (`phi` of a constant, a
//!    constant-bound compare, a constant-step increment) the pass attaches
//!    `llvm.loop.tripcount` min/max hints, which the scheduler uses for
//!    latency reporting exactly like Vitis' `LOOP_TRIPCOUNT` pragma.

use llvm_lite::analysis::{Cfg, DomTree, LoopInfo};
use llvm_lite::transforms::ModulePass;
use llvm_lite::{Function, Module};

use pass_core::PassResult;

/// The metadata-normalization pass.
pub struct NormalizeLoopMetadata;

impl ModulePass<Module> for NormalizeLoopMetadata {
    fn name(&self) -> &'static str {
        "normalize-loop-metadata"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for fi in 0..m.functions.len() {
            if m.functions[fi].is_declaration {
                continue;
            }
            changed |= normalize_function(m, fi);
        }
        Ok(changed)
    }
}

fn normalize_function(m: &mut Module, fi: usize) -> bool {
    let mut changed = false;
    let (moves, drops) = {
        let f = &m.functions[fi];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let loops = LoopInfo::build(f, &cfg, &dom);
        let mut moves: Vec<(llvm_lite::InstId, llvm_lite::InstId)> = Vec::new();
        let mut drops: Vec<llvm_lite::InstId> = Vec::new();
        for (b, id) in f.inst_ids() {
            let inst = f.inst(id);
            let Some(_) = inst.loop_md else { continue };
            let is_latch = loops
                .loops
                .iter()
                .any(|l| l.latches.contains(&b) && f.terminator(b) == Some(id));
            if is_latch {
                continue;
            }
            // Re-pin to the innermost loop containing the block.
            match loops.innermost_containing(b) {
                Some(l) => {
                    let latch = l.latches.first().copied();
                    match latch.and_then(|lb| f.terminator(lb)) {
                        Some(t) if t != id => moves.push((id, t)),
                        _ => drops.push(id),
                    }
                }
                None => drops.push(id),
            }
        }
        (moves, drops)
    };
    let f = &mut m.functions[fi];
    for (from, to) in moves {
        let md = f.inst(from).loop_md;
        f.inst_mut(from).loop_md = None;
        let dst = f.inst_mut(to);
        // If the latch is already annotated, the stray node is dropped.
        if dst.loop_md.is_none() {
            dst.loop_md = md;
        }
        changed = true;
    }
    for id in drops {
        f.inst_mut(id).loop_md = None;
        changed = true;
    }

    // Trip-count hints.
    changed |= add_tripcounts(m, fi);
    changed
}

/// Detect `for (i = C0; i <pred> C1; i += Cs)` loops and record trip counts.
fn add_tripcounts(m: &mut Module, fi: usize) -> bool {
    let mut changed = false;
    let updates = {
        let f = &m.functions[fi];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let loops = LoopInfo::build(f, &cfg, &dom);
        let mut updates: Vec<(llvm_lite::InstId, u64)> = Vec::new();
        for l in &loops.loops {
            let Some(&latch) = l.latches.first() else {
                continue;
            };
            let Some(term) = f.terminator(latch) else {
                continue;
            };
            let Some(md_id) = f.inst(term).loop_md else {
                continue;
            };
            if m.loop_mds[md_id as usize].tripcount.is_some() {
                continue;
            }
            if let Some(trip) = constant_tripcount(f, l) {
                updates.push((term, trip));
            }
        }
        updates
    };
    for (term, trip) in updates {
        let f = &m.functions[fi];
        let md_id = f.inst(term).loop_md.unwrap();
        let mut md = m.loop_mds[md_id as usize].clone();
        md.tripcount = Some((trip, trip));
        let new_id = m.add_loop_md(md);
        m.functions[fi].inst_mut(term).loop_md = Some(new_id);
        changed = true;
    }
    changed
}

/// Compute the trip count of a canonical counted loop, if recognizable.
/// (Shared with the Vitis scheduler via `llvm_lite::analysis`.)
pub fn constant_tripcount(f: &Function, l: &llvm_lite::analysis::NaturalLoop) -> Option<u64> {
    llvm_lite::analysis::counted_loop_tripcount(f, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    const COUNTED: &str = r#"
define void @f(float* "hls.interface"="ap_memory" %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds float, float* %a, i64 %i
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;

    #[test]
    fn adds_tripcount_to_counted_loop() {
        let mut m = parse_module("m", COUNTED).unwrap();
        assert!(NormalizeLoopMetadata.run(&mut m).unwrap());
        let f = m.function("f").unwrap();
        let (_, latch) = f
            .inst_ids()
            .into_iter()
            .find(|(_, i)| f.inst(*i).loop_md.is_some())
            .unwrap();
        let md = &m.loop_mds[f.inst(latch).loop_md.unwrap() as usize];
        assert_eq!(md.tripcount, Some((32, 32)));
        assert_eq!(md.pipeline_ii, Some(1)); // original directive kept
    }

    #[test]
    fn tripcount_respects_step() {
        let src = COUNTED.replace("%next = add i64 %i, 1", "%next = add i64 %i, 4");
        let mut m = parse_module("m", &src).unwrap();
        NormalizeLoopMetadata.run(&mut m).unwrap();
        assert!(m.loop_mds.iter().any(|md| md.tripcount == Some((8, 8))));
    }

    #[test]
    fn drops_metadata_outside_loops() {
        let src = r#"
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %b, !llvm.loop !0

b:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(NormalizeLoopMetadata.run(&mut m).unwrap());
        let f = m.function("f").unwrap();
        assert!(f
            .inst_ids()
            .into_iter()
            .all(|(_, i)| f.inst(i).loop_md.is_none()));
        // Compat issue resolved.
        assert!(!crate::compat_issues(&m)
            .iter()
            .any(|i| i.kind == crate::IssueKind::MisplacedLoopMetadata));
    }

    #[test]
    fn idempotent() {
        let mut m = parse_module("m", COUNTED).unwrap();
        NormalizeLoopMetadata.run(&mut m).unwrap();
        assert!(!NormalizeLoopMetadata.run(&mut m).unwrap());
    }

    #[test]
    fn rotated_compare_on_next_value() {
        let src = r#"
define void @f(float* "hls.interface"="ap_memory" %a) {
entry:
  br label %body

body:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %p = getelementptr inbounds float, float* %a, i64 %i
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, 16
  br i1 %c, label %body, label %exit, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;
        let mut m = parse_module("m", src).unwrap();
        NormalizeLoopMetadata.run(&mut m).unwrap();
        assert!(
            m.loop_mds.iter().any(|md| md.tripcount == Some((16, 16))),
            "{:?}",
            m.loop_mds
        );
    }
}
