//! Top-function interface synthesis.
//!
//! Vitis needs every top-level port bound to a hardware protocol. The pass
//! applies the same defaults `csynth` would:
//!
//! * pointer-to-array parameters → `ap_memory` (BRAM port);
//! * raw pointers that survived without a recovered shape → `m_axi`
//!   (bus master, slower but always legal);
//! * scalar parameters → `s_axilite` (control register file);
//! * the function itself gets `ap_ctrl_hs` block-level control.
//!
//! Bindings are recorded as `hls.interface` string attributes, which the
//! compat verifier accepts and the Vitis simulator reads when binding
//! memory ports.

use llvm_lite::transforms::ModulePass;
use llvm_lite::{Module, Type};

use pass_core::PassResult;

/// The interface-synthesis pass.
pub struct SynthesizeInterface;

impl ModulePass<Module> for SynthesizeInterface {
    fn name(&self) -> &'static str {
        "synthesize-interface"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let Some(top_name) = m.top_function().map(|f| f.name.clone()) else {
            return Ok(false);
        };
        let mut changed = false;
        let f = m.function_mut(&top_name).expect("top exists");
        if !f.attrs.contains_key("hls.top") {
            f.attrs.insert("hls.top".into(), "1".into());
            changed = true;
        }
        if !f.attrs.contains_key("hls.interface.control") {
            f.attrs
                .insert("hls.interface.control".into(), "ap_ctrl_hs".into());
            changed = true;
        }
        for p in &mut f.params {
            if p.attrs.contains_key("hls.interface") {
                continue;
            }
            let binding = match &p.ty {
                Type::Ptr(pointee) if matches!(**pointee, Type::Array(..)) => "ap_memory",
                Type::Ptr(_) => "m_axi",
                _ => "s_axilite",
            };
            p.attrs.insert("hls.interface".into(), binding.into());
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn binds_ports_by_type() {
        let src = r#"
define void @top([8 x float]* %arr, float* %flat, i32 %n) "hls.top"="1" {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(SynthesizeInterface.run(&mut m).unwrap());
        let f = m.function("top").unwrap();
        assert_eq!(
            f.params[0].attrs.get("hls.interface").map(String::as_str),
            Some("ap_memory")
        );
        assert_eq!(
            f.params[1].attrs.get("hls.interface").map(String::as_str),
            Some("m_axi")
        );
        assert_eq!(
            f.params[2].attrs.get("hls.interface").map(String::as_str),
            Some("s_axilite")
        );
        assert_eq!(
            f.attrs.get("hls.interface.control").map(String::as_str),
            Some("ap_ctrl_hs")
        );
    }

    #[test]
    fn first_definition_becomes_top_when_unmarked() {
        let src = r#"
declare float @llvm.sqrt.f32(float %x)

define void @only() {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(SynthesizeInterface.run(&mut m).unwrap());
        assert!(m.function("only").unwrap().attrs.contains_key("hls.top"));
    }

    #[test]
    fn existing_bindings_are_kept() {
        let src = r#"
define void @top(float* "hls.interface"="ap_fifo" %s) "hls.top"="1" {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        SynthesizeInterface.run(&mut m).unwrap();
        let f = m.function("top").unwrap();
        assert_eq!(
            f.params[0].attrs.get("hls.interface").map(String::as_str),
            Some("ap_fifo")
        );
    }

    #[test]
    fn resolves_unshaped_interface_issue() {
        let src = r#"
define void @top(float* %flat) "hls.top"="1" {
entry:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(crate::compat_issues(&m)
            .iter()
            .any(|i| i.kind == crate::IssueKind::UnshapedInterface));
        SynthesizeInterface.run(&mut m).unwrap();
        assert!(!crate::compat_issues(&m)
            .iter()
            .any(|i| i.kind == crate::IssueKind::UnshapedInterface));
    }
}
