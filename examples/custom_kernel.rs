//! Bring your own kernel: author MLIR at runtime, push it through the
//! whole stack, and validate it with the interpreter — no suite entry
//! needed.
//!
//! The kernel here is SAXPY with a twist (a ReLU on the result), showing
//! `arith.cmpf`/`arith.select` and scalar constants end to end.
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use adaptor::AdaptorConfig;
use llvm_lite::interp::{Interpreter, RtVal};
use vitis_sim::{csynth, Target};

const SAXPY_RELU: &str = r#"
func.func @saxpy_relu(%x: memref<32xf32>, %y: memref<32xf32>, %out: memref<32xf32>) attributes {hls.top} {
  affine.for %i = 0 to 32 {
    %a = arith.constant 2.5 : f32
    %xv = affine.load %x[%i] : memref<32xf32>
    %yv = affine.load %y[%i] : memref<32xf32>
    %ax = arith.mulf %a, %xv : f32
    %s = arith.addf %ax, %yv : f32
    %zero = arith.constant 0.0 : f32
    %neg = arith.cmpf olt, %s, %zero : f32
    %r = arith.select %neg, %zero, %s : f32
    affine.store %r, %out[%i] : memref<32xf32>
  } {hls.pipeline_ii = 1 : i32}
  func.return
}
"#;

fn main() {
    // Parse and verify the hand-written kernel.
    let m = mlir_lite::parser::parse_module("saxpy_relu", SAXPY_RELU).expect("parse MLIR");
    mlir_lite::verifier::verify_module(&m).expect("verify MLIR");

    // Lower and adapt.
    let mut module = lowering::lower(m).expect("lower");
    let report = adaptor::run_adaptor(&mut module, &AdaptorConfig::default()).expect("adaptor");
    println!(
        "adaptor fixed {} -> {} issues; passes that fired: {:?}",
        report.issues_before, report.issues_after, report.changed_passes
    );

    // Validate numerically with the IR interpreter.
    let mut interp = Interpreter::new(&module);
    let x: Vec<f32> = (0..32).map(|i| (i as f32) - 16.0).collect();
    let y: Vec<f32> = (0..32).map(|i| ((i % 4) as f32) * 0.25).collect();
    let px = interp.mem.alloc_f32(&x);
    let py = interp.mem.alloc_f32(&y);
    let pout = interp.mem.alloc_f32(&[0.0; 32]);
    interp
        .call("saxpy_relu", &[RtVal::P(px), RtVal::P(py), RtVal::P(pout)])
        .expect("run");
    let out = interp.mem.read_f32(pout, 32).expect("read");
    for i in 0..32 {
        let expect = (2.5f32 * x[i] + y[i]).max(0.0);
        assert_eq!(out[i], expect, "mismatch at {i}");
    }
    println!("interpreter check passed: out == relu(2.5*x + y) for all 32 lanes");

    // Synthesize.
    let r = csynth(&module, &Target::default()).expect("csynth");
    print!("{}", r.render());
    println!(
        "(elementwise, II=1: latency ≈ depth + trip - 1 = {} cycles)",
        r.latency
    );
}
