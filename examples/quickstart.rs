//! Quickstart: one kernel, the adaptor flow, a synthesis report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use driver::{cosim, run_flow, Directives, Flow};
use vitis_sim::{csynth, Target};

fn main() {
    // 1. Pick a kernel from the suite (gemm = dense matrix multiply).
    let kernel = kernels::kernel("gemm").expect("gemm is in the suite");

    // 2. Run the paper's flow: MLIR -> LLVM IR -> HLS adaptor.
    //    Directives are applied at the MLIR level; here: pipeline the
    //    innermost loop with a target initiation interval of 1.
    let artifacts =
        run_flow(kernel, &Directives::pipelined(1), Flow::Adaptor).expect("adaptor flow");

    // 3. The adaptor reports what it had to fix.
    let report = artifacts.adaptor_report.as_ref().unwrap();
    println!(
        "adaptor: {} HLS compatibility issue(s) in the raw lowering, {} after",
        report.issues_before, report.issues_after
    );

    // 4. Co-simulate against the reference implementation.
    let sim = cosim(&artifacts.module, kernel, 2026).expect("co-simulation");
    println!("co-simulation max |err| vs reference: {}", sim.max_abs_err);

    // 5. Synthesize with the Vitis-style estimator and print the report.
    let synth = csynth(&artifacts.module, &Target::default()).expect("csynth");
    print!("{}", synth.render());
}
