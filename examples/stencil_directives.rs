//! Directive exploration on a stencil: how pipelining and unrolling move
//! the latency/resource point, and where memory ports bite.
//!
//! ```text
//! cargo run --example stencil_directives
//! ```

use driver::{run_flow, Directives, Flow};
use vitis_sim::{csynth, Target};

fn main() {
    let kernel = kernels::kernel("jacobi2d").unwrap();
    let target = Target::default();

    println!("jacobi2d (16x16, 5-point) — directive sweep through the adaptor flow\n");
    println!(
        "{:<28} {:>8} {:>6} {:>6} {:>6}",
        "directives", "latency", "II", "DSP", "LUT"
    );

    let configs: Vec<(&str, Directives)> = vec![
        ("none (sequential)", Directives::default()),
        ("pipeline II=1", Directives::pipelined(1)),
        ("pipeline II=2", Directives::pipelined(2)),
        (
            "pipeline + unroll 2",
            Directives {
                pipeline_ii: Some(1),
                unroll_factor: Some(2),
                partition_factor: None,
                flatten: false,
            },
        ),
        (
            "pipeline + unroll 4",
            Directives {
                pipeline_ii: Some(1),
                unroll_factor: Some(4),
                partition_factor: None,
                flatten: false,
            },
        ),
        (
            "pipeline + partition 4",
            Directives {
                pipeline_ii: Some(1),
                unroll_factor: None,
                partition_factor: Some(4),
                flatten: false,
            },
        ),
        (
            "pipeline + flatten",
            Directives {
                pipeline_ii: Some(1),
                unroll_factor: None,
                partition_factor: None,
                flatten: true,
            },
        ),
        (
            "pipeline+flatten+part 4",
            Directives {
                pipeline_ii: Some(1),
                unroll_factor: None,
                partition_factor: Some(4),
                flatten: true,
            },
        ),
    ];

    for (label, d) in configs {
        let art = run_flow(kernel, &d, Flow::Adaptor).expect("flow");
        let r = csynth(&art.module, &target).expect("csynth");
        let ii = r
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .map(|x| x.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<28} {:>8} {:>6} {:>6} {:>6}",
            label, r.latency, ii, r.resources.dsp, r.resources.lut
        );
    }

    println!();
    println!("Five reads of A per iteration against two BRAM ports pin the achieved II");
    println!("at ceil(5/2)=3 even when II=1 is requested; unrolling multiplies the");
    println!("pressure. Cyclic partitioning multiplies the ports (reaching II=1 at a");
    println!("BRAM cost), and flattening removes the per-row pipeline drain; together");
    println!("they approach the ideal II * 14 * 14 bound.");

    // Show the II-limiting diagnosis from the loop report.
    let art = run_flow(kernel, &Directives::pipelined(1), Flow::Adaptor).unwrap();
    let r = csynth(&art.module, &target).unwrap();
    for l in &r.loops {
        if let Some(bound) = &l.ii_bound {
            println!(
                "loop {}: II {} — limited by {bound}",
                l.name,
                l.ii_achieved.unwrap_or(0)
            );
        }
    }
}
