//! The full paper story on one kernel: both flows, side by side.
//!
//! Walks gemm through (a) the adaptor flow — direct MLIR→LLVM translation
//! plus the HLS adaptor — and (b) the baseline C++ flow — emit HLS C++,
//! re-compile with the Vitis-stand-in frontend — then compares what each
//! hands to the scheduler and what comes out.
//!
//! ```text
//! cargo run --example gemm_flow
//! ```

use driver::{cosim, flow::prepare_mlir, run_flow, Directives, Flow};
use vitis_sim::{csynth, Target};

fn main() {
    let kernel = kernels::kernel("gemm").unwrap();
    let directives = Directives::pipelined(1);

    // --- The shared starting point: MLIR with directives. -------------
    let m = prepare_mlir(kernel, &directives).unwrap();
    println!("==== MLIR input (shared by both flows) ====");
    print!("{}", mlir_lite::printer::print_module(&m));

    // --- Adaptor flow, step by step. -----------------------------------
    println!("\n==== Adaptor flow ====");
    let lowered = lowering::lower(prepare_mlir(kernel, &directives).unwrap()).unwrap();
    let issues = adaptor::compat_issues(&lowered);
    println!(
        "raw MLIR lowering: {} issue(s) the Vitis frontend would reject:",
        issues.len()
    );
    for i in issues.iter().take(5) {
        println!("  [{:?}] {}", i.kind, i.detail);
    }
    if issues.len() > 5 {
        println!("  ... and {} more", issues.len() - 5);
    }
    let adaptor_art = run_flow(kernel, &directives, Flow::Adaptor).unwrap();
    println!(
        "after the adaptor: {} issue(s)",
        adaptor::compat_issues(&adaptor_art.module).len()
    );

    // --- C++ flow, step by step. ----------------------------------------
    println!("\n==== HLS-C++ flow (baseline) ====");
    let cpp_art = run_flow(kernel, &directives, Flow::Cpp).unwrap();
    println!("generated HLS C++ (first 20 lines):");
    for line in cpp_art.cpp_source.as_ref().unwrap().lines().take(20) {
        println!("  {line}");
    }

    // --- Same scheduler, same inputs: compare. --------------------------
    println!("\n==== Synthesis comparison ====");
    let target = Target::default();
    for (label, art) in [("adaptor", &adaptor_art), ("hls-c++", &cpp_art)] {
        let report = csynth(&art.module, &target).unwrap();
        let sim = cosim(&art.module, kernel, 2026).unwrap();
        println!("--- {label}: cosim err {} ---", sim.max_abs_err);
        print!("{}", report.render());
    }
}
