//! Differential property testing of the whole stack: randomly generated
//! affine kernels go through **both** flows (MLIR → adaptor vs MLIR → HLS
//! C++ → frontend) and must compute identical results on random inputs.
//! One failing case localizes a bug to wherever the flows diverge —
//! parser, lowering, adaptor rewrite, C++ emission, C frontend, or the
//! interpreter itself.

use proptest::prelude::*;

use adaptor::AdaptorConfig;
use llvm_lite::interp::{Interpreter, RtVal};

const N: i64 = 8;

/// One random body statement: `B[i+di][j+dj] (op)= A[i+ai][j+aj] * c`.
#[derive(Clone, Debug)]
struct RandStmt {
    /// Source offsets into A, each in {-1, 0, 1}.
    ai: i64,
    aj: i64,
    /// Constant multiplier (small, exactly representable).
    c: i64,
    /// true: accumulate into B[i][j]; false: overwrite.
    accumulate: bool,
    /// Wrap the product in a relu (cmp+select) first.
    relu: bool,
}

fn gen_stmt() -> impl Strategy<Value = RandStmt> {
    (
        -1i64..=1,
        -1i64..=1,
        -4i64..=4,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(ai, aj, c, accumulate, relu)| RandStmt {
            ai,
            aj,
            c,
            accumulate,
            relu,
        })
}

/// Render a kernel: loops over the interior so every offset stays in
/// bounds; all randomness lives in the body statements and directives.
fn render_kernel(stmts: &[RandStmt], ii: Option<u32>, unroll: Option<u32>) -> String {
    let mut body = String::new();
    for (k, s) in stmts.iter().enumerate() {
        let sub = |d: i64, var: &str| -> String {
            match d {
                0 => format!("%{var}"),
                d if d > 0 => format!("%{var} + {d}"),
                d => format!("%{var} - {}", -d),
            }
        };
        body.push_str(&format!(
            "      %a{k} = affine.load %A[{}, {}] : memref<8x8xf32>\n",
            sub(s.ai, "i"),
            sub(s.aj, "j")
        ));
        body.push_str(&format!("      %c{k} = arith.constant {}.0 : f32\n", s.c));
        body.push_str(&format!("      %m{k} = arith.mulf %a{k}, %c{k} : f32\n"));
        let mut val = format!("%m{k}");
        if s.relu {
            body.push_str(&format!("      %z{k} = arith.constant 0.0 : f32\n"));
            body.push_str(&format!(
                "      %neg{k} = arith.cmpf olt, {val}, %z{k} : f32\n"
            ));
            body.push_str(&format!(
                "      %r{k} = arith.select %neg{k}, %z{k}, {val} : f32\n"
            ));
            val = format!("%r{k}");
        }
        if s.accumulate {
            body.push_str(&format!(
                "      %old{k} = affine.load %B[%i, %j] : memref<8x8xf32>\n"
            ));
            body.push_str(&format!("      %s{k} = arith.addf %old{k}, {val} : f32\n"));
            val = format!("%s{k}");
        }
        body.push_str(&format!(
            "      affine.store {val}, %B[%i, %j] : memref<8x8xf32>\n"
        ));
    }
    let mut attrs = Vec::new();
    if let Some(ii) = ii {
        attrs.push(format!("hls.pipeline_ii = {ii} : i32"));
    }
    if let Some(u) = unroll {
        attrs.push(format!("hls.unroll_factor = {u} : i32"));
    }
    let attr_str = if attrs.is_empty() {
        String::new()
    } else {
        format!(" {{{}}}", attrs.join(", "))
    };
    format!(
        r#"
func.func @randk(%A: memref<8x8xf32>, %B: memref<8x8xf32>) attributes {{hls.top}} {{
  affine.for %i = 1 to {hi} {{
    affine.for %j = 1 to {hi} {{
{body}    }}{attr_str}
  }}
  func.return
}}
"#,
        hi = N - 1,
        body = body
    )
}

/// Run a compiled module on the given input; returns B.
fn execute(module: &llvm_lite::Module, a: &[f32]) -> Vec<f32> {
    let mut interp = Interpreter::new(module);
    let pa = interp.mem.alloc_f32(a);
    let pb = interp.mem.alloc_f32(&vec![0.0; (N * N) as usize]);
    interp
        .call("randk", &[RtVal::P(pa), RtVal::P(pb)])
        .expect("execution");
    interp.mem.read_f32(pb, (N * N) as usize).expect("read B")
}

fn input_from(seed: &[i32]) -> Vec<f32> {
    (0..(N * N) as usize)
        .map(|i| (seed[i % seed.len()] % 17) as f32 / 4.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two flows are observationally equivalent on random kernels.
    #[test]
    fn flows_agree_on_random_kernels(
        stmts in prop::collection::vec(gen_stmt(), 1..4),
        ii in prop::option::of(1u32..4),
        seed in prop::collection::vec(-50i32..50, 8),
    ) {
        let src = render_kernel(&stmts, ii, None);
        let m = mlir_lite::parser::parse_module("randk", &src)
            .expect("generated MLIR must parse");
        mlir_lite::verifier::verify_module(&m).expect("generated MLIR must verify");

        // Adaptor flow.
        let mut adaptor_mod = lowering::lower(m.deep_clone()).expect("lowering");
        adaptor::run_adaptor(&mut adaptor_mod, &AdaptorConfig::default()).expect("adaptor");

        // C++ flow.
        let cpp = hls_cpp::emit_cpp(&m).expect("emission");
        let mut cpp_mod = hls_cpp::compile_cpp("randk", &cpp).expect("frontend");
        llvm_lite::transforms::standard_cleanup()
            .run_to_fixpoint(&mut cpp_mod, 4)
            .expect("cleanup");

        let a = input_from(&seed);
        let out_adaptor = execute(&adaptor_mod, &a);
        let out_cpp = execute(&cpp_mod, &a);
        prop_assert_eq!(out_adaptor, out_cpp, "flows diverged on:\n{}", src);
    }

    /// Both flows stay synthesizable for every random kernel + directive
    /// combination, and report identical achieved IIs.
    #[test]
    fn flows_synthesize_identically(
        stmts in prop::collection::vec(gen_stmt(), 1..3),
        ii in 1u32..3,
        unroll in prop::option::of(2u32..4),
    ) {
        let src = render_kernel(&stmts, Some(ii), unroll);
        let m = mlir_lite::parser::parse_module("randk", &src).expect("parse");

        let mut adaptor_mod = lowering::lower(m.deep_clone()).expect("lowering");
        adaptor::run_adaptor(&mut adaptor_mod, &AdaptorConfig::default()).expect("adaptor");
        let cpp = hls_cpp::emit_cpp(&m).expect("emission");
        let mut cpp_mod = hls_cpp::compile_cpp("randk", &cpp).expect("frontend");
        llvm_lite::transforms::standard_cleanup()
            .run_to_fixpoint(&mut cpp_mod, 4)
            .expect("cleanup");

        let target = vitis_sim::Target::default();
        let ra = vitis_sim::csynth(&adaptor_mod, &target).expect("adaptor csynth");
        let rc = vitis_sim::csynth(&cpp_mod, &target).expect("cpp csynth");
        let ii_of = |r: &vitis_sim::CsynthReport| {
            r.loops.iter().filter_map(|l| l.ii_achieved).max()
        };
        prop_assert_eq!(ii_of(&ra), ii_of(&rc), "II diverged on:\n{}", src);
        // Latencies within 10% (block naming/layout may differ slightly).
        let (la, lc) = (ra.latency as f64, rc.latency as f64);
        prop_assert!(
            (la - lc).abs() / la.max(lc) < 0.10,
            "latency diverged: {la} vs {lc} on:\n{src}"
        );
    }
}
