//! mha-lint end-to-end: the four canonical broken fixtures each produce a
//! located `error[lint-*]` finding, and every benchmark kernel comes out of
//! the adaptor flow lint-clean (no errors, no warnings — II-blocker notes
//! are allowed and expected).

use driver::lint::LintReport;
use pass_core::Severity;

fn lint_ir(src: &str) -> LintReport {
    let m = llvm_lite::parser::parse_module("fixture", src).expect("fixture parses");
    LintReport::for_module(&m, true)
}

fn rendered(report: &LintReport) -> Vec<String> {
    report.diagnostics.iter().map(|d| d.to_string()).collect()
}

/// Fixture 1: a store past the end of the array, driven by a loop whose IV
/// range provably escapes the dimension.
#[test]
fn oob_store_is_flagged_with_location() {
    let report = lint_ir(
        r#"
define void @oob([8 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 12
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 %i
  store float 0x0000000000000000, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#,
    );
    assert_eq!(report.exit_code(), 2);
    let lines = rendered(&report);
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("error[lint-oob] @oob:body:%p:")
                && l.contains("[0, 11]")
                && l.contains("outside [0, 7]")),
        "missing located OOB error in: {lines:#?}"
    );
}

/// Fixture 2: a load from an alloca that no path has written.
#[test]
fn uninitialized_read_is_flagged_with_location() {
    let report = lint_ir(
        r#"
define float @uninit(i1 %c) {
entry:
  %buf = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  br i1 %c, label %init, label %read

init:
  store float 0x0000000000000000, float* %p, align 4
  br label %read

read:
  %v = load float, float* %p, align 4
  ret float %v
}
"#,
    );
    assert_eq!(report.exit_code(), 2);
    let lines = rendered(&report);
    assert!(
        lines.iter().any(
            |l| l.starts_with("error[lint-uninit-read] @uninit:read:%v:") && l.contains("%buf")
        ),
        "missing located uninit-read error in: {lines:#?}"
    );
}

/// Fixture 3: mutual recursion — unsynthesizable, located at the call that
/// closes the cycle.
#[test]
fn recursive_call_is_flagged_with_location() {
    let report = lint_ir(
        r#"
define void @ping() {
entry:
  call void @pong()
  ret void
}

define void @pong() {
entry:
  call void @ping()
  ret void
}
"#,
    );
    assert_eq!(report.exit_code(), 2);
    let lines = rendered(&report);
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("error[lint-recursion] @ping:entry:")
                && l.contains("@ping -> @pong -> @ping")),
        "missing located recursion error in: {lines:#?}"
    );
}

/// Fixture 4: a select between two *partitioned* arrays — the access can
/// touch either, which defeats the banking the partition directive promised.
#[test]
fn aliased_partition_is_flagged_with_location() {
    let report = lint_ir(
        r#"
define void @aliased([8 x float]* "hls.array_partition"="cyclic:2" %a, [8 x float]* "hls.array_partition"="cyclic:2" %b, i1 %c) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %q = getelementptr inbounds [8 x float], [8 x float]* %b, i64 0, i64 0
  %s = select i1 %c, float* %p, float* %q
  store float 0x0000000000000000, float* %s, align 4
  ret void
}
"#,
    );
    assert_eq!(report.exit_code(), 2);
    let lines = rendered(&report);
    assert!(
        lines.iter().any(
            |l| l.starts_with("error[lint-aliased-partition] @aliased:entry:")
                && l.contains("%a")
                && l.contains("%b")
        ),
        "missing located aliased-partition error in: {lines:#?}"
    );
}

/// Every benchmark kernel must be lint-clean after the adaptor flow: zero
/// errors, zero warnings. Notes (the II-blocker explainer) are fine.
#[test]
fn all_kernels_are_lint_clean() {
    for k in kernels::all_kernels() {
        let report = driver::lint_kernel(k.name, true)
            .unwrap_or_else(|e| panic!("{}: flow failed: {e}", k.name));
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{}:\n{}",
            k.name,
            report.render()
        );
        assert_eq!(
            report.count(Severity::Warning),
            0,
            "{}:\n{}",
            k.name,
            report.render()
        );
    }
}

/// `mha-opt` in MLIR mode refuses an illegal interchange: the skewed nest
/// carries a (1, -1) flow dependence that the swap would reverse, so the
/// pipeline must fail with the dependence witness on stderr and exit 1.
#[test]
fn mha_opt_refuses_illegal_interchange_with_witness() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let skewed = r#"
func.func @f(%m: memref<8x8xf32>) {
  affine.for %i = 0 to 7 {
    affine.for %j = 0 to 7 {
      %v = affine.load %m[%i, %j + 1] : memref<8x8xf32>
      affine.store %v, %m[%i + 1, %j] : memref<8x8xf32>
    }
  }
  func.return
}
"#;
    let mut child = Command::new(env!("CARGO_BIN_EXE_mha-opt"))
        .args(["--passes", "interchange-innermost", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mha-opt spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(skewed.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("error[interchange-innermost]")
            && stderr.contains("refusing to interchange")
            && stderr.contains("distance vector (1, -1)"),
        "witness missing from stderr:\n{stderr}"
    );
    // The refused pipeline prints nothing: no half-transformed module.
    assert!(out.stdout.is_empty());

    // The same nest with distinct arrays is dependence-free: the swap is
    // approved and the transformed module comes out on stdout.
    let legal = skewed.replace(
        "(%m: memref<8x8xf32>)",
        "(%m: memref<8x8xf32>, %n: memref<8x8xf32>)",
    );
    let legal = legal.replace(
        "affine.store %v, %m[%i + 1, %j]",
        "affine.store %v, %n[%i + 1, %j]",
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_mha-opt"))
        .args(["--passes", "interchange-innermost", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mha-opt spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(legal.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("affine.load %arg0[%j, %i + 1]"),
        "interchange did not land:\n{stdout}"
    );
}

/// The gemm accumulation recurrence is the canonical II blocker: the
/// explainer must name the base and the cycle arithmetic.
#[test]
fn gemm_ii_blocker_is_explained() {
    let report = driver::lint_kernel("gemm", true).unwrap();
    let note = report
        .diagnostics
        .iter()
        .find(|d| d.pass == vitis_sim::II_BLOCKER_PASS)
        .expect("gemm should carry an II-blocker note");
    assert_eq!(note.severity, Severity::Note);
    assert!(note.message.contains("RecMII ="), "{}", note.message);
    assert!(
        note.message.contains("registered cycles"),
        "{}",
        note.message
    );
}
