//! The paper's qualitative claims, as executable assertions. These are the
//! "shape" checks EXPERIMENTS.md records: who wins, by roughly what factor,
//! where crossovers fall.

use driver::{run_experiment, run_suite, Directives};
use vitis_sim::Target;

/// Abstract: "the MLIR flow via our adaptor can generate comparable
/// performance results with the version by MLIR HLS tools generating HLS
/// C++ codes."
#[test]
fn claim_flows_are_comparable() {
    let rows = run_suite(&Directives::pipelined(1), &Target::default()).unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        let ratio = r.latency_ratio();
        assert!(
            (0.75..=1.34).contains(&ratio),
            "{}: latency ratio {ratio:.2} outside the comparable band (adaptor {}, cpp {})",
            r.kernel,
            r.adaptor.report.latency,
            r.cpp.report.latency
        );
        // Resources comparable too (within 1.5x either way on DSPs).
        let (da, dc) = (r.adaptor.report.resources.dsp, r.cpp.report.resources.dsp);
        assert!(
            da.max(dc) <= (da.min(dc).max(1)) * 3 / 2 + 1,
            "{}: DSP {} vs {}",
            r.kernel,
            da,
            dc
        );
    }
}

/// Abstract: "without the gap of unsupported syntax between different
/// versions" — the adaptor exists because the gap exists, and closes it.
#[test]
fn claim_adaptor_closes_the_syntax_gap() {
    for k in kernels::all_kernels() {
        let m = driver::flow::prepare_mlir(k, &Directives::pipelined(1)).unwrap();
        let mut module = lowering::lower(m).unwrap();
        let before = adaptor::compat_issues(&module).len();
        assert!(before > 0, "{}: no gap to close?", k.name);
        let report = adaptor::run_adaptor(&mut module, &adaptor::AdaptorConfig::default()).unwrap();
        assert_eq!(report.issues_after, 0, "{}", k.name);
        // Monotone improvement across the pipeline's tail.
        let last = report.issues_after_pass.last().unwrap().1;
        assert_eq!(last, 0);
    }
}

/// Abstract: "a direct IR transformation from MLIR to LLVM will keep more
/// expression details" — structured array subscripts reach the backend in
/// the adaptor flow (and pipelining metadata survives verbatim).
#[test]
fn claim_details_survive_the_direct_path() {
    let k = kernels::kernel("gemm").unwrap();
    let art = driver::run_flow(k, &Directives::pipelined(1), driver::Flow::Adaptor).unwrap();
    let f = art.module.top_function().unwrap();
    // 2-D arrays, not flat pointers.
    for p in &f.params {
        assert!(
            matches!(p.ty.pointee(), Some(llvm_lite::Type::Array(..))),
            "param %{} stayed flat",
            p.name
        );
    }
    // The MLIR-level directive is the same node the scheduler reads.
    assert!(art
        .module
        .loop_mds
        .iter()
        .any(|md| md.pipeline_ii == Some(1) && md.tripcount == Some((16, 16))));
}

/// Directive crossover: pipelining helps massively; unrolling helps until
/// memory ports saturate.
#[test]
fn claim_directive_scaling_shape() {
    let target = Target::default();

    // A recurrence-free stencil pipelines to a large win...
    let jac = kernels::kernel("jacobi2d").unwrap();
    let base = run_experiment(jac, &Directives::default(), &target).unwrap();
    let piped_jac = run_experiment(jac, &Directives::pipelined(1), &target).unwrap();
    assert!(
        base.adaptor.report.latency as f64 / piped_jac.adaptor.report.latency as f64 > 2.0,
        "pipelining should speed jacobi2d up >2x: {} vs {}",
        base.adaptor.report.latency,
        piped_jac.adaptor.report.latency
    );

    // ...while an accumulating kernel is recurrence-limited: it still
    // improves, but by less (the classic HLS reduction story).
    let k = kernels::kernel("fir").unwrap();
    let fir_base = run_experiment(k, &Directives::default(), &target).unwrap();
    let piped = run_experiment(k, &Directives::pipelined(1), &target).unwrap();
    let fir_gain = fir_base.adaptor.report.latency as f64 / piped.adaptor.report.latency as f64;
    assert!(
        fir_gain > 1.0 && fir_gain < 3.0,
        "fir gain should be modest (recurrence-bound), got {fir_gain:.2}"
    );

    // Unrolling the pipelined loop raises II once ports saturate.
    let unrolled = run_experiment(
        k,
        &Directives {
            pipeline_ii: Some(1),
            unroll_factor: Some(8),
            partition_factor: None,
            flatten: false,
        },
        &target,
    )
    .unwrap();
    let ii_piped = piped
        .adaptor
        .report
        .loops
        .iter()
        .filter_map(|l| l.ii_achieved)
        .max()
        .unwrap();
    let ii_unrolled = unrolled
        .adaptor
        .report
        .loops
        .iter()
        .filter_map(|l| l.ii_achieved)
        .max()
        .unwrap();
    assert!(
        ii_unrolled > ii_piped,
        "unroll x8 should saturate ports: II {ii_piped} -> {ii_unrolled}"
    );
}

/// The in-place stencil (seidel2d) must be recurrence-bound while the
/// out-of-place one (jacobi2d) is only port-bound — the scheduler must see
/// the difference through the dependence analysis.
#[test]
fn claim_dependences_shape_the_ii() {
    let target = Target::default();
    let jac = run_experiment(
        kernels::kernel("jacobi2d").unwrap(),
        &Directives::pipelined(1),
        &target,
    )
    .unwrap();
    let sei = run_experiment(
        kernels::kernel("seidel2d").unwrap(),
        &Directives::pipelined(1),
        &target,
    )
    .unwrap();
    let ii = |row: &driver::ExperimentRow| {
        row.adaptor
            .report
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .unwrap_or(0)
    };
    let (ii_jac, ii_sei) = (ii(&jac), ii(&sei));
    assert!(
        ii_jac <= 3,
        "jacobi2d should be near port-bound: II {ii_jac}"
    );
    assert!(
        ii_sei > 2 * ii_jac,
        "seidel2d carried dependence must dominate: II {ii_sei} vs jacobi {ii_jac}"
    );
}

/// Extension: array partitioning lifts the port bound that caps unrolled,
/// pipelined stencils — and the directive is honoured identically by both
/// flows (attribute vs pragma).
#[test]
fn claim_partitioning_lifts_the_port_bound() {
    let target = Target::default();
    let k = kernels::kernel("jacobi2d").unwrap();
    let plain = run_experiment(k, &Directives::pipelined(1), &target).unwrap();
    let parted = run_experiment(
        k,
        &Directives {
            pipeline_ii: Some(1),
            unroll_factor: None,
            partition_factor: Some(4),
            flatten: false,
        },
        &target,
    )
    .unwrap();
    let ii = |o: &driver::experiment::FlowOutcome| {
        o.report
            .loops
            .iter()
            .filter_map(|l| l.ii_achieved)
            .max()
            .unwrap_or(0)
    };
    // Port-bound II=3 without partitioning; the 4-way split reaches II=1.
    assert!(ii(&plain.adaptor) > ii(&parted.adaptor));
    assert_eq!(
        ii(&parted.adaptor),
        1,
        "partitioned jacobi2d should hit II=1"
    );
    // Latency improves; BRAM pays for it.
    assert!(parted.adaptor.report.latency < plain.adaptor.report.latency);
    assert!(parted.adaptor.report.resources.bram_18k > plain.adaptor.report.resources.bram_18k);
    // Both flows agree (pragma path == attribute path).
    assert_eq!(ii(&parted.adaptor), ii(&parted.cpp));
    assert_eq!(parted.adaptor.report.latency, parted.cpp.report.latency);
    // And correctness is untouched.
    assert_eq!(parted.adaptor.cosim_err, 0.0);
    assert_eq!(parted.cpp.cosim_err, 0.0);
}

/// Extension: loop flattening removes the per-row pipeline drain of a
/// perfect nest — latency approaches `depth + II * (total trip - 1)`.
#[test]
fn claim_flattening_removes_pipeline_drain() {
    let target = Target::default();
    let k = kernels::kernel("jacobi2d").unwrap();
    let plain = run_experiment(k, &Directives::pipelined(1), &target).unwrap();
    let flat = run_experiment(
        k,
        &Directives {
            pipeline_ii: Some(1),
            unroll_factor: None,
            partition_factor: None,
            flatten: true,
        },
        &target,
    )
    .unwrap();
    assert!(
        flat.adaptor.report.latency < plain.adaptor.report.latency,
        "flatten should help: {} vs {}",
        flat.adaptor.report.latency,
        plain.adaptor.report.latency
    );
    // Close to the ideal single-pipeline bound: II * (14*14) + constant.
    let ideal = 3 * 14 * 14;
    assert!(
        flat.adaptor.report.latency < ideal as u64 + 80,
        "flattened latency {} far from ideal {ideal}",
        flat.adaptor.report.latency
    );
    // Both flows agree and stay correct.
    assert_eq!(flat.adaptor.report.latency, flat.cpp.report.latency);
    assert_eq!(flat.adaptor.cosim_err, 0.0);
    assert_eq!(flat.cpp.cosim_err, 0.0);
}

/// Extension (the abstract's motivation made concrete): "optimizations in
/// different levels of abstraction could benefit from cross-layer
/// optimizations" — interchanging a reduction loop at the MLIR level breaks
/// the accumulation recurrence the scheduler sees at the LLVM level.
#[test]
fn claim_mlir_level_interchange_breaks_the_recurrence() {
    use mlir_lite::passes::{InterchangeInnermost, MlirPass, PipelineInnermost};

    let mvt = kernels::kernel("mvt").unwrap();
    let synth = |interchange: bool| {
        let mut m = mlir_lite::parser::parse_module("mvt", mvt.mlir).unwrap();
        if interchange {
            assert!(InterchangeInnermost::default().run(&mut m).unwrap());
        }
        PipelineInnermost { ii: 1 }.run(&mut m).unwrap();
        let mut module = lowering::lower(m).unwrap();
        adaptor::run_adaptor(&mut module, &adaptor::AdaptorConfig::default()).unwrap();
        let report = vitis_sim::csynth(&module, &Target::default()).unwrap();
        (report, module)
    };
    let (base, _) = synth(false);
    let (swapped, swapped_mod) = synth(true);
    let ii =
        |r: &vitis_sim::CsynthReport| r.loops.iter().filter_map(|l| l.ii_achieved).max().unwrap();
    // Recurrence-bound before; floor after.
    assert!(ii(&base) >= 5, "II before {}", ii(&base));
    assert_eq!(ii(&swapped), 1, "II after {}", ii(&swapped));
    assert!(swapped.latency * 2 < base.latency);
    // And the interchange preserved the computation exactly.
    let sim = driver::cosim(&swapped_mod, mvt, 77).unwrap();
    assert_eq!(sim.max_abs_err, 0.0, "interchange changed mvt's results");
}
