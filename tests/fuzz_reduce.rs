//! Integration tests for the fuzzing subsystem: campaign reproducibility,
//! signature-preserving reduction, pinned minimization size, and the
//! clean-seed-range guarantee the CI smoke job relies on.

use fuzzing::reduce::{reduce, ReduceOpts};
use fuzzing::sig::Signature;
use fuzzing::{generate, run_campaign, run_oracles, CampaignOpts, GenConfig, OracleOpts};

/// The seed range the CI `fuzz-smoke` job walks. Every seed in it must
/// pass every oracle; a regression anywhere in the stack (parser,
/// verifier, lowering, adaptor passes, C++ flow, interpreter) shows up
/// here as a new signature.
const PINNED_CLEAN_START: u64 = 0;
const PINNED_CLEAN_COUNT: u64 = 60;

#[test]
fn fixed_seed_campaigns_are_bit_reproducible() {
    // Kernel text is a pure function of the seed...
    let cfg = GenConfig::default();
    for seed in [0u64, 17, 999, u64::MAX - 3] {
        assert_eq!(generate(seed, &cfg).text, generate(seed, &cfg).text);
    }
    // ...and so is the whole campaign verdict.
    let opts = CampaignOpts::default();
    let mut sink = |_: &str| {};
    let a = run_campaign(100, 15, &opts, &mut sink);
    let b = run_campaign(100, 15, &opts, &mut sink);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.passed, b.passed);
    assert_eq!(
        a.findings.keys().collect::<Vec<_>>(),
        b.findings.keys().collect::<Vec<_>>()
    );
}

#[test]
fn the_pinned_seed_range_is_clean() {
    let opts = CampaignOpts {
        reduce: None, // nothing to reduce on a clean range
        ..CampaignOpts::default()
    };
    let mut sink = |line: &str| eprintln!("{line}");
    let r = run_campaign(PINNED_CLEAN_START, PINNED_CLEAN_COUNT, &opts, &mut sink);
    assert_eq!(r.attempts, PINNED_CLEAN_COUNT);
    assert!(
        r.is_clean(),
        "pinned range has findings: {:?}",
        r.findings.keys().collect::<Vec<_>>()
    );
    assert_eq!(r.passed, PINNED_CLEAN_COUNT);
}

#[test]
fn reduction_preserves_the_failure_signature() {
    // Starve the oracle's fuel so a real generated kernel fails with a
    // budget signature, then reduce: the minimized kernel must fail with
    // the *identical* signature.
    let kernel = generate(3, &GenConfig::default());
    let opts = OracleOpts {
        fuel: Some(1),
        ..OracleOpts::default()
    };
    let original = run_oracles(&kernel.text, 3, &opts).unwrap_err().signature();
    let r = reduce(
        &kernel.text,
        &ReduceOpts::default(),
        &mut |cand| matches!(run_oracles(cand, 3, &opts), Err(f) if f.signature() == original),
    );
    let after = run_oracles(&r.text, 3, &opts).unwrap_err().signature();
    assert_eq!(original, after);
}

#[test]
fn a_synthetic_failure_reduces_to_a_pinned_size() {
    // A "bug" that triggers whenever %C is stored through a stride-2 loop:
    // the reducer must strip everything else and land at (or under) the
    // pinned line count, whatever seed-specific noise surrounds it.
    let text = "\
func.func @fuzzk(%A: memref<8xf32>, %B: memref<8xf32>, %C: memref<8x8xf32>) attributes {hls.top} {
  affine.for %i0 = 0 to 8 {
    %a0 = affine.load %A[%i0] : memref<8xf32>
    affine.store %a0, %B[%i0] : memref<8xf32>
  }
  affine.for %i0 = 0 to 8 step 2 {
    affine.for %i1 = 0 to 4 {
      %a1 = affine.load %B[%i1] : memref<8xf32>
      %b1 = affine.load %C[%i1, %i0] : memref<8x8xf32>
      %v1 = arith.mulf %a1, %b1 : f32
      affine.store %v1, %C[%i1, %i0] : memref<8x8xf32>
    }
  }
  func.return
}
";
    let mut still_fails = |t: &str| t.contains("step 2") && t.contains(", %C[");
    assert!(still_fails(text));
    let r = reduce(text, &ReduceOpts::default(), &mut still_fails);
    assert!(still_fails(&r.text), "lost the failure:\n{}", r.text);
    // 9 lines is the floor: the signature needs the `step 2` loop and the
    // store to %C, the store needs both induction variables, and the frame
    // (func/return/braces) is irreducible.
    let lines = r.text.lines().count();
    assert!(
        lines <= 9,
        "expected <= 9 lines after reduction, got {lines}:\n{}",
        r.text
    );
    // The unrelated first loop and the unused %A buffer must be gone.
    assert!(!r.text.contains("%A"));
}

#[test]
fn corpus_entries_replay_through_the_corpus_module() {
    // End-to-end: force a failure, store the finding, load it back, and
    // confirm the stored kernel still reproduces the stored signature.
    let opts = CampaignOpts {
        oracle: OracleOpts {
            fuel: Some(1),
            ..OracleOpts::default()
        },
        reduce: Some(ReduceOpts { max_attempts: 40 }),
        ..CampaignOpts::default()
    };
    let mut sink = |_: &str| {};
    let result = run_campaign(0, 3, &opts, &mut sink);
    assert!(!result.is_clean());

    let dir = std::env::temp_dir().join(format!("mha-fuzz-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = driver::Corpus::open(&dir).unwrap();
    for f in result.findings.values() {
        corpus.store(f).unwrap();
    }
    let paths = corpus.list().unwrap();
    assert_eq!(paths.len(), result.findings.len());
    for path in paths {
        let e = driver::corpus::Corpus::load(&path).unwrap();
        let replayed: Signature = run_oracles(&e.kernel, e.seed, &opts.oracle)
            .unwrap_err()
            .signature();
        assert_eq!(replayed, e.signature, "{}", path.display());
    }
}
