//! Service-level contract tests for `mha-serve` (ISSUE 8).
//!
//! The server is started in-process ([`driver::Server`] on port 0) and
//! driven over real TCP, so these tests cover the wire format, not just
//! the engine: compile-over-HTTP must equal the library flow byte for
//! byte, identical concurrent requests must coalesce onto one
//! compilation, budget trips must surface as HTTP 408 carrying the
//! stable budget grammar, and a drained-then-restarted server must serve
//! journaled responses warm without recompiling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use driver::{run_flow_on_text, Directives, Flow, ServeConfig, Server};
use pass_core::report::json_str;
use pass_core::{Budget, BudgetError, BudgetKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mha-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        cache_dir: Some(dir.to_path_buf()),
        workers: 2,
        ..ServeConfig::default()
    }
}

/// Minimal HTTP client: request in, `(status, X-Mha-Served, body)` out.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line '{status_line}'"));
    let mut served = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("x-mha-served") {
                served = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    (code, served, String::from_utf8(buf).expect("utf-8 body"))
}

fn compile(addr: std::net::SocketAddr, body: &str) -> (u16, String, String) {
    http(addr, "POST", "/v1/compile", body)
}

/// A deterministic raw-MLIR request body from the fuzzer's generator.
fn fuzz_request(seed: u64) -> String {
    let g = fuzzing::generate(seed, &fuzzing::GenConfig::default());
    format!("{{\"mlir\":{},\"name\":\"fuzzk\"}}", json_str(&g.text))
}

#[test]
fn compile_over_http_equals_the_library_flow_byte_for_byte() {
    let dir = temp_dir("http-vs-lib");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    let g = fuzzing::generate(11, &fuzzing::GenConfig::default());
    let (code, served, body) = compile(addr, &fuzz_request(11));
    assert_eq!(code, 200, "body: {body}");
    assert_eq!(served, "compiled");

    // The same source through the library entry point the server wraps.
    let art = run_flow_on_text(
        "fuzzk",
        &g.text,
        &Directives::pipelined(1),
        Flow::Adaptor,
        &Budget::unlimited(),
    )
    .expect("library flow succeeds");
    let expect_text = llvm_lite::printer::print_module(&art.module);

    let v = pass_core::json::parse(&body).expect("response is JSON");
    let outcome = v.get("outcome").expect("outcome object");
    assert_eq!(outcome.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        outcome.get("module_text").unwrap().as_str(),
        Some(expect_text.as_str()),
        "HTTP module text must be byte-identical to run_flow_on_text"
    );
    // The response's pipeline report covers the same stages the library
    // flow ran, stage-prefixed, plus the serve-side csynth stage.
    let report = outcome.get("report").expect("report object");
    let passes = report.get("passes").unwrap().as_arr().unwrap();
    let names: Vec<String> = passes
        .iter()
        .filter_map(|p| p.get("pass").and_then(|x| x.as_str()).map(str::to_string))
        .collect();
    for stage in &art.report.passes {
        assert!(
            names.iter().any(|n| n == &format!("flow/{}", stage.pass)),
            "stage flow/{} missing from HTTP report {names:?}",
            stage.pass
        );
    }
    assert!(names.iter().any(|n| n == "csynth"), "{names:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_concurrent_requests_coalesce_onto_one_compilation() {
    let dir = temp_dir("coalesce");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    let body = fuzz_request(23);
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| compile(addr, &body));
        let tb = scope.spawn(|| compile(addr, &body));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(a.0, 200, "body: {}", a.2);
    assert_eq!(b.0, 200, "body: {}", b.2);
    // Responses are byte-identical however they were served.
    assert_eq!(a.2, b.2);
    // Exactly one request compiled; the other coalesced onto it (or, if
    // it lost the race entirely, hit the response cache).
    let markers = {
        let mut m = [a.1.as_str(), b.1.as_str()];
        m.sort_unstable();
        m
    };
    assert_eq!(markers.iter().filter(|m| **m == "compiled").count(), 1);
    assert!(
        markers
            .iter()
            .all(|m| ["compiled", "coalesced", "cache"].contains(m)),
        "unexpected served markers {markers:?}"
    );

    // The status endpoint agrees: one compile, one shared result.
    let (code, _, status) = http(addr, "GET", "/v1/status", "");
    assert_eq!(code, 200);
    let v = pass_core::json::parse(&status).unwrap();
    let requests = v.get("requests").unwrap();
    assert_eq!(requests.get("compiled").unwrap().as_u64(), Some(1));
    assert_eq!(requests.get("compile_total").unwrap().as_u64(), Some(2));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exceeded_request_returns_408_with_the_stable_grammar() {
    let dir = temp_dir("budget-408");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    // Cold cache + zero deadline: the first stage boundary must trip.
    let (code, _, body) = compile(addr, "{\"kernel\":\"gemm\",\"deadline_ms\":0}");
    assert_eq!(code, 408, "body: {body}");
    let v = pass_core::json::parse(&body).unwrap();
    let outcome = v.get("outcome").unwrap();
    assert_eq!(outcome.get("status").unwrap().as_str(), Some("failed"));
    assert!(outcome
        .get("class")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("budget-deadline"));
    // The rendered field carries the stable budget grammar, recoverable
    // structurally by clients.
    let rendered = v.get("rendered").unwrap().as_str().unwrap();
    let trip = BudgetError::from_rendered(rendered)
        .unwrap_or_else(|| panic!("'{rendered}' does not parse as the budget grammar"));
    assert_eq!(trip.kind, BudgetKind::Deadline);

    // Budget trips are not deterministic verdicts: they must not be
    // cached, so a retry without the deadline succeeds.
    let (code, served, body) = compile(addr, "{\"kernel\":\"gemm\"}");
    assert_eq!(code, 200, "body: {body}");
    assert_eq!(served, "compiled");

    // Fuel exhaustion maps to 429, same grammar.
    let (code, _, body) = compile(addr, "{\"kernel\":\"two_mm\",\"fuel\":1}");
    assert_eq!(code, 429, "body: {body}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_then_restart_serves_the_journaled_result_warm() {
    let dir = temp_dir("warm-restart");
    let body = fuzz_request(42);

    let server = Server::start(config(&dir)).expect("first server starts");
    let addr = server.addr();
    let (code, served, first) = compile(addr, &body);
    assert_eq!(code, 200, "body: {first}");
    assert_eq!(served, "compiled");
    // Cooperative drain: stop() joins the pool after in-flight work (and
    // its journal writes) complete.
    server.stop();

    let server = Server::start(config(&dir)).expect("restarted server starts");
    let addr = server.addr();
    let (code, served, second) = compile(addr, &body);
    assert_eq!(code, 200, "body: {second}");
    assert_eq!(
        served, "warm",
        "restarted server must replay the journaled response"
    );
    assert_eq!(first, second, "replayed response must be byte-identical");

    // The status endpoint records the warm hit and no compilation.
    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let requests = v.get("requests").unwrap();
    assert_eq!(requests.get("compiled").unwrap().as_u64(), Some(0));
    assert_eq!(requests.get("warm_hits").unwrap().as_u64(), Some(1));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Resilience-layer tests (ISSUE 9)
// ---------------------------------------------------------------------------

use driver::{BreakerConfig, ChaosConfig, FairQueueConfig, STREAM_MEDIA_TYPE};

/// Send one request on an already-open connection and read one response.
/// Returns `(status, X-Mha-Served, body, all headers)`.
fn request_on(
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
    keep: bool,
) -> (u16, String, String, Vec<(String, String)>) {
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n{extra_headers}Connection: {}\r\n\r\n{body}",
        body.len(),
        if keep { "keep-alive" } else { "close" },
    );
    reader.get_mut().write_all(req.as_bytes()).expect("send");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line '{status_line}'"));
    let mut served = String::new();
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            if name.eq_ignore_ascii_case("x-mha-served") {
                served = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    (
        code,
        served,
        String::from_utf8(buf).expect("utf-8"),
        headers,
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn keep_alive_connection_serves_multiple_requests_on_one_socket() {
    let dir = temp_dir("keep-alive");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream);

    let body = fuzz_request(71);
    let mut last = String::new();
    for i in 0..3 {
        let (code, served, resp, headers) =
            request_on(&mut reader, "POST", "/v1/compile", &body, "", true);
        assert_eq!(code, 200, "request {i}: {resp}");
        if i == 0 {
            assert_eq!(served, "compiled");
        } else {
            assert_eq!(served, "cache", "request {i} should hit the cache");
            assert_eq!(resp, last, "cache replay must be byte-identical");
        }
        last = resp;
        // The server advertises keep-alive back with its policy.
        let ka = header(&headers, "keep-alive").expect("keep-alive header");
        assert!(ka.contains("timeout="), "keep-alive header '{ka}'");
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    }

    // All three requests rode one socket: the server counts two reuses.
    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let res = v.get("resilience").expect("resilience object");
    assert_eq!(res.get("keepalive_reuses").unwrap().as_u64(), Some(2));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Read one chunked-transfer response body and return its decoded lines.
fn read_chunked_lines(reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut decoded = String::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size '{size_line}'"));
        if size == 0 {
            let mut crlf = String::new();
            reader.read_line(&mut crlf).expect("trailer");
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // payload + CRLF
        reader.read_exact(&mut chunk).expect("chunk payload");
        decoded.push_str(&String::from_utf8_lossy(&chunk[..size]));
    }
    decoded.lines().map(str::to_string).collect()
}

#[test]
fn streaming_accept_yields_stage_events_and_the_same_response_body() {
    let dir = temp_dir("stream");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();
    let body = fuzz_request(83);

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let req = format!(
        "POST /v1/compile HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nAccept: {STREAM_MEDIA_TYPE}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    reader.get_mut().write_all(req.as_bytes()).expect("send");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status");
    assert!(
        status_line.contains("200"),
        "stream transport is always 200, got '{status_line}'"
    );
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if line.to_ascii_lowercase().contains("transfer-encoding")
            && line.to_ascii_lowercase().contains("chunked")
        {
            chunked = true;
        }
    }
    assert!(chunked, "stream responses use chunked transfer");
    let events = read_chunked_lines(&mut reader);
    assert!(events.len() >= 3, "expected start/stage/done: {events:?}");
    let first = pass_core::json::parse(&events[0]).expect("start event JSON");
    assert_eq!(first.get("event").unwrap().as_str(), Some("start"));
    assert!(
        events[1..events.len() - 1].iter().any(|e| {
            pass_core::json::parse(e)
                .ok()
                .and_then(|v| v.get("event").map(|x| x.as_str() == Some("stage")))
                .unwrap_or(false)
        }),
        "no stage event in {events:?}"
    );
    let done = pass_core::json::parse(events.last().unwrap()).expect("done event JSON");
    assert_eq!(done.get("event").unwrap().as_str(), Some("done"));
    assert_eq!(done.get("code").unwrap().as_u64(), Some(200));

    // The embedded body equals what a plain (cache-served) request gets.
    let (code, served, plain) = compile(addr, &body);
    assert_eq!(code, 200);
    assert_eq!(served, "cache");
    let plain_v = pass_core::json::parse(&plain).unwrap();
    assert_eq!(
        done.get("body").unwrap().get("digest").unwrap().as_str(),
        plain_v.get("digest").unwrap().as_str(),
        "streamed body must describe the same compilation"
    );

    // The streamed counter moved.
    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let res = v.get("resilience").unwrap();
    assert!(res.get("streamed").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_429_and_retry_after_but_never_sheds_warm_hits() {
    let dir = temp_dir("shed");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.queue = FairQueueConfig {
        max_depth: 2,
        ..FairQueueConfig::default()
    };
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr();

    // Warm one response up front: it must survive any pressure below.
    let warm_body = fuzz_request(90);
    let (code, _, _) = compile(addr, &warm_body);
    assert_eq!(code, 200);

    let mut sheds = 0;
    for round in 0..3 {
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                let body = fuzz_request(1000 + round * 100 + i);
                handles.push(scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut reader = BufReader::new(stream);
                    request_on(&mut reader, "POST", "/v1/compile", &body, "", false)
                }));
            }
            // The warm hit races the flood and must still answer 200.
            let warm = scope.spawn(|| compile(addr, &warm_body));
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let (wc, ws, _) = warm.join().unwrap();
            assert_eq!(wc, 200, "warm hit shed under pressure");
            assert!(["cache", "warm"].contains(&ws.as_str()), "served {ws}");
            results
        });
        for (code, _, body, headers) in results {
            if code == 429 && body.contains("shed") {
                assert!(
                    header(&headers, "retry-after").is_some(),
                    "shed 429 without Retry-After"
                );
                sheds += 1;
            } else {
                assert_eq!(code, 200, "body: {body}");
            }
        }
        if sheds > 0 {
            break;
        }
    }
    assert!(sheds > 0, "depth-2 queue never shed a 10-request flood");

    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let shed = v.get("resilience").unwrap().get("shed").unwrap();
    assert!(shed.get("raw").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn breaker_trips_on_transient_chaos_and_degrades_to_the_cpp_fallback() {
    let dir = temp_dir("breaker");
    let mut cfg = config(&dir);
    // Every raw compile rolls the serve/compile chaos site; the menu is
    // seed-hashed per digest, so some seeds draw the transient fault.
    cfg.chaos = Some(ChaosConfig {
        seed: 2026,
        rate: 1.0,
    });
    cfg.breaker = BreakerConfig {
        window: 8,
        min_samples: 1,
        trip_ratio: 0.3,
        cooldown_ms: 120_000, // stays open for the whole test
    };
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr();

    // At chaos rate 1.0 the serve/response SocketReset site can also
    // fire, dropping the connection before the response: resend until the
    // per-digest attempt counter clears it (that recovery is itself part
    // of the contract under test).
    let post_with_retry = |body: &str| -> (u16, String, String, Vec<(String, String)>) {
        for _ in 0..10 {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let mut reader = BufReader::new(stream);
            let req = format!(
                "POST /v1/compile HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            reader.get_mut().write_all(req.as_bytes()).expect("send");
            let mut status_line = String::new();
            if reader.read_line(&mut status_line).is_err() || status_line.is_empty() {
                continue; // chaos reset the socket; resend
            }
            let code: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|c| c.parse().ok())
                .unwrap_or_else(|| panic!("bad status line '{status_line}'"));
            let mut served = String::new();
            let mut content_length = 0usize;
            let mut headers = Vec::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).expect("header");
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
                    if name.eq_ignore_ascii_case("x-mha-served") {
                        served = value.trim().to_string();
                    } else if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap();
                    }
                }
            }
            let mut buf = vec![0u8; content_length];
            if reader.read_exact(&mut buf).is_err() {
                continue; // reset mid-body; resend
            }
            return (
                code,
                served,
                String::from_utf8(buf).expect("utf-8"),
                headers,
            );
        }
        panic!("10 resends all lost to socket resets");
    };

    // Seed-search until chaos draws the transient serve/compile fault and
    // trips the breaker (each digest has ~1/2 odds; 40 tries is
    // vanishingly safe). The tripping 503 itself is eaten by the
    // serve/response reset at rate 1.0 — the trip is observed in status.
    let mut tripped = false;
    for seed in 300..340 {
        let (code, _, body, _) = post_with_retry(&fuzz_request(seed));
        assert!(code == 200 || code == 503, "unexpected {code}: {body}");
        let (_, _, status) = http(addr, "GET", "/v1/status", "");
        let sv = pass_core::json::parse(&status).unwrap();
        let breaker = sv.get("resilience").unwrap().get("breaker").unwrap();
        if breaker.get("state").unwrap().as_str() == Some("open") {
            tripped = true;
            break;
        }
    }
    assert!(tripped, "chaos rate 1.0 never drew a transient fault");

    // The breaker is now open: the next adaptor request runs the
    // deterministic C++ fallback (chaos disabled on the safety net) and
    // says so in the body.
    let (code, served, body, _) = post_with_retry(&fuzz_request(999));
    assert_eq!(code, 200, "degraded request failed: {body}");
    assert_eq!(served, "compiled");
    assert!(
        body.contains("\"breaker\":\"open\""),
        "degraded body lacks breaker marker: {body}"
    );
    let v = pass_core::json::parse(&body).unwrap();
    assert_eq!(v.get("flow").unwrap().as_str(), Some("hls-c++"));
    assert_eq!(
        v.get("outcome").unwrap().get("status").unwrap().as_str(),
        Some("degraded")
    );

    // A request already on the C++ flow has nothing to degrade to: the
    // open breaker rejects it with a deterministic 503 + Retry-After.
    let g = fuzzing::generate(1234, &fuzzing::GenConfig::default());
    let cpp_body = format!(
        "{{\"mlir\":{},\"name\":\"fuzzk\",\"flow\":\"cpp\"}}",
        json_str(&g.text)
    );
    let (code, _, body, headers) = post_with_retry(&cpp_body);
    assert_eq!(code, 503, "breaker-open cpp request: {body}");
    assert!(
        header(&headers, "retry-after").is_some(),
        "breaker 503 without Retry-After"
    );
    assert!(body.contains("circuit breaker open"), "body: {body}");

    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let sv = pass_core::json::parse(&status).unwrap();
    let breaker = sv.get("resilience").unwrap().get("breaker").unwrap();
    assert_eq!(breaker.get("state").unwrap().as_str(), Some("open"));
    assert!(breaker.get("trips").unwrap().as_u64().unwrap() >= 1);
    assert!(breaker.get("degraded").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_heads_and_stalled_bodies_are_cut_off_with_408() {
    let dir = temp_dir("loris");
    let mut cfg = config(&dir);
    cfg.header_deadline_ms = 150;
    cfg.read_timeout_ms = 300;
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr();

    // A header that never completes is answered 408 at the deadline.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/compile HTT")
        .expect("partial head");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    assert!(
        status_line.contains("408"),
        "slow-loris head got '{status_line}'"
    );

    // A complete head whose body stalls is answered 408 at the body
    // deadline (the --read-timeout-ms satellite).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/compile HTTP/1.1\r\nHost: test\r\nContent-Length: 50\r\n\r\n{\"kern")
        .expect("head + stalled body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    assert!(
        status_line.contains("408"),
        "stalled body got '{status_line}'"
    );

    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let res = v.get("resilience").unwrap();
    assert!(res.get("header_timeouts").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_completes_even_with_an_idle_keepalive_connection_parked() {
    let dir = temp_dir("drain-keepalive");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    // Park an idle keep-alive connection on the server.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let (code, _, _, _) = request_on(
        &mut reader,
        "POST",
        "/v1/compile",
        &fuzz_request(77),
        "",
        true,
    );
    assert_eq!(code, 200);

    // Shutdown must drain promptly despite the parked connection — the
    // non-blocking listener + closed queues replace the old loopback
    // "nudge" that could hang. A watchdog enforces promptness.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let (code, _, body) = http(addr, "POST", "/v1/shutdown", "");
        assert_eq!(code, 200, "shutdown: {body}");
        server.stop();
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown hung with an idle keep-alive connection");
    handle.join().unwrap();
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Process-isolation tests (ISSUE 10)
// ---------------------------------------------------------------------------

use driver::{ChaosEngine, ChaosFault, CRASH_MENU};

/// The tentpole acceptance pin: with `--isolate`, a chaos-injected worker
/// death during an in-flight compile answers a typed `crash` 500 while the
/// server keeps serving subsequent requests warm from the same process.
#[test]
fn worker_crash_mid_compile_is_a_typed_500_and_the_server_stays_warm() {
    let dir = temp_dir("warden-crash");
    // Pick a chaos seed where the bomb request draws a worker kill at the
    // in-worker `warden` site while the polite request draws nothing.
    let rate = 0.5;
    let seed = (0u64..100_000)
        .find(|&s| {
            let eng = ChaosEngine::new(ChaosConfig { seed: s, rate });
            matches!(
                eng.roll("crashme", "warden", 0, &CRASH_MENU),
                Some(ChaosFault::WorkerKill)
            ) && eng.roll("fuzzk", "warden", 0, &CRASH_MENU).is_none()
        })
        .expect("a crash-selective chaos seed exists");

    let server = Server::start(ServeConfig {
        isolate: true,
        warden_pool: 2,
        warden_chaos: Some(ChaosConfig { seed, rate }),
        ..config(&dir)
    })
    .expect("server starts");
    let addr = server.addr();

    // A polite request compiles inside a worker process.
    let (code, served, body) = compile(addr, &fuzz_request(11));
    assert_eq!(code, 200, "body: {body}");
    assert_eq!(served, "compiled");

    // The bomb's worker is killed mid-compile: typed 500, class `crash`.
    let g = fuzzing::generate(11, &fuzzing::GenConfig::default());
    let bomb = format!("{{\"mlir\":{},\"name\":\"crashme\"}}", json_str(&g.text));
    let (code, _, body) = compile(addr, &bomb);
    assert_eq!(code, 500, "body: {body}");
    let v = pass_core::json::parse(&body).expect("error body is JSON");
    let outcome = v.get("outcome").expect("outcome object");
    assert_eq!(outcome.get("status").unwrap().as_str(), Some("failed"));
    assert_eq!(outcome.get("class").unwrap().as_str(), Some("crash"));

    // The server itself survived: health stays green and the earlier
    // response still answers from the in-memory cache — the crash neither
    // killed the process nor poisoned the cache.
    let (code, _, _) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!(code, 200);
    let (code, served, _) = compile(addr, &fuzz_request(11));
    assert_eq!(code, 200);
    assert_eq!(served, "cache");

    // Status carries the crash count and live worker-pool counters.
    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let sv = pass_core::json::parse(&status).unwrap();
    let resilience = sv.get("resilience").expect("resilience object");
    assert_eq!(resilience.get("crashes").unwrap().as_u64(), Some(1));
    let warden = sv.get("warden").expect("warden object in status");
    assert!(warden.get("executed").unwrap().as_u64().unwrap() >= 2);
    assert!(warden.get("crashes").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The response cache is bounded: with `--max-cached-responses 1` the
/// second distinct compile evicts the first, and the status counters
/// expose hits, misses, and evictions.
#[test]
fn bounded_response_cache_evicts_lru_and_reports_counters() {
    let dir = temp_dir("cache-bound");
    let server = Server::start(ServeConfig {
        max_cached_responses: 1,
        ..config(&dir)
    })
    .expect("server starts");
    let addr = server.addr();

    let (code, _, _) = compile(addr, &fuzz_request(21));
    assert_eq!(code, 200);
    let (_, served, _) = compile(addr, &fuzz_request(21));
    assert_eq!(served, "cache", "within the bound the repeat hits");

    // A second distinct response evicts the first (cap is 1)...
    let (code, _, _) = compile(addr, &fuzz_request(22));
    assert_eq!(code, 200);
    // ...so the first request recompiles (journal replay is off-path for
    // a live server; the in-memory response cache answered before).
    let (_, served, _) = compile(addr, &fuzz_request(21));
    assert_ne!(served, "cache", "evicted entry must not answer from cache");

    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let rc = v.get("response_cache").expect("response_cache in status");
    assert_eq!(rc.get("cap").unwrap().as_u64(), Some(1));
    assert_eq!(rc.get("size").unwrap().as_u64(), Some(1));
    assert!(rc.get("hits").unwrap().as_u64().unwrap() >= 1);
    assert!(rc.get("evictions").unwrap().as_u64().unwrap() >= 1);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
