//! Service-level contract tests for `mha-serve` (ISSUE 8).
//!
//! The server is started in-process ([`driver::Server`] on port 0) and
//! driven over real TCP, so these tests cover the wire format, not just
//! the engine: compile-over-HTTP must equal the library flow byte for
//! byte, identical concurrent requests must coalesce onto one
//! compilation, budget trips must surface as HTTP 408 carrying the
//! stable budget grammar, and a drained-then-restarted server must serve
//! journaled responses warm without recompiling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use driver::{run_flow_on_text, Directives, Flow, ServeConfig, Server};
use pass_core::report::json_str;
use pass_core::{Budget, BudgetError, BudgetKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mha-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        cache_dir: Some(dir.to_path_buf()),
        workers: 2,
        ..ServeConfig::default()
    }
}

/// Minimal HTTP client: request in, `(status, X-Mha-Served, body)` out.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line '{status_line}'"));
    let mut served = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("x-mha-served") {
                served = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    (code, served, String::from_utf8(buf).expect("utf-8 body"))
}

fn compile(addr: std::net::SocketAddr, body: &str) -> (u16, String, String) {
    http(addr, "POST", "/v1/compile", body)
}

/// A deterministic raw-MLIR request body from the fuzzer's generator.
fn fuzz_request(seed: u64) -> String {
    let g = fuzzing::generate(seed, &fuzzing::GenConfig::default());
    format!("{{\"mlir\":{},\"name\":\"fuzzk\"}}", json_str(&g.text))
}

#[test]
fn compile_over_http_equals_the_library_flow_byte_for_byte() {
    let dir = temp_dir("http-vs-lib");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    let g = fuzzing::generate(11, &fuzzing::GenConfig::default());
    let (code, served, body) = compile(addr, &fuzz_request(11));
    assert_eq!(code, 200, "body: {body}");
    assert_eq!(served, "compiled");

    // The same source through the library entry point the server wraps.
    let art = run_flow_on_text(
        "fuzzk",
        &g.text,
        &Directives::pipelined(1),
        Flow::Adaptor,
        &Budget::unlimited(),
    )
    .expect("library flow succeeds");
    let expect_text = llvm_lite::printer::print_module(&art.module);

    let v = pass_core::json::parse(&body).expect("response is JSON");
    let outcome = v.get("outcome").expect("outcome object");
    assert_eq!(outcome.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        outcome.get("module_text").unwrap().as_str(),
        Some(expect_text.as_str()),
        "HTTP module text must be byte-identical to run_flow_on_text"
    );
    // The response's pipeline report covers the same stages the library
    // flow ran, stage-prefixed, plus the serve-side csynth stage.
    let report = outcome.get("report").expect("report object");
    let passes = report.get("passes").unwrap().as_arr().unwrap();
    let names: Vec<String> = passes
        .iter()
        .filter_map(|p| p.get("pass").and_then(|x| x.as_str()).map(str::to_string))
        .collect();
    for stage in &art.report.passes {
        assert!(
            names.iter().any(|n| n == &format!("flow/{}", stage.pass)),
            "stage flow/{} missing from HTTP report {names:?}",
            stage.pass
        );
    }
    assert!(names.iter().any(|n| n == "csynth"), "{names:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_concurrent_requests_coalesce_onto_one_compilation() {
    let dir = temp_dir("coalesce");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    let body = fuzz_request(23);
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| compile(addr, &body));
        let tb = scope.spawn(|| compile(addr, &body));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(a.0, 200, "body: {}", a.2);
    assert_eq!(b.0, 200, "body: {}", b.2);
    // Responses are byte-identical however they were served.
    assert_eq!(a.2, b.2);
    // Exactly one request compiled; the other coalesced onto it (or, if
    // it lost the race entirely, hit the response cache).
    let markers = {
        let mut m = [a.1.as_str(), b.1.as_str()];
        m.sort_unstable();
        m
    };
    assert_eq!(markers.iter().filter(|m| **m == "compiled").count(), 1);
    assert!(
        markers
            .iter()
            .all(|m| ["compiled", "coalesced", "cache"].contains(m)),
        "unexpected served markers {markers:?}"
    );

    // The status endpoint agrees: one compile, one shared result.
    let (code, _, status) = http(addr, "GET", "/v1/status", "");
    assert_eq!(code, 200);
    let v = pass_core::json::parse(&status).unwrap();
    let requests = v.get("requests").unwrap();
    assert_eq!(requests.get("compiled").unwrap().as_u64(), Some(1));
    assert_eq!(requests.get("compile_total").unwrap().as_u64(), Some(2));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exceeded_request_returns_408_with_the_stable_grammar() {
    let dir = temp_dir("budget-408");
    let server = Server::start(config(&dir)).expect("server starts");
    let addr = server.addr();

    // Cold cache + zero deadline: the first stage boundary must trip.
    let (code, _, body) = compile(addr, "{\"kernel\":\"gemm\",\"deadline_ms\":0}");
    assert_eq!(code, 408, "body: {body}");
    let v = pass_core::json::parse(&body).unwrap();
    let outcome = v.get("outcome").unwrap();
    assert_eq!(outcome.get("status").unwrap().as_str(), Some("failed"));
    assert!(outcome
        .get("class")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("budget-deadline"));
    // The rendered field carries the stable budget grammar, recoverable
    // structurally by clients.
    let rendered = v.get("rendered").unwrap().as_str().unwrap();
    let trip = BudgetError::from_rendered(rendered)
        .unwrap_or_else(|| panic!("'{rendered}' does not parse as the budget grammar"));
    assert_eq!(trip.kind, BudgetKind::Deadline);

    // Budget trips are not deterministic verdicts: they must not be
    // cached, so a retry without the deadline succeeds.
    let (code, served, body) = compile(addr, "{\"kernel\":\"gemm\"}");
    assert_eq!(code, 200, "body: {body}");
    assert_eq!(served, "compiled");

    // Fuel exhaustion maps to 429, same grammar.
    let (code, _, body) = compile(addr, "{\"kernel\":\"two_mm\",\"fuel\":1}");
    assert_eq!(code, 429, "body: {body}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_then_restart_serves_the_journaled_result_warm() {
    let dir = temp_dir("warm-restart");
    let body = fuzz_request(42);

    let server = Server::start(config(&dir)).expect("first server starts");
    let addr = server.addr();
    let (code, served, first) = compile(addr, &body);
    assert_eq!(code, 200, "body: {first}");
    assert_eq!(served, "compiled");
    // Cooperative drain: stop() joins the pool after in-flight work (and
    // its journal writes) complete.
    server.stop();

    let server = Server::start(config(&dir)).expect("restarted server starts");
    let addr = server.addr();
    let (code, served, second) = compile(addr, &body);
    assert_eq!(code, 200, "body: {second}");
    assert_eq!(
        served, "warm",
        "restarted server must replay the journaled response"
    );
    assert_eq!(first, second, "replayed response must be byte-identical");

    // The status endpoint records the warm hit and no compilation.
    let (_, _, status) = http(addr, "GET", "/v1/status", "");
    let v = pass_core::json::parse(&status).unwrap();
    let requests = v.get("requests").unwrap();
    assert_eq!(requests.get("compiled").unwrap().as_u64(), Some(0));
    assert_eq!(requests.get("warm_hits").unwrap().as_u64(), Some(1));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
