//! Dependence-analysis + transform-legality pins over fixture nests.
//!
//! Each fixture pins the *exact* distance vectors the `analysis::depend`
//! engine derives and the witness text it attaches to refusals, at both
//! front ends: llvm-lite nests lifted by `analysis::depend::nests` and
//! MLIR-lite nests as seen by the legality-gated `interchange-innermost`
//! pass. The skewed nest is the headline regression: the old pass swapped
//! any perfect pair unconditionally; the engine now refuses it with a
//! dependence witness.

use analysis::depend::{nests, DepKind, DistElem, TransformLegality};
use mlir_lite::passes::{InterchangeInnermost, MlirPass};

fn nest_of(src: &str) -> analysis::depend::LoopNest {
    let m = llvm_lite::parser::parse_module("fixture", src).expect("fixture parses");
    let mut ns = nests(&m.functions[0]);
    assert_eq!(ns.len(), 1, "fixture must have exactly one innermost nest");
    ns.pop().unwrap()
}

/// Canonical gemm i-j-k: C[i][j] += A[i][k] * B[k][j]. The accumulation
/// recurrence on C is carried by the innermost (k) level only, so every
/// pairwise interchange is legal, the i level is parallel, and the k
/// level is not.
const GEMM: &str = r#"
define void @gemm([8 x [8 x float]]* %c, [8 x [8 x float]]* %a, [8 x [8 x float]]* %b) {
entry:
  br label %ih

ih:
  %i = phi i64 [ 0, %entry ], [ %inext, %il ]
  %ci = icmp slt i64 %i, 8
  br i1 %ci, label %jh, label %exit

jh:
  %j = phi i64 [ 0, %ih ], [ %jnext, %jl ]
  %cj = icmp slt i64 %j, 8
  br i1 %cj, label %kh, label %il

kh:
  %k = phi i64 [ 0, %jh ], [ %knext, %kb ]
  %ck = icmp slt i64 %k, 8
  br i1 %ck, label %kb, label %jl

kb:
  %pa = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %a, i64 0, i64 %i, i64 %k
  %va = load float, float* %pa, align 4
  %pb = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %b, i64 0, i64 %k, i64 %j
  %vb = load float, float* %pb, align 4
  %prod = fmul float %va, %vb
  %pc = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %c, i64 0, i64 %i, i64 %j
  %vc = load float, float* %pc, align 4
  %sum = fadd float %vc, %prod
  store float %sum, float* %pc, align 4
  %knext = add i64 %k, 1
  br label %kh

jl:
  %jnext = add i64 %j, 1
  br label %jh

il:
  %inext = add i64 %i, 1
  br label %ih

exit:
  ret void
}
"#;

#[test]
fn gemm_accumulation_is_carried_by_k_only() {
    let nest = nest_of(GEMM);
    assert_eq!(nest.loops.len(), 3);
    let leg = TransformLegality::new(&nest);
    // Every dependence is on C with (0, 0, *): independent at i and j,
    // carried at k.
    assert!(!leg.dependences().is_empty());
    for d in leg.dependences() {
        assert_eq!(
            d.dist,
            vec![DistElem::Exact(0), DistElem::Exact(0), DistElem::Star],
            "unexpected vector for {}",
            nest.render_dep(d)
        );
    }
    // All three pairwise interchanges preserve the (0, 0, +) ordering.
    assert!(leg.interchange_legal(0, 1).is_ok());
    assert!(leg.interchange_legal(1, 2).is_ok());
    assert!(leg.interchange_legal(0, 2).is_ok());
    // i iterations never collide; k iterations form the recurrence.
    assert!(leg.unroll_parallel(0).is_ok());
    let w = leg.unroll_parallel(2).unwrap_err();
    assert!(w.dep.is_some());
    assert!(
        w.reason.contains("level %k carries the") && w.reason.contains("distance vector (0, 0, *)"),
        "witness: {}",
        w.reason
    );
}

/// The headline regression nest: A[i+1][j] = A[i][j+1] carries a (1, -1)
/// flow dependence — legal as written, reversed by an i<->j interchange.
/// The old `interchange-innermost` swapped any perfect pair; the engine
/// must now refuse this one with the witness.
const SKEWED_LL: &str = r#"
define void @skew([16 x [16 x float]]* %a) {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %ci = icmp slt i64 %i, 8
  br i1 %ci, label %ih, label %exit

ih:
  %j = phi i64 [ 0, %oh ], [ %jnext, %ib ]
  %cj = icmp slt i64 %j, 8
  br i1 %cj, label %ib, label %ol

ib:
  %jp1 = add i64 %j, 1
  %ip1 = add i64 %i, 1
  %pl = getelementptr inbounds [16 x [16 x float]], [16 x [16 x float]]* %a, i64 0, i64 %i, i64 %jp1
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [16 x [16 x float]], [16 x [16 x float]]* %a, i64 0, i64 %ip1, i64 %j
  store float %v, float* %ps, align 4
  %jnext = add i64 %j, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;

#[test]
fn skewed_nest_pins_the_exact_vector_and_witness() {
    let nest = nest_of(SKEWED_LL);
    let leg = TransformLegality::new(&nest);
    assert_eq!(leg.dependences().len(), 1);
    let d = &leg.dependences()[0];
    assert_eq!(d.kind, DepKind::Flow);
    assert!(d.exact, "the (1, -1) dependence is provably real");
    assert_eq!(d.dist, vec![DistElem::Exact(1), DistElem::Exact(-1)]);

    let w = leg.interchange_legal(0, 1).unwrap_err();
    let dep = w.dep.as_ref().expect("refusal is dependence-backed");
    assert_eq!(dep.dist, d.dist);
    assert!(
        w.reason
            .contains("interchanging %i and %j would reverse the flow dependence")
            && w.reason.contains("distance vector (1, -1)"),
        "witness: {}",
        w.reason
    );
    // Outer-carried: the inner level alone is still parallel-safe.
    assert!(leg.unroll_parallel(1).is_ok());
    assert!(leg.unroll_parallel(0).is_err());
}

/// The same skewed nest at the MLIR level: the legality-gated pass must
/// refuse the interchange the pre-engine pass used to apply, leave the
/// module untouched, and carry the witness in its diagnostic.
#[test]
fn mlir_pass_refuses_the_interchange_the_old_pass_applied() {
    let src = r#"
func.func @f(%m: memref<8x8xf32>) {
  affine.for %i = 0 to 7 {
    affine.for %j = 0 to 7 {
      %v = affine.load %m[%i, %j + 1] : memref<8x8xf32>
      affine.store %v, %m[%i + 1, %j] : memref<8x8xf32>
    }
  }
  func.return
}
"#;
    let mut m = mlir_lite::parser::parse_module("m", src).unwrap();
    let before = mlir_lite::printer::print_module(&m);
    let err = InterchangeInnermost::default().run(&mut m).unwrap_err();
    assert_eq!(err.pass, "interchange-innermost");
    assert!(
        err.message.contains("refusing to interchange")
            && err.message.contains("distance vector (1, -1)")
            && err.message.contains("%arg0[d0 + 1, d1]")
            && err.message.contains("%arg0[d0, d1 + 1]"),
        "diagnostic: {}",
        err.message
    );
    assert_eq!(mlir_lite::printer::print_module(&m), before);
}

/// A zero-trip inner loop executes nothing: its body's would-be
/// loop-carried recurrence produces no dependence at all.
const ZERO_TRIP: &str = r#"
define void @zt([16 x float]* %a) {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %ci = icmp slt i64 %i, 8
  br i1 %ci, label %ih, label %exit

ih:
  %j = phi i64 [ 0, %oh ], [ %jnext, %ib ]
  %cj = icmp slt i64 %j, 0
  br i1 %cj, label %ib, label %ol

ib:
  %jp1 = add i64 %j, 1
  %pl = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 %jp1
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 %j
  store float %v, float* %ps, align 4
  %jnext = add i64 %j, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;

#[test]
fn zero_trip_inner_loop_has_no_dependences() {
    let nest = nest_of(ZERO_TRIP);
    assert_eq!(nest.loops[1].trip, Some(0));
    let leg = TransformLegality::new(&nest);
    assert!(leg.dependences().is_empty());
    assert!(leg.interchange_legal(0, 1).is_ok());
    assert!(leg.unroll_parallel(0).is_ok());
    assert!(leg.unroll_parallel(1).is_ok());
}

/// Trip bounds prune phantom dependences: A[i] = A[i+5] with trip 4 can
/// never collide (distance 5 >= trip), while the same shape with trip 8
/// carries an exact distance-5 dependence.
const SHIFT_BY_5: &str = r#"
define void @shift([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, TRIP
  br i1 %c, label %body, label %exit

body:
  %ip5 = add i64 %i, 5
  %pl = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %ip5
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

#[test]
fn trip_bounds_prune_out_of_range_distances() {
    // Trip 4: the distance-5 collision is outside the iteration space.
    let nest = nest_of(&SHIFT_BY_5.replace("TRIP", "4"));
    let leg = TransformLegality::new(&nest);
    assert!(leg.dependences().is_empty());
    assert!(leg.unroll_parallel(0).is_ok());

    // Trip 8: the collision is real, exact, and carried.
    let nest = nest_of(&SHIFT_BY_5.replace("TRIP", "8"));
    let leg = TransformLegality::new(&nest);
    assert_eq!(leg.dependences().len(), 1);
    let d = &leg.dependences()[0];
    assert!(d.exact);
    assert_eq!(d.dist, vec![DistElem::Exact(5)]);
    let w = leg.unroll_parallel(0).unwrap_err();
    assert!(
        w.reason.contains("distance vector (5)"),
        "witness: {}",
        w.reason
    );
}

/// Partition legality: A[2i] vs A[2i+1] split cleanly across 2 banks;
/// A[2i] vs A[2i+2] land in the same bank at different addresses.
const STRIDE_PAIR: &str = r#"
define void @banks([64 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 16
  br i1 %c, label %body, label %exit

body:
  %even = mul i64 %i, 2
  %off = add i64 %even, OFFSET
  %pl = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %off
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %even
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

#[test]
fn partition_conflicts_require_congruent_offsets() {
    // Offsets 0 and 1 are distinct mod 2: conflict-free banking.
    let nest = nest_of(&STRIDE_PAIR.replace("OFFSET", "1"));
    let base = nest.accesses[0].base.clone().unwrap();
    let leg = TransformLegality::new(&nest);
    assert!(leg.partition_conflict_free(&base, 0, 2).is_ok());

    // Offsets 0 and 2 are congruent mod 2: same bank, different address.
    let nest = nest_of(&STRIDE_PAIR.replace("OFFSET", "2"));
    let leg = TransformLegality::new(&nest);
    let w = leg.partition_conflict_free(&base, 0, 2).unwrap_err();
    assert!(
        w.reason.contains("may hit one bank of a 2-way partition")
            && w.reason.contains("congruent mod 2"),
        "witness: {}",
        w.reason
    );
}
