//! Failure injection: broken inputs must fail loudly at the right layer,
//! never silently produce a design.

use adaptor::AdaptorConfig;
use driver::Directives;
use vitis_sim::{csynth, CsynthError, Target};

#[test]
fn malformed_mlir_fails_at_parse() {
    let e = mlir_lite::parser::parse_module("bad", "func.func @f( {").unwrap_err();
    assert!(matches!(e, mlir_lite::Error::Parse { .. }));
}

#[test]
fn type_errors_fail_at_mlir_verification() {
    // f32 load stored into an index-typed memref slot.
    let src = r#"
func.func @f(%a: memref<4xf32>, %b: memref<4xindex>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %a[%i] : memref<4xf32>
    affine.store %v, %b[%i] : memref<4xindex>
  }
  func.return
}
"#;
    let m = mlir_lite::parser::parse_module("bad", src).unwrap();
    assert!(mlir_lite::verifier::verify_module(&m).is_err());
}

#[test]
fn malformed_llvm_ir_fails_at_parse_with_line_numbers() {
    let e = llvm_lite::parser::parse_module("bad", "define void @f() {\nentry:\n  bogus\n}\n")
        .unwrap_err();
    match e {
        // The unknown mnemonic is on line 3; the parser may report the
        // lookahead position (line 4) for unexpected-token errors.
        llvm_lite::Error::Parse { line, .. } => assert!((3..=4).contains(&line), "line {line}"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn frontend_rejects_unadapted_ir_with_actionable_messages() {
    let k = kernels::kernel("two_mm").unwrap();
    let m = driver::flow::prepare_mlir(k, &Directives::default()).unwrap();
    let lowered = lowering::lower(m).unwrap();
    match csynth(&lowered, &Target::default()) {
        Err(CsynthError::Frontend(errs)) => {
            assert!(errs.iter().any(|e| e.contains("malloc")));
            assert!(errs.iter().any(|e| e.contains("pointer parameter")));
        }
        other => panic!("expected frontend rejection, got {other:?}"),
    }
}

#[test]
fn adaptor_gate_refuses_partial_pipelines() {
    let k = kernels::kernel("gemm").unwrap();
    let m = driver::flow::prepare_mlir(k, &Directives::default()).unwrap();
    let mut module = lowering::lower(m).unwrap();
    let cfg = AdaptorConfig::default()
        .without("recover-arrays")
        .unwrap()
        .without("synthesize-interface")
        .unwrap();
    let err = adaptor::run_adaptor(&mut module, &cfg).unwrap_err();
    assert!(err.to_string().contains("HLS compatibility"));
}

#[test]
fn interpreter_traps_on_out_of_bounds_kernels() {
    // A kernel indexing past its memref: the lowering is type-consistent,
    // so the bug must be caught dynamically by the interpreter.
    let src = r#"
func.func @oob(%a: memref<4xf32>) attributes {hls.top} {
  affine.for %i = 0 to 4 {
    %v = affine.load %a[%i + 4] : memref<4xf32>
    affine.store %v, %a[%i] : memref<4xf32>
  }
  func.return
}
"#;
    let m = mlir_lite::parser::parse_module("oob", src).unwrap();
    let module = lowering::lower(m).unwrap();
    let mut interp = llvm_lite::interp::Interpreter::new(&module);
    let p = interp.mem.alloc_f32(&[0.0; 4]);
    let e = interp
        .call("oob", &[llvm_lite::interp::RtVal::P(p)])
        .unwrap_err();
    assert!(e.to_string().contains("out-of-bounds"));
}

#[test]
fn c_frontend_rejects_unknown_functions_and_bad_loops() {
    assert!(hls_cpp::compile_cpp("t", "void f(float a[4]) { a[0] = mystery(1.0f); }").is_err());
    assert!(hls_cpp::compile_cpp(
        "t",
        "void f(float a[4]) { for (int i = 0; i < 4; i *= 2) { a[i] = 0.0f; } }"
    )
    .is_err());
}

#[test]
fn cpp_emitter_refuses_dynamic_interfaces() {
    use mlir_lite::dialects::func;
    use mlir_lite::MType;
    let mut m = mlir_lite::MlirModule::new("m");
    let mut f = func::func("f", vec![MType::F32.memref(&[-1])], MType::None);
    f.regions[0].entry_mut().ops.push(func::ret(None));
    m.ops.push(f);
    let e = hls_cpp::emit_cpp(&m).unwrap_err();
    assert!(e.to_string().contains("dynamic"));
}

#[test]
fn scheduler_never_accepts_what_the_gate_rejected() {
    // Anything the adaptor's compat verifier flags must also be refused by
    // the independent frontend model (no false confidence).
    for k in kernels::all_kernels() {
        let m = driver::flow::prepare_mlir(k, &Directives::default()).unwrap();
        let lowered = lowering::lower(m).unwrap();
        let adaptor_says_bad = !adaptor::compat_issues(&lowered).is_empty();
        let frontend_says_bad = !vitis_sim::csynth::frontend_check(&lowered).is_empty();
        if frontend_says_bad {
            assert!(
                adaptor_says_bad,
                "{}: frontend rejects but the adaptor's model saw nothing",
                k.name
            );
        }
    }
}
