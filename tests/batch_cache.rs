//! Cache correctness suite for the batch driver (ISSUE 3).
//!
//! The contract under test: caching is invisible except in wall-clock — a
//! warm run reproduces the cold run byte-for-byte; any change to the pass
//! configuration or the kernel IR invalidates the affected entries; a
//! corrupted entry degrades to a recompute plus a warning, never to a wrong
//! answer; and a panicking kernel is isolated from the rest of the batch.

use std::path::PathBuf;

use driver::batch::{run_batch, BatchOptions, KernelArtifacts, RunOutcome};
use driver::{run_flow, Directives, Flow};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mha-batch-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path) -> BatchOptions {
    BatchOptions {
        jobs: 4,
        cache_dir: Some(dir.to_path_buf()),
        ..BatchOptions::default()
    }
}

fn artifacts(outcome: &RunOutcome) -> &KernelArtifacts {
    match outcome {
        RunOutcome::Completed(a) => a,
        other => panic!("kernel did not complete: {other:?}"),
    }
}

#[test]
fn warm_run_is_byte_identical_to_cold_and_fully_cached() {
    let dir = temp_cache("warm-identical");
    let o = opts(&dir);
    let ks = kernels::all_kernels();

    let cold = run_batch(ks, &o).unwrap();
    assert_eq!(cold.exit_code(), 0);
    assert_eq!(cold.cache_hits(), 0);
    assert_eq!(cold.cache_misses(), 3 * ks.len());

    let warm = run_batch(ks, &o).unwrap();
    assert_eq!(warm.exit_code(), 0);
    assert_eq!(warm.cache_misses(), 0, "warnings: {:?}", warm.warnings);
    assert_eq!(warm.cache_hits(), 3 * ks.len());

    for (c, w) in cold.runs.iter().zip(&warm.runs) {
        assert_eq!(c.kernel, w.kernel);
        let (ca, wa) = (artifacts(&c.outcome), artifacts(&w.outcome));
        // Byte-identical artifact, field-identical reports.
        assert_eq!(ca.module_text, wa.module_text, "{}", c.kernel);
        assert_eq!(ca.module_digest, wa.module_digest, "{}", c.kernel);
        assert_eq!(ca.csynth, wa.csynth, "{}", c.kernel);
        assert_eq!(
            ca.cosim_max_err.to_bits(),
            wa.cosim_max_err.to_bits(),
            "{}",
            c.kernel
        );
        assert_eq!(ca.cosim_steps, wa.cosim_steps, "{}", c.kernel);
        // Every warm stage is marked cached in the pipeline report.
        assert_eq!(wa.report.cached_stages(), 3, "{}", c.kernel);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_batch_matches_serial_run_flow() {
    // Acceptance criterion: `--jobs 8` over the full suite produces
    // per-kernel results identical to serial `run_flow`.
    let ks = kernels::all_kernels();
    let o = BatchOptions {
        jobs: 8,
        cache_dir: None,
        ..BatchOptions::default()
    };
    let batch = run_batch(ks, &o).unwrap();
    assert_eq!(batch.jobs, 8.min(ks.len()));
    for (k, r) in ks.iter().zip(&batch.runs) {
        let a = artifacts(&r.outcome);
        let serial = run_flow(k, &o.directives, Flow::Adaptor).unwrap();
        assert_eq!(
            a.module_text,
            llvm_lite::printer::print_module(&serial.module),
            "{}: batch module differs from serial flow",
            k.name
        );
        let serial_csynth = vitis_sim::csynth(&serial.module, &o.target).unwrap();
        assert_eq!(a.csynth, serial_csynth, "{}", k.name);
        let serial_cosim = driver::cosim(&serial.module, k, o.seed).unwrap();
        assert_eq!(
            a.cosim_max_err.to_bits(),
            serial_cosim.max_abs_err.to_bits()
        );
        assert_eq!(a.cosim_steps, serial_cosim.steps, "{}", k.name);
    }
}

#[test]
fn cache_invalidated_by_pass_config_change() {
    let dir = temp_cache("config-change");
    let ks = [*kernels::kernel("fir").unwrap()];

    let cold = run_batch(&ks, &opts(&dir)).unwrap();
    assert_eq!(cold.cache_misses(), 3);

    // Same kernel, different pipeline config: nothing may be reused.
    let mut changed = opts(&dir);
    changed.directives = Directives {
        pipeline_ii: Some(2),
        ..Directives::pipelined(2)
    };
    let after = run_batch(&ks, &changed).unwrap();
    assert_eq!(after.cache_hits(), 0, "config change must invalidate");
    assert_eq!(after.cache_misses(), 3);

    // The original config is still cached untouched.
    let back = run_batch(&ks, &opts(&dir)).unwrap();
    assert_eq!(back.cache_misses(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_invalidated_by_ir_edit() {
    let dir = temp_cache("ir-edit");
    let base = *kernels::kernel("jacobi2d").unwrap();

    let cold = run_batch(&[base], &opts(&dir)).unwrap();
    assert_eq!(cold.cache_misses(), 3);

    // Same kernel name, edited MLIR source: the content digest changes, so
    // every stage recomputes.
    let mut edited = base;
    edited.mlir = Box::leak(
        base.mlir
            .replace("arith.constant 0.2", "arith.constant 0.25")
            .into_boxed_str(),
    );
    assert_ne!(base.content_digest(), edited.content_digest());
    let after = run_batch(&[edited], &opts(&dir)).unwrap();
    assert_eq!(after.cache_hits(), 0, "IR edit must invalidate");
    assert_ne!(
        artifacts(&cold.runs[0].outcome).module_digest,
        artifacts(&after.runs[0].outcome).module_digest
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entry_falls_back_to_recompute_with_warning() {
    let dir = temp_cache("corrupt-entry");
    let ks = [*kernels::kernel("gemm").unwrap()];
    // One worker for one kernel, so the jobs-clamp warning stays out of the
    // warning-count assertions below.
    let o = BatchOptions {
        jobs: 1,
        ..opts(&dir)
    };

    let cold = run_batch(&ks, &o).unwrap();
    let reference = artifacts(&cold.runs[0].outcome).clone();

    // Vandalize every cache entry (the run journal shares the directory
    // and is left alone): flip payload bytes behind the headers.
    let mut vandalized = 0;
    for e in std::fs::read_dir(&dir).unwrap() {
        let path = e.unwrap().path();
        if path.extension().and_then(|x| x.to_str()) == Some("entry") {
            std::fs::write(&path, "mha-cache 1 0000 0000 4\njunk").unwrap();
            vandalized += 1;
        }
    }
    assert_eq!(vandalized, 3);

    let warm = run_batch(&ks, &o).unwrap();
    assert_eq!(warm.exit_code(), 0);
    // Fell back to a full recompute, with one warning per damaged entry...
    assert_eq!(warm.cache_hits(), 0);
    assert_eq!(warm.cache_misses(), 3);
    assert_eq!(warm.warnings.len(), 3, "{:?}", warm.warnings);
    assert!(warm.warnings.iter().all(|w| w.contains("corrupt")));
    // ...and the answer is still byte-identical to the cold run.
    let recovered = artifacts(&warm.runs[0].outcome);
    assert_eq!(recovered.module_text, reference.module_text);
    assert_eq!(recovered.csynth, reference.csynth);

    // The rewritten entries serve the next run in full.
    let healed = run_batch(&ks, &o).unwrap();
    assert_eq!(healed.cache_misses(), 0);
    assert!(healed.warnings.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warnings_go_to_stderr_keeping_json_stdout_parseable() {
    // Satellite (ISSUE 4): cache warnings must not pollute stdout — with
    // `--format json`, stdout is exactly one parseable JSON document even
    // when corrupt entries are healed, and the warnings appear on stderr.
    let dir = temp_cache("stderr-warnings");
    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_mha-batch"));
        cmd.args(["--jobs", "1", "--format", "json", "--cache-dir"])
            .arg(&dir)
            .args(extra)
            .arg("fir");
        cmd.output().unwrap()
    };

    let cold = run(&[]);
    assert!(cold.status.success(), "{cold:?}");

    // Vandalize the cache entries, then re-run: healed with warnings.
    for e in std::fs::read_dir(&dir).unwrap() {
        let path = e.unwrap().path();
        if path.extension().and_then(|x| x.to_str()) == Some("entry") {
            std::fs::write(&path, "mha-cache 1 0000 0000 4\njunk").unwrap();
        }
    }
    let healed = run(&[]);
    assert!(healed.status.success(), "{healed:?}");
    let stdout = String::from_utf8(healed.stdout).unwrap();
    let stderr = String::from_utf8(healed.stderr).unwrap();
    // stdout parses as a single JSON document...
    let doc = pass_core::json::parse(stdout.trim()).unwrap();
    // ...which still carries the warnings in its own field...
    let warnings = doc.get("warnings").and_then(|w| w.as_arr()).unwrap();
    assert_eq!(warnings.len(), 3, "stdout: {stdout}\nstderr: {stderr}");
    // ...while the human-readable copies went to stderr.
    assert!(stderr.contains("corrupt cache entry"), "stderr: {stderr}");
    assert!(!stdout.contains("warning:"), "stdout: {stdout}");

    // Over-asking for workers warns (once, on stderr) and clamps.
    let clamped = run(&["--jobs", "64"]);
    assert!(clamped.status.success(), "{clamped:?}");
    let stderr = String::from_utf8(clamped.stderr).unwrap();
    assert_eq!(stderr.matches("exceeds the").count(), 1, "stderr: {stderr}");
    let doc = pass_core::json::parse(String::from_utf8(clamped.stdout).unwrap().trim()).unwrap();
    assert_eq!(doc.get("jobs").and_then(|j| j.as_u64()), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_is_isolated_from_other_kernels() {
    // Acceptance criterion: an injected per-kernel panic yields exit code 1
    // with the other kernels' results intact.
    let ks = kernels::all_kernels();
    let clean = run_batch(
        ks,
        &BatchOptions {
            jobs: 4,
            cache_dir: None,
            ..BatchOptions::default()
        },
    )
    .unwrap();

    let poisoned = run_batch(
        ks,
        &BatchOptions {
            jobs: 4,
            cache_dir: None,
            inject_panic: Some("two_mm".into()),
            ..BatchOptions::default()
        },
    )
    .unwrap();
    assert_eq!(poisoned.exit_code(), 1);
    assert_eq!(poisoned.failed_count(), 1);
    assert_eq!(poisoned.ok_count(), ks.len() - 1);

    for (c, p) in clean.runs.iter().zip(&poisoned.runs) {
        if p.kernel == "two_mm" {
            match &p.outcome {
                RunOutcome::Panicked { message } => {
                    assert!(message.contains("injected panic"), "{message}")
                }
                other => panic!("expected panic outcome, got {other:?}"),
            }
        } else {
            // Every other kernel's artifacts are unaffected by the panic.
            assert_eq!(
                artifacts(&c.outcome).module_text,
                artifacts(&p.outcome).module_text,
                "{}",
                p.kernel
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Disk-full / I-O robustness (ISSUE 10 satellite)
// ---------------------------------------------------------------------------

use driver::cache::{Cache, KeyBuilder};
use driver::{ChaosConfig, ChaosEngine, ChaosFault, RetryPolicy};

/// `atomic_write` failures are typed infra faults that name the failing
/// path — the disk-full story. The cache directory vanishing out from
/// under the staging write stands in for ENOSPC (either way the write
/// syscall fails and the caller needs to know *where*).
#[test]
fn cache_write_failure_surfaces_the_failing_path() {
    let dir = temp_cache("enospc");
    let cache = Cache::open(&dir).expect("cache opens");
    std::fs::remove_dir_all(&dir).expect("pull the directory out");

    let key = KeyBuilder::new("flow").text("kernel", "gemm").finish();
    let err = cache
        .store(&key, "payload")
        .expect_err("a dead directory must fail the store");
    let rendered = err.to_string();
    assert!(
        rendered.contains(&dir.display().to_string()),
        "the error must carry the failing path: {rendered}"
    );
}

/// The `store/<stage>` chaos I/O site: an injected write error that
/// outlives the retry budget downgrades the store to a warning — the
/// kernel still completes and the summary says what failed and why.
#[test]
fn chaos_injected_store_error_is_a_warning_not_a_failure() {
    // Seed search: the flow-store site must draw the I/O fault while the
    // stage boundaries for the same kernel stay quiet (Delay is harmless).
    let rate = 0.4;
    let quiet = |eng: &ChaosEngine, site: &str| {
        // The boundary menus are panic/delay/fuel(/adaptor-reject); any
        // roll other than None or Delay changes the outcome.
        matches!(
            eng.roll(
                "gemm",
                site,
                0,
                &[
                    ChaosFault::Panic,
                    ChaosFault::Delay,
                    ChaosFault::FuelExhaustion,
                    ChaosFault::AdaptorReject,
                ],
            ),
            None | Some(ChaosFault::Delay)
        )
    };
    let seed = (0..200_000u64)
        .find(|&seed| {
            let eng = ChaosEngine::new(ChaosConfig { seed, rate });
            eng.roll("gemm", "store/flow", 0, &[ChaosFault::IoError])
                .is_some()
                && eng
                    .roll("gemm", "cache/flow", 0, &[ChaosFault::IoError])
                    .is_none()
                && quiet(&eng, "flow")
                && quiet(&eng, "csynth")
                && quiet(&eng, "cosim")
        })
        .expect("a store-only chaos seed exists");

    let dir = temp_cache("chaos-store");
    let batch_opts = BatchOptions {
        chaos: Some(ChaosConfig { seed, rate }),
        // One attempt: the injected store error must not be healed by a
        // lucky retry, so the warning path is pinned deterministically.
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        ..opts(&dir)
    };
    let gemm = *kernels::kernel("gemm").expect("gemm exists");
    let summary = run_batch(&[gemm], &batch_opts).expect("batch runs");
    artifacts(&summary.runs[0].outcome); // completes despite the store fault
    assert!(
        summary
            .warnings
            .iter()
            .any(|w| w.contains("cache store failed") && w.contains("injected cache write error")),
        "warnings must name the failed store: {:?}",
        summary.warnings
    );
    let _ = std::fs::remove_dir_all(&dir);
}
