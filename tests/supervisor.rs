//! Supervised-execution suite for the batch driver (ISSUE 4).
//!
//! The contract under test: an exhausted budget yields a structured
//! `BudgetExceeded` failure quickly (no wedged workers) while the other
//! kernels complete; seeded chaos is deterministic — the same
//! `--chaos seed,rate` reproduces the same per-kernel outcomes — and never
//! escapes the per-kernel isolation (exit codes stay in {0, 1});
//! a deterministically rejected adaptor kernel degrades to the baseline
//! C++ flow with a real report and exit code 1; and a killed batch resumed
//! with `--resume` produces a summary equal (modulo timings and warning
//! text) to an uninterrupted run.

use std::path::PathBuf;

use driver::batch::{run_batch, BatchOptions, RunOutcome};
use driver::{ChaosConfig, ChaosEngine, ChaosFault};
use pass_core::json;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mha-supervisor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn no_cache_opts() -> BatchOptions {
    BatchOptions {
        jobs: 4,
        cache_dir: None,
        ..BatchOptions::default()
    }
}

#[test]
fn expired_deadline_yields_structured_budget_failures_fast() {
    // Acceptance criterion: a deadline-expired kernel reports
    // StageError::BudgetExceeded within the budget — the batch returns
    // promptly instead of wedging a worker.
    let ks = kernels::all_kernels();
    let start = std::time::Instant::now();
    let s = run_batch(
        ks,
        &BatchOptions {
            deadline_ms: Some(0),
            ..no_cache_opts()
        },
    )
    .unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "budget-tripped batch must not hang"
    );
    assert_eq!(s.exit_code(), 1);
    assert_eq!(s.failed_count(), ks.len());
    for r in &s.runs {
        match &r.outcome {
            RunOutcome::Failed(e) => {
                assert!(e.is_budget(), "{}: {e:?}", r.kernel);
                assert_eq!(e.class_label(), "budget-deadline", "{}", r.kernel);
                assert!(!e.stage().is_empty(), "{}", r.kernel);
            }
            other => panic!("{}: expected budget trip, got {other:?}", r.kernel),
        }
    }
    // The summary JSON carries the taxonomy fields.
    let j = s.to_json();
    assert!(j.contains("\"class\":\"budget-deadline\""), "{j}");
}

#[test]
fn fuel_exhaustion_isolates_to_the_starved_attempt() {
    // A tiny fuel pool trips every kernel with a fuel-budget failure; a
    // huge one changes nothing. Either way no kernel disturbs another.
    let ks = kernels::all_kernels();
    let starved = run_batch(
        ks,
        &BatchOptions {
            fuel: Some(1),
            ..no_cache_opts()
        },
    )
    .unwrap();
    assert_eq!(starved.exit_code(), 1);
    for r in &starved.runs {
        match &r.outcome {
            RunOutcome::Failed(e) => {
                assert_eq!(e.class_label(), "budget-fuel", "{}: {e:?}", r.kernel)
            }
            other => panic!("{}: {other:?}", r.kernel),
        }
    }
    let fed = run_batch(
        ks,
        &BatchOptions {
            fuel: Some(10_000_000),
            ..no_cache_opts()
        },
    )
    .unwrap();
    assert_eq!(fed.exit_code(), 0, "{:?}", fed.warnings);
}

/// Strip the non-deterministic parts (timings, warning order/text) before
/// comparing two summary JSON documents.
fn summaries_equal(a: &str, b: &str) -> bool {
    let a = json::parse(a).unwrap();
    let b = json::parse(b).unwrap();
    a.equals_ignoring(&b, &["wall_us", "total_us", "warnings"])
}

#[test]
fn chaos_soak_is_contained_and_reproducible() {
    // Satellite (ISSUE 4): full suite under --chaos at several seeds.
    // Whatever the injections do, the batch must return (exit 0 or 1, never
    // a crash), degraded kernels must still carry a baseline report, and an
    // identical re-run must reproduce the outcomes field-for-field.
    let ks = kernels::all_kernels();
    for seed in [1u64, 7, 23] {
        let opts = BatchOptions {
            chaos: Some(ChaosConfig { seed, rate: 0.25 }),
            ..no_cache_opts()
        };
        let first = run_batch(ks, &opts).unwrap();
        assert!(
            first.exit_code() == 0 || first.exit_code() == 1,
            "seed {seed}: exit {}",
            first.exit_code()
        );
        assert_eq!(first.runs.len(), ks.len(), "seed {seed}");
        for r in &first.runs {
            if let RunOutcome::Degraded { artifacts, reason } = &r.outcome {
                assert!(artifacts.report.degraded, "seed {seed}: {}", r.kernel);
                assert!(artifacts.csynth.latency > 0, "seed {seed}: {}", r.kernel);
                assert!(!reason.is_empty(), "seed {seed}: {}", r.kernel);
            }
        }
        // Chaos is a pure function of (seed, kernel, site, attempt):
        // repeating the run reproduces every outcome.
        let second = run_batch(ks, &opts).unwrap();
        assert!(
            summaries_equal(&first.to_json(), &second.to_json()),
            "seed {seed} not reproducible:\n{}\n{}",
            first.to_json(),
            second.to_json()
        );
    }
}

/// Search the chaos space for a seed that injects exactly one adaptor
/// rejection (for `target`) and nothing else anywhere in the suite. Pure
/// hashing, so the search is fast and its result is stable.
fn seed_rejecting_only(target: &str, rate: f64) -> Option<u64> {
    const ADAPTOR_MENU: [ChaosFault; 4] = [
        ChaosFault::Panic,
        ChaosFault::Delay,
        ChaosFault::FuelExhaustion,
        ChaosFault::AdaptorReject,
    ];
    const BOUNDARY_MENU: [ChaosFault; 3] = [
        ChaosFault::Panic,
        ChaosFault::Delay,
        ChaosFault::FuelExhaustion,
    ];
    let names: Vec<&str> = kernels::all_kernels().iter().map(|k| k.name).collect();
    'seed: for seed in 0..300_000u64 {
        let e = ChaosEngine::new(ChaosConfig { seed, rate });
        for &k in &names {
            if k == target {
                // The adaptor attempt must be rejected; the C++ fallback
                // re-rolls the same site (same hash, shorter menu), so it
                // must land on the harmless delay; downstream stays quiet.
                if e.roll(k, "flow", 0, &ADAPTOR_MENU) != Some(ChaosFault::AdaptorReject)
                    || e.roll(k, "flow", 0, &BOUNDARY_MENU) != Some(ChaosFault::Delay)
                    || e.roll(k, "csynth", 0, &BOUNDARY_MENU).is_some()
                    || e.roll(k, "cosim", 0, &BOUNDARY_MENU).is_some()
                {
                    continue 'seed;
                }
            } else if e.roll(k, "flow", 0, &ADAPTOR_MENU).is_some()
                || e.roll(k, "csynth", 0, &BOUNDARY_MENU).is_some()
                || e.roll(k, "cosim", 0, &BOUNDARY_MENU).is_some()
            {
                continue 'seed;
            }
        }
        return Some(seed);
    }
    None
}

#[test]
fn injected_adaptor_rejection_degrades_to_cpp_flow() {
    // Tentpole: a kernel whose adaptor legalization fails deterministically
    // falls back to the baseline C++ flow, is marked degraded in both the
    // report and the summary, and the batch exits 1 without losing the
    // other kernels.
    let rate = 0.2;
    let target = "gemm";
    let seed = seed_rejecting_only(target, rate)
        .expect("no seed injects a lone adaptor rejection in 300k tries");
    let ks = kernels::all_kernels();
    let s = run_batch(
        ks,
        &BatchOptions {
            chaos: Some(ChaosConfig { seed, rate }),
            ..no_cache_opts()
        },
    )
    .unwrap();
    assert_eq!(s.exit_code(), 1);
    assert_eq!(s.degraded_count(), 1);
    assert_eq!(s.ok_count(), ks.len() - 1);
    let run = s.runs.iter().find(|r| r.kernel == target).unwrap();
    match &run.outcome {
        RunOutcome::Degraded { artifacts, reason } => {
            assert!(
                reason.contains("injected adaptor legalization rejection"),
                "{reason}"
            );
            assert!(artifacts.report.degraded);
            assert!(artifacts.csynth.latency > 0, "baseline report missing");
            assert!(artifacts.report.render().contains("[degraded]"));
        }
        other => panic!("expected degradation, got {other:?}"),
    }
    let j = s.to_json();
    assert!(j.contains("\"status\":\"degraded\""), "{j}");
    assert!(j.contains("\"degraded\":true"), "{j}");
}

#[test]
fn killed_run_resumed_with_resume_matches_uninterrupted_run() {
    // Acceptance criterion: a batch killed partway and resumed with
    // --resume produces a summary identical (modulo timings) to an
    // uninterrupted run. The "kill" is simulated deterministically: run a
    // two-kernel prefix under the same configuration (journaled), append a
    // torn half-record as a kill-mid-write would, then --resume the full
    // suite against that journal.
    let exe = env!("CARGO_BIN_EXE_mha-batch");
    let chaos = "11,0.15";
    let base = |cache: &PathBuf| {
        let mut c = std::process::Command::new(exe);
        c.args([
            "--jobs",
            "2",
            "--format",
            "json",
            "--chaos",
            chaos,
            "--cache-dir",
        ])
        .arg(cache);
        c
    };
    let names: Vec<&str> = kernels::all_kernels().iter().map(|k| k.name).collect();
    assert!(names.len() > 2, "suite too small to interrupt");

    // Uninterrupted reference run.
    let dir_full = temp_dir("resume-full");
    let full = base(&dir_full).arg("all").output().unwrap();
    let full_stdout = String::from_utf8(full.stdout).unwrap();

    // "Killed" run: only a prefix completed, then a torn journal line.
    let dir_part = temp_dir("resume-part");
    let part = base(&dir_part).args(&names[..2]).output().unwrap();
    assert!(
        part.status.code().map(|c| c <= 1).unwrap_or(false),
        "{part:?}"
    );
    let journal = dir_part.join("journal.jsonl");
    let mut text = std::fs::read_to_string(&journal).unwrap();
    text.push_str("{\"event\":\"done\",\"kernel\":\"torn\",\"outco");
    std::fs::write(&journal, &text).unwrap();

    // Resume over the full suite: the prefix replays, the rest runs.
    let resumed = base(&dir_part).arg("--resume").arg("all").output().unwrap();
    let resumed_stdout = String::from_utf8(resumed.stdout).unwrap();
    let resumed_stderr = String::from_utf8(resumed.stderr).unwrap();
    assert!(
        resumed_stderr.contains("replayed 2 completed kernel(s)"),
        "stderr: {resumed_stderr}"
    );
    assert_eq!(full.status.code(), resumed.status.code());
    assert!(
        summaries_equal(&full_stdout, &resumed_stdout),
        "resumed summary diverged:\n{full_stdout}\n{resumed_stdout}"
    );

    // Resuming under a different configuration is refused (exit 2).
    let mismatched = base(&dir_part)
        .args(["--seed", "7", "--resume", "all"])
        .output()
        .unwrap();
    assert_eq!(mismatched.status.code(), Some(2), "{mismatched:?}");

    let _ = std::fs::remove_dir_all(&dir_full);
    let _ = std::fs::remove_dir_all(&dir_part);
}
