//! Cross-crate integration: the two flows are functionally equivalent and
//! both end HLS-ready, for every kernel in the suite.

use driver::{cosim, run_flow, Directives, Flow};
use vitis_sim::{csynth, Target};

#[test]
fn all_kernels_cosim_exactly_via_both_flows() {
    for k in kernels::all_kernels() {
        for flow in [Flow::Adaptor, Flow::Cpp] {
            let art = run_flow(k, &Directives::pipelined(1), flow)
                .unwrap_or_else(|e| panic!("{} via {flow:?}: {e}", k.name));
            let sim = cosim(&art.module, k, 99).unwrap();
            assert_eq!(
                sim.max_abs_err, 0.0,
                "{} via {flow:?} diverged from reference",
                k.name
            );
        }
    }
}

#[test]
fn adaptor_output_is_fully_compatible_for_all_kernels() {
    for k in kernels::all_kernels() {
        let art = run_flow(k, &Directives::pipelined(1), Flow::Adaptor).unwrap();
        let issues = adaptor::compat_issues(&art.module);
        assert!(
            issues.is_empty(),
            "{}: {} residual issues: {:?}",
            k.name,
            issues.len(),
            issues.first()
        );
        // And the independent frontend model agrees.
        assert!(vitis_sim::csynth::frontend_check(&art.module).is_empty());
    }
}

#[test]
fn raw_lowering_is_never_accepted_directly() {
    // The gap the adaptor closes must actually exist: the frontend must
    // reject every kernel's un-adapted lowering.
    for k in kernels::all_kernels() {
        let m = driver::flow::prepare_mlir(k, &Directives::pipelined(1)).unwrap();
        let lowered = lowering::lower(m).unwrap();
        let errs = vitis_sim::csynth::frontend_check(&lowered);
        assert!(
            !errs.is_empty(),
            "{}: raw lowering unexpectedly accepted by the frontend",
            k.name
        );
    }
}

#[test]
fn both_flows_synthesize_every_kernel() {
    let target = Target::default();
    for k in kernels::all_kernels() {
        for flow in [Flow::Adaptor, Flow::Cpp] {
            let art = run_flow(k, &Directives::pipelined(1), flow).unwrap();
            let report = csynth(&art.module, &target)
                .unwrap_or_else(|e| panic!("{} via {flow:?}: {e}", k.name));
            assert!(report.latency > 0);
            assert!(report.loops.iter().any(|l| l.pipelined), "{}", k.name);
        }
    }
}

#[test]
fn adapted_ir_round_trips_through_text() {
    // The adapted module must survive print -> parse -> print (fixtures can
    // be exported to real tools).
    for k in kernels::all_kernels() {
        let art = run_flow(k, &Directives::pipelined(1), Flow::Adaptor).unwrap();
        let t1 = llvm_lite::printer::print_module(&art.module);
        let m2 = llvm_lite::parser::parse_module(k.name, &t1)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        llvm_lite::verifier::verify_module(&m2).unwrap();
        let t2 = llvm_lite::printer::print_module(&m2);
        assert_eq!(t1, t2, "{}: unstable round-trip", k.name);
    }
}

#[test]
fn parsed_back_module_still_cosims() {
    // Semantics survive the textual round trip too.
    let k = kernels::kernel("conv2d").unwrap();
    let art = run_flow(k, &Directives::pipelined(1), Flow::Adaptor).unwrap();
    let text = llvm_lite::printer::print_module(&art.module);
    let reparsed = llvm_lite::parser::parse_module("conv2d", &text).unwrap();
    let sim = cosim(&reparsed, k, 5).unwrap();
    assert_eq!(sim.max_abs_err, 0.0);
}
