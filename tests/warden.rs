//! Process-isolation tests for `driver::warden` (ISSUE 10).
//!
//! These run real worker processes (the `mha-warden-worker` binary built
//! alongside the test harness), so they cover the whole containment
//! story: kill deadlines, the RSS watchdog, worker recycling, chaos
//! crash injection, reply truncation, `mha-batch --isolate` equivalence,
//! and the `mha-fuzz --isolate` oracle runner surviving crash findings.

use driver::batch::{run_batch, BatchOptions, RunOutcome};
use driver::{ChaosConfig, ChaosEngine, ChaosFault, StageError, Warden, WardenConfig, CRASH_MENU};
use fuzzing::{run_campaign_with, CampaignOpts, OracleKind};

fn warden(config: WardenConfig) -> Warden {
    Warden::new(config).expect("worker pool starts")
}

/// Find a chaos seed whose roll at the in-worker `warden` site for `key`
/// lands on `want`.
fn chaos_seed_for(key: &str, rate: f64, want: ChaosFault) -> ChaosConfig {
    for seed in 0..100_000u64 {
        let cfg = ChaosConfig { seed, rate };
        if ChaosEngine::new(cfg).roll(key, "warden", 0, &CRASH_MENU) == Some(want) {
            return cfg;
        }
    }
    panic!("no chaos seed draws {want:?} for '{key}'");
}

#[test]
fn ping_and_recycling_rotate_workers_through_the_pool() {
    let w = warden(WardenConfig {
        pool: 1,
        max_requests_per_worker: 1,
        ..WardenConfig::default()
    });
    for _ in 0..3 {
        let reply = w
            .execute_probe("{\"op\":\"ping\"}", None)
            .expect("ping replies");
        assert!(reply.contains("\"ok\":true"), "reply: {reply}");
    }
    let stats = w.stats();
    assert_eq!(stats.executed, 3);
    assert!(
        stats.recycled >= 2,
        "per-worker request cap of 1 must recycle after every request: {stats:?}"
    );
    assert!(stats.spawned >= 3, "{stats:?}");
    assert_eq!(stats.crashes, 0, "{stats:?}");
}

#[test]
fn a_worker_holding_the_reply_past_the_deadline_is_sigkilled() {
    let w = warden(WardenConfig {
        pool: 1,
        kill_grace_ms: 50,
        ..WardenConfig::default()
    });
    let err = w
        .execute_probe("{\"op\":\"sleep\",\"ms\":60000}", Some(100))
        .expect_err("the sleeper must not out-wait the kill deadline");
    assert!(
        err.is_budget(),
        "a deadline kill maps to the budget taxonomy, got: {err}"
    );
    assert_eq!(w.stats().deadline_kills, 1);
    // The pool stays serviceable: the next request gets a fresh worker.
    let reply = w.execute_probe("{\"op\":\"ping\"}", None).expect("ping");
    assert!(reply.contains("\"ok\":true"));
}

#[test]
fn the_rss_watchdog_kills_a_ballooning_worker_with_the_peak_recorded() {
    let w = warden(WardenConfig {
        pool: 1,
        max_rss_mb: Some(64),
        ..WardenConfig::default()
    });
    let err = w
        .execute_probe("{\"op\":\"hog\",\"mb\":256,\"ms\":10000}", None)
        .expect_err("a 256 MiB hog must trip the 64 MiB watchdog");
    match &err {
        StageError::Crash {
            cause, rss_peak_kb, ..
        } => {
            assert!(cause.contains("rss"), "cause: {cause}");
            let peak = rss_peak_kb.expect("watchdog records the observed peak");
            assert!(peak > 64 * 1024, "peak {peak} kB should exceed the limit");
        }
        other => panic!("expected a crash error, got: {other}"),
    }
    assert_eq!(w.stats().rss_kills, 1);
    let reply = w.execute_probe("{\"op\":\"ping\"}", None).expect("ping");
    assert!(reply.contains("\"ok\":true"));
}

#[test]
fn chaos_worker_kill_surfaces_as_a_signal_crash_on_the_suite_path() {
    let chaos = chaos_seed_for("gemm", 1.0, ChaosFault::WorkerKill);
    let w = warden(WardenConfig {
        pool: 1,
        chaos: Some(chaos),
        ..WardenConfig::default()
    });
    let opts = BatchOptions {
        jobs: 1,
        cache_dir: None,
        ..BatchOptions::default()
    };
    let (outcome, _) = w.execute_suite("gemm", &opts);
    match outcome {
        RunOutcome::Failed(StageError::Crash { cause, .. }) => {
            assert!(cause.starts_with("signal"), "abort is a signal: {cause}");
        }
        other => panic!("expected a crash outcome, got: {other:?}"),
    }
    assert_eq!(w.stats().crashes, 1);
}

#[test]
fn a_truncated_reply_frame_is_a_detected_crash_not_a_garbled_result() {
    let chaos = chaos_seed_for("gemm", 1.0, ChaosFault::ReplyTruncate);
    let w = warden(WardenConfig {
        pool: 1,
        chaos: Some(chaos),
        ..WardenConfig::default()
    });
    let opts = BatchOptions {
        jobs: 1,
        cache_dir: None,
        ..BatchOptions::default()
    };
    let (outcome, _) = w.execute_suite("gemm", &opts);
    match outcome {
        RunOutcome::Failed(StageError::Crash { cause, .. }) => {
            assert!(cause.contains("truncated"), "cause: {cause}");
        }
        other => panic!("expected a crash outcome, got: {other:?}"),
    }
}

/// `mha-batch --isolate` equivalence: the isolated suite run completes
/// the same kernel the in-process engine does, through real worker
/// processes, without a cache.
#[test]
fn batch_isolate_completes_a_kernel_through_worker_processes() {
    let opts = BatchOptions {
        jobs: 1,
        cache_dir: None,
        isolate: true,
        ..BatchOptions::default()
    };
    let gemm = *kernels::kernel("gemm").expect("gemm exists");
    let summary = run_batch(&[gemm], &opts).expect("batch runs");
    assert_eq!(summary.runs.len(), 1);
    match &summary.runs[0].outcome {
        RunOutcome::Completed(a) => {
            assert!(
                a.cosim_max_err < 1e-3,
                "co-simulation must match: max err {}",
                a.cosim_max_err
            );
        }
        other => panic!("expected completion, got: {other:?}"),
    }
}

/// `mha-fuzz --isolate` regression: a campaign whose worker is chaos-killed
/// on its first seed records a reducible `crash/warden` finding and keeps
/// walking seeds instead of dying with the worker.
#[test]
fn fuzz_isolate_turns_a_worker_death_into_a_crash_finding() {
    // The oracle runner keys worker chaos by "seed-<seed>".
    let chaos = chaos_seed_for("seed-0", 1.0, ChaosFault::WorkerKill);
    let w = warden(WardenConfig {
        pool: 1,
        chaos: Some(chaos),
        ..WardenConfig::default()
    });
    let opts = CampaignOpts {
        reduce: None, // reduction re-rolls the same chaos; keep the test fast
        ..CampaignOpts::default()
    };
    let mut progress = |_: &str| {};
    let result = run_campaign_with(
        0,
        1,
        &opts,
        &|src, seed, opts| w.execute_oracle(src, seed, opts),
        &mut progress,
    );
    assert_eq!(result.attempts, 1);
    assert_eq!(result.findings.len(), 1, "the death must become a finding");
    let finding = result.findings.values().next().unwrap();
    assert_eq!(finding.failure.oracle, OracleKind::Crash);
    assert_eq!(finding.failure.stage, "warden");
}

/// A depth bomb — pathologically nested source — is contained by the
/// worker process: the oracle call returns a structured verdict (parse
/// rejection, budget trip, or crash finding), never takes the caller
/// down, and the pool keeps serving.
#[test]
fn a_depth_bomb_through_the_isolated_oracle_is_contained() {
    let w = warden(WardenConfig {
        pool: 1,
        ..WardenConfig::default()
    });
    let depth = 4_000;
    let mut src = String::with_capacity(depth * 16);
    src.push_str("func @bomb() {\n");
    for i in 0..depth {
        src.push_str(&format!("scf.if %c{i} {{\n"));
    }
    for _ in 0..=depth {
        src.push_str("}\n");
    }
    let opts = CampaignOpts {
        oracle: fuzzing::OracleOpts {
            deadline_ms: Some(10_000),
            ..fuzzing::OracleOpts::default()
        },
        ..CampaignOpts::default()
    };
    match w.execute_oracle(&src, 0, &opts) {
        Ok(_) => {}
        Err(f) => {
            // Any structured oracle verdict is acceptable; what is not
            // acceptable is this test process dying with the bomb.
            assert!(!f.message.is_empty(), "finding carries a message");
        }
    }
    let reply = w.execute_probe("{\"op\":\"ping\"}", None).expect("ping");
    assert!(reply.contains("\"ok\":true"), "pool survives the bomb");
}
