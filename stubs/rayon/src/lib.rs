//! Offline stub for the `rayon` crate.
//!
//! `par_iter()` returns the ordinary sequential iterator, so downstream
//! `.map(...).collect()` chains compile and behave identically — minus the
//! parallelism. Correctness is unaffected: rayon's parallel iterators
//! promise the same observable results as sequential iteration.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// Subset of `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded by the "parallel" iterator.
        type Item: 'data;
        /// The iterator type (here: the sequential one).
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for parallel iteration.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().sum::<i32>(), 6);
    }
}
