//! Offline stub for the `proptest` crate.
//!
//! Implements the generation side of proptest — strategies, combinators,
//! the `proptest!` macro — with a deterministic SplitMix64 RNG. There is no
//! shrinking: a failing case panics with its case index so it can be
//! replayed (cases are a pure function of the case index).

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::TestRng;

/// Per-property configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (for `any::<usize>()`-style calls).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The `prop::` namespace (`collection`, `option`, ...).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// Size specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Exclusive maximum length.
        pub max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::option`.
pub mod option {
    use super::strategy::{OptionStrategy, Strategy};

    /// Strategy for `Option<T>`: `None` in roughly a quarter of cases.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace as the real prelude exposes it.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert inside a property (no shrinking: plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Property-test entry point. Each property becomes one `#[test]` running
/// `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)+
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(case as u64);
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}
