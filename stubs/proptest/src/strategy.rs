//! Strategy trait and combinators.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// A generator of values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case; `recurse` wraps
    /// the strategy-so-far into one more level, applied `depth` times.
    /// (`_desired_size`/`_expected_branch_size` are accepted for signature
    /// compatibility; depth alone bounds generation here.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choice over the given arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() as usize) % self.arms.len();
        self.arms[idx].generate(rng)
    }
}

/// Full-range integer strategy backing `any::<int>()`.
pub struct AnyInt<T>(pub(crate) PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5));

/// `prop::collection::vec`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min).max(1);
        let len = self.size.min + (rng.next_u64() as usize) % span;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of`.
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
