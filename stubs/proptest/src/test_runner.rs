//! Deterministic RNG for case generation.

/// SplitMix64 generator; every case derives its stream purely from the case
/// index, so failures reproduce across runs without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one property-test case.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            // Golden-ratio offset keeps case streams decorrelated.
            state: case.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x005e_ed0f_cafe_f00d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn case_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        let mut c = TestRng::for_case(4);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
