//! Offline stub for the `serde` crate.
//!
//! `Serialize`/`Deserialize` are marker traits here: nothing in this
//! workspace drives a real serde `Serializer` (JSON emission is hand-rolled
//! where needed, e.g. `pass-core::report`), so empty impls keep the derive
//! annotations source-compatible with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_builtin {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_builtin!(
    bool, char, String, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl Serialize for &str {}
