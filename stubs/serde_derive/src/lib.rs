//! Offline stub for `serde_derive`.
//!
//! The derives scan the item's tokens for its name (no `syn` available
//! offline) and emit empty marker impls matching the stub `serde` traits.
//! Only non-generic `struct`/`enum` items are supported — which covers every
//! derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum` keyword, skipping
/// attributes and visibility tokens.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("serde stub: could not find type name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("serde stub: could not find type name");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
