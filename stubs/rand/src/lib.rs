//! Offline stub for the `rand` crate.
//!
//! Provides the exact surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer ranges.
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! fine for test-input generation (it is not the real `StdRng` stream, so
//! seeded sequences differ from upstream `rand`).

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can be sampled (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Generator namespace (subset of `rand::rngs`).
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-32i32..=32);
            assert_eq!(x, b.gen_range(-32i32..=32));
            assert!((-32..=32).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
