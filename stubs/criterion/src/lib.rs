//! Offline stub for the `criterion` crate.
//!
//! Runs each benchmark a small fixed number of times and prints the median
//! wall-clock time. When invoked by `cargo test` (libtest passes `--test`
//! or benches run in CI), a single iteration is used so benches double as
//! smoke tests. No warm-up, outlier analysis, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed iterations to run per benchmark.
fn iterations() -> u32 {
    let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
    if test_mode {
        1
    } else {
        5
    }
}

/// Identity hint against over-aggressive optimization.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A named benchmark id (`BenchmarkId::new(name, parameter)`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose a function name and parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..iterations() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..iterations() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    println!("bench {label:<40} median {:>12.3?}", b.median());
}

/// Top-level benchmark registry (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group against an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
